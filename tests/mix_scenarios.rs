//! Acceptance tests for the scenario-mix subsystem: a heterogeneous
//! Data Serving + MapReduce scenario runs deterministically through
//! the mix grid with 1-vs-N-thread bit-equality, per-core IPC/MPKI in
//! the emitted JSON/CSV, and weighted speedup computed against
//! solo-run baselines.

use fc_sweep::{
    emit, run_mix, DesignSpec, MixGrid, RunScale, ScenarioSpec, SimConfig, SweepEngine,
    WorkloadKind,
};

fn acceptance_grid() -> MixGrid {
    MixGrid::new(
        vec![ScenarioSpec::split(
            WorkloadKind::DataServing,
            WorkloadKind::MapReduce,
            16,
        )],
        vec![
            DesignSpec::baseline(),
            DesignSpec::page(64),
            DesignSpec::footprint(64),
        ],
        RunScale::tiny(),
    )
}

#[test]
fn heterogeneous_scenario_is_thread_count_independent() {
    let grid = acceptance_grid();
    let seq = run_mix(&grid, &SweepEngine::new().with_threads(1).quiet());
    let par = run_mix(&grid, &SweepEngine::new().with_threads(4).quiet());
    assert_eq!(seq.len(), grid.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.point, b.point, "result order must match grid order");
        assert_eq!(
            *a.report,
            *b.report,
            "{}: parallel mix run diverged (per-core counters included)",
            a.point.label()
        );
        assert_eq!(a.solo_ipc, b.solo_ipc);
        assert_eq!(a.consolidation, b.consolidation);
    }
}

#[test]
fn mix_reports_carry_meaningful_per_core_stats() {
    let grid = acceptance_grid();
    let results = run_mix(&grid, &SweepEngine::new().quiet());
    for r in &results {
        assert_eq!(r.report.per_core.len(), 16);
        let per_core_insts: u64 = r.report.per_core.iter().map(|c| c.insts).sum();
        assert_eq!(per_core_insts, r.report.insts, "{}", r.point.label());
        let per_core_misses: u64 = r.report.per_core.iter().map(|c| c.l2_misses).sum();
        assert_eq!(
            per_core_misses,
            r.report.cache.accesses,
            "{}: every DRAM-level access is some core's L2 miss",
            r.point.label()
        );
        for (core, c) in r.report.per_core.iter().enumerate() {
            assert!(
                c.insts > 0,
                "{} core {core} committed nothing",
                r.point.label()
            );
            assert!(c.ipc() > 0.0);
            assert!(c.mpki() >= 0.0);
        }
        // Every core's clock advanced over the interval.
        assert!(r.report.per_core.iter().all(|c| c.cycles > 0));
    }
}

#[test]
fn weighted_speedup_uses_solo_baselines() {
    let grid = acceptance_grid();
    let engine = SweepEngine::new().quiet();
    let results = run_mix(&grid, &engine);
    for r in &results {
        assert_eq!(r.solo_ipc.len(), 16);
        assert!(r.solo_ipc.iter().all(|&ipc| ipc > 0.0));
        // The consolidation metrics recompute from report + baselines.
        let expect = fc_sim::consolidation(&r.report, &r.solo_ipc);
        assert_eq!(r.consolidation, expect);
        assert!(r.consolidation.weighted_speedup > 0.0);
        assert!(r.consolidation.fairness > 0.0 && r.consolidation.fairness <= 1.0 + 1e-12);
    }
    // The solo baselines were served by the shared engine: the store
    // holds the homogeneous DataServing/MapReduce points per design.
    assert!(engine.store().computed() >= (grid.len() + 2 * grid.designs.len()) as u64);
}

#[test]
fn emitters_carry_per_core_ipc_and_mpki() {
    let grid = MixGrid::new(
        vec![ScenarioSpec::split(
            WorkloadKind::DataServing,
            WorkloadKind::MapReduce,
            16,
        )],
        vec![DesignSpec::footprint(64)],
        RunScale::tiny(),
    );
    let results = run_mix(&grid, &SweepEngine::new().quiet());

    let json = emit::to_mix_json(&results);
    assert_eq!(json.matches("\"core\":").count(), 16);
    assert_eq!(json.matches("\"ipc\":").count(), 16);
    assert_eq!(json.matches("\"mpki\":").count(), 16);
    assert_eq!(
        json.matches("\"core_workload\": \"Data Serving\"").count(),
        8
    );
    assert_eq!(json.matches("\"core_workload\": \"MapReduce\"").count(), 8);
    assert!(json.contains("\"weighted_speedup\""));
    assert!(json.contains("\"fairness\""));

    let csv = emit::to_mix_csv(&results);
    let lines: Vec<_> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 16, "header + one row per core");
    let header = lines[0];
    for column in [
        "core",
        "core_workload",
        "ipc",
        "mpki",
        "solo_ipc",
        "speedup",
    ] {
        assert!(header.contains(column), "missing column {column}");
    }

    // The regular sweep JSON also grew per-core counters.
    let spec = fc_sweep::SweepSpec::new(RunScale::tiny())
        .grid(&[WorkloadKind::WebSearch], &[DesignSpec::footprint(64)]);
    let sweep_results = SweepEngine::new().quiet().run_spec(&spec);
    let sweep_json = emit::to_json(&sweep_results);
    assert!(sweep_json.contains("\"per_core\""));
    assert_eq!(sweep_json.matches("\"core\":").count(), 16);
}

#[test]
fn homogeneous_control_scenario_consolidates_for_free() {
    // n-copies-of-Multiprogrammed through the mix path: the solo
    // baseline runs the same workload, so the weighted speedup must sit
    // near 1 and fairness near its homogeneous bound.
    let grid = MixGrid::new(
        vec![ScenarioSpec::homogeneous(WorkloadKind::Multiprogrammed, 16)],
        vec![DesignSpec::footprint(64)],
        RunScale::tiny(),
    );
    let results = run_mix(&grid, &SweepEngine::new().quiet());
    let c = &results[0].consolidation;
    assert!(
        (0.7..=1.3).contains(&c.weighted_speedup),
        "homogeneous weighted speedup {}",
        c.weighted_speedup
    );
    assert!(c.fairness > 0.8, "homogeneous fairness {}", c.fairness);
}

#[test]
fn scenario_registry_round_trips_through_config() {
    // The registry scenarios a 16-core pod sweeps all run and
    // round-trip through canonical JSON with stable keys.
    let config = SimConfig::default();
    for family in fc_sim::SCENARIO_FAMILIES {
        let spec = family.build(config.cores);
        assert_eq!(spec.cores(), config.cores);
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back, "{}", family.name);
    }
}
