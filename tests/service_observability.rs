//! Tier-1 guarantees of the serve observability surface
//! (`fc_sweep serve --metrics-dir`):
//!
//! 1. **Deterministic heartbeat** — a spool serve run with a
//!    [`ServiceMonitor`] on a [`ManualClock`] walks the health state
//!    machine starting → serving (→ draining) with every transition
//!    recorded in `events.jsonl`.
//! 2. **Faithful exposition** — the Prometheus text written on a tick
//!    bit-matches [`fc_obs::expo::prometheus_text`] over the live
//!    registry snapshot: what a scraper reads *is* the registry.
//! 3. **Latency coverage** — every answered request lands one
//!    observation in the fresh or memoized request-latency histogram.
//! 4. **Watchdog flip** — a synthetic floor far above achievable
//!    throughput flips health to `degraded` and logs the breach.
//! 5. **Zero interference** — serving with the full observability
//!    stack on (monitor + slow-request capture) returns point records
//!    bit-identical to an unobserved serve.
//!
//! The metrics registry and trace sink are process-global, so every
//! test serializes on one mutex (parallel test *binaries* are separate
//! processes and do not share the registry).

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use fc_obs::expo::{EXPOSITION_FILE, HEALTH_FILE};
use fc_obs::{expo, metrics, trace, FloorSpec, HealthState, Watchdog};
use fc_sweep::monitor::EVENTS_FILE;
use fc_sweep::{serve_jsonl, serve_jsonl_observed, serve_spool_observed, ServeOptions};
use fc_sweep::{ServiceMonitor, SweepEngine};
use fc_types::{Clock, ManualClock};

/// Serializes tests that touch the global registry / trace sink.
fn gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fc-svc-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine() -> SweepEngine {
    SweepEngine::new().with_threads(2).quiet()
}

fn request(id: &str, designs: &str) -> String {
    format!(
        "{{\"id\": \"{id}\", \"designs\": \"{designs}\", \
         \"capacities\": [64], \"workloads\": [\"web search\"], \
         \"scale\": \"tiny\"}}"
    )
}

#[test]
fn spool_serve_walks_health_and_exposes_the_registry() {
    let _gate = gate().lock().unwrap();
    let spool = tmp_dir("spool");
    let mdir = tmp_dir("metrics");
    std::fs::create_dir_all(&spool).unwrap();

    let clock = Arc::new(ManualClock::at(0));
    let monitor = ServiceMonitor::new(&mdir, Arc::clone(&clock) as Arc<dyn Clock>).unwrap();

    // The very first heartbeat, before any engine exists, is `starting`.
    let health = std::fs::read_to_string(mdir.join(HEALTH_FILE)).unwrap();
    assert!(health.contains("\"state\": \"starting\""), "{health}");

    clock.advance_ms(500);
    monitor.mark_serving();
    let health = std::fs::read_to_string(mdir.join(HEALTH_FILE)).unwrap();
    assert!(health.contains("\"state\": \"serving\""), "{health}");

    // Two requests in one spool file: a cold one and its memoized twin.
    std::fs::write(
        spool.join("req.json"),
        format!(
            "{}\n{}\n",
            request("cold", "baseline,footprint"),
            request("warm", "baseline,footprint")
        ),
    )
    .unwrap();

    let before = metrics::snapshot();
    let engine = engine();
    let totals = serve_spool_observed(
        &engine,
        &spool,
        &ServeOptions {
            once: true,
            ..Default::default()
        },
        Some(&monitor),
    )
    .unwrap();
    assert_eq!(totals.requests, 2);
    assert_eq!(totals.fresh, 2, "only the cold request simulates");

    // Every answered request left exactly one latency observation, in
    // the histogram matching its regime.
    let delta = metrics::snapshot().delta(&before);
    let fresh = delta
        .histograms
        .get("serve.request_latency_ms.fresh")
        .map(|h| h.count)
        .unwrap_or(0);
    let memoized = delta
        .histograms
        .get("serve.request_latency_ms.memoized")
        .map(|h| h.count)
        .unwrap_or(0);
    assert_eq!(fresh, 1, "cold request observes the fresh histogram");
    assert_eq!(memoized, 1, "warm request observes the memoized one");

    // A tick publishes the exposition; what lands on disk bit-matches
    // the registry rendered through the same exporter (no other thread
    // is mutating the registry while the gate is held).
    clock.advance_ms(1_000);
    monitor.tick();
    let on_disk = std::fs::read_to_string(mdir.join(EXPOSITION_FILE)).unwrap();
    assert_eq!(
        on_disk,
        expo::prometheus_text(&metrics::snapshot()),
        "scrape file diverged from the registry"
    );
    assert!(on_disk.contains("serve_requests"), "{on_disk}");
    assert!(
        on_disk.contains("serve_request_latency_ms_fresh_bucket"),
        "{on_disk}"
    );

    monitor.mark_draining();
    let events = std::fs::read_to_string(mdir.join(EVENTS_FILE)).unwrap();
    assert!(
        events.contains("\"from\": \"starting\", \"to\": \"serving\""),
        "{events}"
    );
    assert!(
        events.contains("\"from\": \"serving\", \"to\": \"draining\""),
        "{events}"
    );

    let health = monitor.health();
    assert_eq!(health.state, HealthState::Draining);
    assert_eq!(health.requests, 2);

    std::fs::remove_dir_all(&spool).ok();
    std::fs::remove_dir_all(&mdir).ok();
}

#[test]
fn inflated_floor_flips_health_to_degraded() {
    let _gate = gate().lock().unwrap();
    let mdir = tmp_dir("degraded");

    // A floor no machine reaches: any judged window breaches. The
    // single-window threshold and min_samples=1 remove the hysteresis
    // so one tiny request is enough to flip.
    let floor = FloorSpec::parse(r#"{"designs": {"Baseline": 1000000000.0}}"#).unwrap();
    let clock = Arc::new(ManualClock::at(0));
    let monitor = ServiceMonitor::new(&mdir, Arc::clone(&clock) as Arc<dyn Clock>)
        .unwrap()
        .with_watchdog(
            Watchdog::new(floor)
                .with_breach_windows(1)
                .with_min_samples(1),
        );
    monitor.mark_serving();

    let engine = engine();
    let mut out = Vec::new();
    let input = std::io::Cursor::new(request("slowpoke", "baseline"));
    let totals = serve_jsonl_observed(&engine, input, &mut out, Some(&monitor)).unwrap();
    assert_eq!(totals.fresh, 1, "the baseline point simulates fresh");

    clock.advance_ms(1_000);
    monitor.tick();

    assert_eq!(monitor.health().state, HealthState::Degraded);
    let health = std::fs::read_to_string(mdir.join(HEALTH_FILE)).unwrap();
    assert!(health.contains("\"state\": \"degraded\""), "{health}");
    assert!(
        health.contains("below floor"),
        "note names the cause: {health}"
    );

    let events = std::fs::read_to_string(mdir.join(EVENTS_FILE)).unwrap();
    assert!(
        events.contains("\"event\": \"watchdog-breach\""),
        "{events}"
    );
    assert!(events.contains("\"design\": \"Baseline\""), "{events}");
    assert!(
        events.contains("\"from\": \"serving\", \"to\": \"degraded\""),
        "{events}"
    );

    std::fs::remove_dir_all(&mdir).ok();
}

#[test]
fn observed_serve_returns_bit_identical_point_records() {
    let _gate = gate().lock().unwrap();
    let mdir = tmp_dir("interference");

    let input = request("twin", "baseline,footprint");

    // Unobserved run.
    let mut plain = Vec::new();
    serve_jsonl(&engine(), std::io::Cursor::new(&input), &mut plain).unwrap();

    // Fully observed run: monitor, watchdog off, slow capture armed at
    // 0 ms so *every* request dumps a trace — the heaviest code path.
    let clock = Arc::new(ManualClock::at(0));
    let monitor = ServiceMonitor::new(&mdir, Arc::clone(&clock) as Arc<dyn Clock>)
        .unwrap()
        .with_slow_capture(0, 2);
    monitor.mark_serving();
    let mut observed = Vec::new();
    serve_jsonl_observed(
        &engine(),
        std::io::Cursor::new(&input),
        &mut observed,
        Some(&monitor),
    )
    .unwrap();
    clock.advance_ms(1_000);
    monitor.tick();

    let points = |buf: &[u8]| -> Vec<String> {
        String::from_utf8(buf.to_vec())
            .unwrap()
            .lines()
            .filter(|l| l.starts_with("{\"type\": \"point\""))
            .map(str::to_string)
            .collect()
    };
    let plain_points = points(&plain);
    let observed_points = points(&observed);
    assert_eq!(plain_points.len(), 2);
    assert_eq!(
        plain_points, observed_points,
        "observability perturbed the point records"
    );

    // The slow capture actually fired.
    let slow = std::fs::read_dir(mdir.join(fc_sweep::monitor::SLOW_DIR))
        .unwrap()
        .count();
    assert!(slow >= 1, "0 ms threshold captures every request");

    // Leave the global trace sink the way we found it.
    trace::disable();
    let _ = trace::take_events();

    std::fs::remove_dir_all(&mdir).ok();
}
