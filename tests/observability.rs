//! Tier-1 guarantees of the observability layer (fc-obs):
//!
//! 1. **Zero interference** — enabling tracing changes no simulation
//!    result, bit for bit, detailed and sampled alike; with the
//!    `detailed-stats` feature off, the per-interval time-series type
//!    compiles to a zero-sized no-op.
//! 2. **Valid, structured traces** — the Chrome trace-event export
//!    parses with the workspace JSON parser, spans nest properly
//!    within each worker lane, and parallel runs use distinct lanes.
//! 3. **Metrics coverage** — one sweep touches counters in every
//!    instrumented layer (sweep, sim, cache, dram, sample), and the
//!    counters agree with the reports they mirror.
//! 4. **Provenance** — artifacts wrapped by the emitters carry a
//!    parseable provenance stamp without disturbing their payload.
//!
//! The trace buffer and metrics registry are process-global, so every
//! test that touches them serializes on one mutex.

use std::sync::{Mutex, OnceLock};

use fc_obs::{metrics, trace};
use fc_sim::json::JsonValue;
use fc_sim::DesignSpec;
use fc_sweep::{emit, run_sampled_grid, RunScale, SamplePlan, SampledGrid, SweepEngine, SweepSpec};
use fc_trace::WorkloadKind;

/// Serializes tests that enable/drain the global trace buffer.
fn gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

fn spec() -> SweepSpec {
    SweepSpec::new(RunScale::tiny()).grid(
        &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
        &[DesignSpec::baseline(), DesignSpec::footprint(64)],
    )
}

#[test]
fn tracing_never_changes_results() {
    let _gate = gate().lock().unwrap();
    let spec = spec();

    let plain = SweepEngine::new().with_threads(2).quiet().run_spec(&spec);
    trace::enable();
    let traced = SweepEngine::new().with_threads(2).quiet().run_spec(&spec);
    trace::disable();
    let _ = trace::take_events();

    for (a, b) in plain.iter().zip(&traced) {
        assert_eq!(
            *a.report,
            *b.report,
            "{}: tracing perturbed the detailed report",
            a.point.label()
        );
    }

    // The sampled twin: same guarantee through the interval sampler.
    let grid = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
    let plain = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
    trace::enable();
    let traced = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
    trace::disable();
    let _ = trace::take_events();
    for (a, b) in plain.iter().zip(&traced) {
        assert_eq!(
            *a.report,
            *b.report,
            "{}: tracing perturbed the sampled report",
            a.point.label()
        );
    }
}

/// One parsed trace event, pulled out of the Chrome JSON.
struct Event {
    name: String,
    ph: String,
    tid: u64,
    ts: u64,
    dur: u64,
}

fn parse_events(chrome_json: &str) -> Vec<Event> {
    let parsed = JsonValue::parse(chrome_json).expect("trace JSON parses");
    let JsonValue::Arr(events) = parsed.field("traceEvents").unwrap() else {
        panic!("traceEvents must be an array");
    };
    events
        .iter()
        .map(|e| Event {
            name: e.field("name").unwrap().as_str().unwrap().to_string(),
            ph: e.field("ph").unwrap().as_str().unwrap().to_string(),
            tid: e.field("tid").unwrap().as_u64().unwrap(),
            ts: e.get("ts").map(|v| v.as_u64().unwrap()).unwrap_or(0),
            dur: e.get("dur").map(|v| v.as_u64().unwrap()).unwrap_or(0),
        })
        .collect()
}

#[test]
fn chrome_trace_is_valid_and_structured() {
    let _gate = gate().lock().unwrap();
    let _ = trace::take_events(); // drop stale events from other tests

    trace::enable();
    let engine = SweepEngine::new().with_threads(4).quiet();
    let spec = spec();
    engine.run_spec(&spec);
    engine.run_spec(&spec); // second pass: every point is a memo hit
    trace::disable();
    trace::flush_thread();

    let events = parse_events(&trace::chrome_trace_json());
    assert!(!events.is_empty());

    // Every phase the sweep stack is instrumented for shows up.
    for expected in [
        "point",
        "memo-lookup",
        "synthesis",
        "detailed-sim",
        "memo-hit",
    ] {
        assert!(
            events.iter().any(|e| e.name == expected),
            "no `{expected}` event in the trace"
        );
    }
    // A 4-worker run uses at least two distinct named lanes (workers
    // race on the cursor, so demanding all four would be flaky).
    let lanes: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.ph == "X")
        .map(|e| e.tid)
        .collect();
    assert!(lanes.len() >= 2, "spans landed on {lanes:?} only");
    let names: Vec<&Event> = events.iter().filter(|e| e.ph == "M").collect();
    assert!(
        names.iter().any(|e| e.name == "thread_name"),
        "lane-name metadata missing"
    );

    // Per lane: point spans are disjoint (each worker runs points
    // sequentially), and every memo-lookup nests inside a point span.
    for &lane in &lanes {
        let mut points: Vec<&Event> = events
            .iter()
            .filter(|e| e.ph == "X" && e.tid == lane && e.name == "point")
            .collect();
        points.sort_by_key(|e| e.ts);
        for pair in points.windows(2) {
            assert!(
                pair[0].ts + pair[0].dur <= pair[1].ts,
                "point spans overlap on lane {lane}"
            );
        }
        for lookup in events
            .iter()
            .filter(|e| e.ph == "X" && e.tid == lane && e.name == "memo-lookup")
        {
            assert!(
                points
                    .iter()
                    .any(|p| p.ts <= lookup.ts && lookup.ts + lookup.dur <= p.ts + p.dur),
                "memo-lookup at ts {} escapes every point span on lane {lane}",
                lookup.ts
            );
        }
    }
}

#[test]
fn metrics_cover_every_instrumented_layer() {
    let _gate = gate().lock().unwrap();
    let before = metrics::snapshot();

    let spec = spec();
    let engine = SweepEngine::new().with_threads(2).quiet();
    let results = engine.run_spec(&spec);
    let grid = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
    run_sampled_grid(&grid, &engine);

    let delta = metrics::snapshot().delta(&before);
    let expect = |name: &str| {
        delta
            .counter(name)
            .unwrap_or_else(|| panic!("counter `{name}` never published"))
    };

    // Sweep layer.
    assert_eq!(expect("sweep.points"), spec.len() as u64);
    assert_eq!(expect("sweep.simulations"), spec.len() as u64);
    assert_eq!(expect("sweep.sampled_points"), spec.len() as u64);
    // Sim + cache layers: counters mirror the reports exactly.
    let insts: u64 = results.iter().map(|r| r.report.insts).sum();
    assert_eq!(expect("sim.insts"), insts);
    assert_eq!(expect("sim.reports"), spec.len() as u64);
    assert_eq!(
        expect("cache.accesses"),
        expect("cache.hits") + expect("cache.misses")
    );
    // DRAM layer, both channels' worth of names.
    assert!(expect("dram.offchip.accesses") > 0);
    assert!(expect("dram.stacked.accesses") > 0);
    // Sample layer (driven through the sampled grid above).
    assert_eq!(expect("sample.runs"), spec.len() as u64);
    assert!(expect("sample.records.replayed") > 0);
}

#[test]
fn provenance_stamp_survives_round_trip() {
    // Runs an engine, which publishes metrics: hold the gate so the
    // coverage test's snapshot delta stays clean.
    let _gate = gate().lock().unwrap();
    let spec = SweepSpec::new(RunScale::tiny())
        .grid(&[WorkloadKind::WebSearch], &[DesignSpec::baseline()]);
    let results = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);

    let mut prov = fc_obs::Provenance::for_tool("fc_sweep");
    prov.grid = Some("tier1".to_string());
    prov.seed = Some(7);
    prov.points = Some(results.len());

    let wrapped = emit::with_provenance(&emit::to_json(&results), &prov);
    let parsed = JsonValue::parse(&wrapped).expect("wrapped JSON parses");
    let stamp = parsed.field("provenance").unwrap();
    assert_eq!(stamp.field("tool").unwrap().as_str().unwrap(), "fc_sweep");
    assert_eq!(stamp.field("seed").unwrap().as_u64().unwrap(), 7);
    let JsonValue::Arr(rows) = parsed.field("results").unwrap() else {
        panic!("payload must stay an array");
    };
    assert_eq!(rows.len(), results.len());
    // The payload row is untouched by the wrapper.
    assert!(rows[0].get("throughput").is_some());

    let csv = emit::csv_with_provenance(&emit::to_csv(&results), &prov);
    let mut lines = csv.lines();
    let stamp_line = lines.next().unwrap();
    let stamp = JsonValue::parse(stamp_line.trim_start_matches("# provenance: "))
        .expect("CSV stamp parses");
    assert_eq!(stamp.field("grid").unwrap().as_str().unwrap(), "tier1");
    assert!(lines.next().unwrap().starts_with("workload,"));
}

/// With the feature off, the per-interval time series must cost
/// nothing: a zero-sized type whose push is a no-op.
#[cfg(not(feature = "detailed-stats"))]
#[test]
fn detailed_stats_off_means_zero_sized_series() {
    assert!(!fc_obs::series::enabled());
    assert_eq!(std::mem::size_of::<fc_obs::TimeSeries>(), 0);
    let mut ts = fc_obs::TimeSeries::new();
    ts.push(1, 2.0);
    assert!(ts.is_empty());
}

/// With the feature on, a sweep publishes per-point time series
/// (hit-ratio-over-time, row-buffer locality, queue occupancy) into
/// the global registry.
#[cfg(feature = "detailed-stats")]
#[test]
fn detailed_stats_on_publishes_timeseries() {
    let _gate = gate().lock().unwrap();
    assert!(fc_obs::series::enabled());
    let _ = fc_obs::series::take_published();

    let spec = SweepSpec::new(RunScale::tiny())
        .grid(&[WorkloadKind::WebSearch], &[DesignSpec::footprint(64)]);
    SweepEngine::new().with_threads(1).quiet().run_spec(&spec);

    let published = fc_obs::series::take_published();
    assert!(
        published
            .iter()
            .any(|(name, _)| name.ends_with(".hit_ratio")),
        "no hit-ratio series in {:?}",
        published.keys().collect::<Vec<_>>()
    );
    let json = format!(
        "{{{}}}",
        published
            .iter()
            .map(|(name, s)| format!("\"{}\": {}", fc_obs::json_escape(name), s.to_json()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    JsonValue::parse(&json).expect("published series serialize to valid JSON");
}
