//! Property tests for the queued DRAM channel's timing invariants
//! (vendored proptest): completion monotonicity in issue cycle, row-hit
//! vs activate accounting, tFAW activation-rate limits, and access
//! conservation — the regression net under the queued engine.

use proptest::prelude::*;

use fc_dram::{Channel, DramTimings, RowPolicy};
use fc_types::AccessKind;

/// A compact random access: (bank, row, write, blocks, arrival gap).
type Op = (usize, u64, bool, u32, u64);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0usize..8, 0u64..8, proptest::bool::ANY, 1u32..9, 0u64..300),
        1..80,
    )
}

fn channel(policy: RowPolicy, queue_depth: usize) -> Channel {
    Channel::new(
        DramTimings::ddr3_3200_stacked().to_core_cycles(),
        policy,
        8,
        queue_depth,
    )
    .with_activate_log()
}

fn kind(write: bool) -> AccessKind {
    if write {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Completions are monotone in issue cycle: replaying the same
    /// access stream with every arrival shifted later can only move
    /// every completion later (the channel is a max-plus system).
    #[test]
    fn completions_monotone_in_issue_cycle(
        ops in ops_strategy(),
        shift in 1u64..5_000,
        depth in 1usize..24,
    ) {
        let mut early = channel(RowPolicy::Open, depth);
        let mut late = channel(RowPolicy::Open, depth);
        let mut now = 0u64;
        for &(bank, row, write, blocks, gap) in &ops {
            now += gap;
            let a = early.access(bank, row, kind(write), blocks, now);
            let b = late.access(bank, row, kind(write), blocks, now + shift);
            prop_assert!(
                b.data_ready >= a.data_ready && b.done >= a.done,
                "late issue finished earlier: {:?} vs {:?}", b, a
            );
            prop_assert!(
                b.data_ready <= a.data_ready + shift && b.done <= a.done + shift,
                "a uniform shift can delay completions by at most the shift"
            );
        }
    }

    /// A row hit never counts an activation: the activate counter moves
    /// exactly when `row_hit` is false.
    #[test]
    fn row_hit_implies_no_activate(ops in ops_strategy()) {
        for policy in [RowPolicy::Open, RowPolicy::Closed] {
            let mut ch = channel(policy, 16);
            let mut now = 0u64;
            for &(bank, row, write, blocks, gap) in &ops {
                now += gap;
                let before = ch.stats().activates;
                let c = ch.access(bank, row, kind(write), blocks, now);
                let delta = ch.stats().activates - before;
                prop_assert_eq!(delta, u64::from(!c.row_hit),
                    "row_hit={} must mean {} activates", c.row_hit, u64::from(!c.row_hit));
            }
        }
    }

    /// Rank-level activation throttling: at most 4 activates begin in
    /// any tFAW window, and same-rank activates respect tRRD.
    #[test]
    fn at_most_four_activates_per_tfaw_window(ops in ops_strategy()) {
        let t = DramTimings::ddr3_3200_stacked().to_core_cycles();
        let mut ch = channel(RowPolicy::Closed, 16);
        let mut now = 0u64;
        for &(bank, row, write, blocks, gap) in &ops {
            now += gap;
            ch.access(bank, row, kind(write), blocks, now);
        }
        let acts = ch.activate_times();
        for w in acts.windows(2) {
            prop_assert!(w[1] >= w[0], "activates issue in order");
            prop_assert!(w[1] - w[0] >= t.t_rrd, "tRRD violated: {:?}", w);
        }
        // Sliding window: the 5th activate after any activate must be
        // at least tFAW later.
        for w in acts.windows(5) {
            prop_assert!(
                w[4] - w[0] >= t.t_faw,
                "five activates within tFAW: {:?} (tFAW={})", w, t.t_faw
            );
        }
    }

    /// Conservation: row hits plus row misses equals accesses, misses
    /// equal activates, and every access lands in the queue histogram.
    #[test]
    fn access_accounting_conserves(ops in ops_strategy(), depth in 1usize..24) {
        let mut ch = channel(RowPolicy::Open, depth);
        let mut now = 0u64;
        for &(bank, row, write, blocks, gap) in &ops {
            now += gap;
            ch.access(bank, row, kind(write), blocks, now);
        }
        let s = ch.stats();
        prop_assert_eq!(s.row_hits + s.row_misses, s.accesses);
        prop_assert_eq!(s.row_misses, s.activates);
        prop_assert_eq!(s.accesses, ops.len() as u64);
        prop_assert_eq!(s.queue_hist.samples(), s.accesses);
        prop_assert_eq!(
            s.queue_delay_cycles == 0,
            s.queue_hist.bins()[1..].iter().all(|&b| b == 0),
            "nonzero delays must fill nonzero bins"
        );
    }

    /// Merging per-channel stats with AddAssign conserves every counter
    /// (the satellite conservation law, on random streams).
    #[test]
    fn addassign_merges_conserve(ops in ops_strategy()) {
        let mut a = channel(RowPolicy::Open, 16);
        let mut b = channel(RowPolicy::Closed, 8);
        let mut now = 0u64;
        for &(bank, row, write, blocks, gap) in &ops {
            now += gap;
            a.access(bank, row, kind(write), blocks, now);
            b.access(bank, row, kind(write), blocks, now);
        }
        let (sa, sb) = (a.stats(), b.stats());
        let mut merged = sa;
        merged += sb;
        prop_assert_eq!(merged.read_blocks, sa.read_blocks + sb.read_blocks);
        prop_assert_eq!(merged.write_blocks, sa.write_blocks + sb.write_blocks);
        prop_assert_eq!(merged.accesses, sa.accesses + sb.accesses);
        prop_assert_eq!(merged.busy_cycles, sa.busy_cycles + sb.busy_cycles);
        prop_assert_eq!(
            merged.queue_hist.samples(),
            sa.queue_hist.samples() + sb.queue_hist.samples()
        );
    }
}
