//! Cross-crate property tests: conservation laws that must hold for any
//! access stream, on every DRAM cache design and on the full simulator.

use proptest::prelude::*;

use fc_cache::{
    BlockBasedCache, DramCacheModel, HotPageCache, IdealCache, NoCache, PageBasedCache,
    SubBlockCache,
};
use fc_types::{AccessKind, MemAccess, PageGeometry, Pc, PhysAddr};
use footprint_cache::{FootprintCache, FootprintCacheConfig};

/// A compact encoding of a random access: (page, offset, pc-id, is_write,
/// is_writeback).
type Op = (u64, u8, u8, bool, bool);

fn ops_strategy(max_pages: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0..max_pages,
            0u8..32,
            0u8..8,
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        1..300,
    )
}

fn apply(design: &mut dyn DramCacheModel, ops: &[Op]) {
    for &(page, offset, pc, write, is_wb) in ops {
        let addr = PhysAddr::new(page * 2048 + offset as u64 * 64);
        if is_wb {
            design.writeback(addr);
        } else {
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            design.access(MemAccess {
                pc: Pc::new(0x400 + pc as u64 * 4),
                addr,
                kind,
                core: 0,
            });
        }
    }
}

fn designs() -> Vec<Box<dyn DramCacheModel>> {
    let geom = PageGeometry::default();
    vec![
        Box::new(NoCache::new()),
        Box::new(IdealCache::new()),
        Box::new(BlockBasedCache::new(1 << 20)),
        Box::new(PageBasedCache::new(1 << 20, geom)),
        Box::new(SubBlockCache::new(1 << 20, geom)),
        Box::new(HotPageCache::new(1 << 20, PageGeometry::new(4096), 2)),
        Box::new(FootprintCache::new(FootprintCacheConfig::new(1 << 20))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every design: hits + misses == accesses, bypasses <= misses,
    /// dirty evictions <= evictions, and every plan's traffic is
    /// reflected in the counters.
    #[test]
    fn accounting_invariants(ops in ops_strategy(64)) {
        for mut design in designs() {
            apply(design.as_mut(), &ops);
            let s = design.stats().clone();
            prop_assert_eq!(
                s.hits + s.misses, s.accesses,
                "{}: hits+misses != accesses", design.name()
            );
            prop_assert!(s.bypasses <= s.misses,
                "{}: bypasses exceed misses", design.name());
            prop_assert!(s.dirty_evictions <= s.evictions,
                "{}: dirty evictions exceed evictions", design.name());
        }
    }

    /// Designs that fill the stacked DRAM never read more blocks from
    /// off-chip than they fill plus demand-read (no traffic out of thin
    /// air), and the ideal cache never touches off-chip at all.
    #[test]
    fn traffic_conservation(ops in ops_strategy(64)) {
        for mut design in designs() {
            apply(design.as_mut(), &ops);
            let s = design.stats().clone();
            if design.name() == "Ideal" {
                prop_assert_eq!(s.offchip_read_blocks, 0);
                prop_assert_eq!(s.offchip_write_blocks, 0);
            }
            // Demand misses each read at least one off-chip block unless
            // the design fills larger units; in all cases fills are part
            // of the off-chip reads.
            if design.name() != "Ideal" {
                prop_assert!(
                    s.offchip_read_blocks >= s.misses.min(s.fill_blocks),
                    "{}: off-chip reads lost", design.name()
                );
            }
        }
    }

    /// Footprint Cache specifics: demanded blocks at eviction partition
    /// into covered + underpredicted; a re-run of the same stream is
    /// deterministic.
    #[test]
    fn footprint_metrics_partition(ops in ops_strategy(32)) {
        let mut a = FootprintCache::new(FootprintCacheConfig::new(1 << 20));
        apply(&mut a, &ops);
        a.flush();
        let m = *a.metrics();
        // Every eviction's demanded vector splits exactly.
        prop_assert_eq!(m.demanded_blocks(), m.covered_blocks + m.underpredicted_blocks);

        let mut b = FootprintCache::new(FootprintCacheConfig::new(1 << 20));
        apply(&mut b, &ops);
        b.flush();
        prop_assert_eq!(&m, b.metrics());
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// The singleton optimization can only reduce fills (it never fetches
    /// more than the unoptimized cache for the same stream).
    #[test]
    fn singleton_optimization_never_fetches_more(ops in ops_strategy(48)) {
        let mut with = FootprintCache::new(FootprintCacheConfig::new(1 << 20));
        let mut without = FootprintCache::new(
            FootprintCacheConfig::new(1 << 20).with_singleton_optimization(false),
        );
        apply(&mut with, &ops);
        apply(&mut without, &ops);
        prop_assert!(
            with.stats().fill_blocks <= without.stats().fill_blocks,
            "ST must not increase fills: {} vs {}",
            with.stats().fill_blocks,
            without.stats().fill_blocks
        );
    }

    /// Block-state encoding under the cache: a block reported hit must
    /// have been filled or demanded earlier (no hits on never-seen
    /// blocks).
    #[test]
    fn no_spurious_hits(ops in ops_strategy(1 << 30)) {
        // With an enormous page space and no repetition, almost every
        // access is unique: the only hits possible come from footprint
        // prefetches within pages previously touched by the same PC.
        let mut cache = FootprintCache::new(FootprintCacheConfig::new(1 << 20));
        // Only demand accesses can create first-touch misses; writebacks
        // are not accesses.
        let unique_pages = ops
            .iter()
            .filter(|o| !o.4)
            .map(|o| o.0)
            .collect::<std::collections::HashSet<_>>();
        apply(&mut cache, &ops);
        let s = cache.stats();
        // Hits can never exceed accesses minus one access per unique page
        // (the first touch of a page can never hit).
        prop_assert!(s.hits + unique_pages.len() as u64 <= s.accesses + s.bypasses,
            "more hits than repeat accesses: hits={} uniques={} accesses={}",
            s.hits, unique_pages.len(), s.accesses);
    }
}
