//! Tier-1 guarantees of the sweep subsystem: thread-count-independent,
//! bit-identical results (under the queued memory engine), and
//! memoization of repeated points.

use fc_sim::loaded::LoadedConfig;
use fc_sim::DesignSpec;
use fc_sweep::{run_loaded, LoadedGrid, RunScale, SweepEngine, SweepSpec, TraceCache};
use fc_trace::WorkloadKind;

/// A small but non-trivial grid: two capacities, a predictor-bearing
/// design, the baseline, and two workloads.
fn spec() -> SweepSpec {
    SweepSpec::new(RunScale::tiny()).grid(
        &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
        &[
            DesignSpec::baseline(),
            DesignSpec::footprint(64),
            DesignSpec::footprint(128),
            DesignSpec::page(64),
        ],
    )
}

#[test]
fn one_thread_and_many_threads_agree_bit_for_bit() {
    let spec = spec();
    let sequential = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);
    let parallel = SweepEngine::new().with_threads(4).quiet().run_spec(&spec);

    assert_eq!(sequential.len(), spec.len());
    assert_eq!(parallel.len(), spec.len());
    for (seq, par) in sequential.iter().zip(&parallel) {
        assert_eq!(seq.point, par.point, "result order must match spec order");
        assert_eq!(
            *seq.report,
            *par.report,
            "{}: parallel run diverged from sequential",
            seq.point.label()
        );
    }
}

#[test]
fn repeated_points_come_from_the_memo_store() {
    let engine = SweepEngine::new().with_threads(2).quiet();
    let spec = spec();

    let first = engine.run_spec(&spec);
    let simulated = engine.store().computed();
    assert_eq!(simulated, spec.len() as u64);

    // The same spec again: zero new simulations, same Arc'd reports.
    let second = engine.run_spec(&spec);
    assert_eq!(engine.store().computed(), simulated);
    assert!(engine.store().memo_hits() >= spec.len() as u64);
    for (a, b) in first.iter().zip(&second) {
        assert!(
            std::sync::Arc::ptr_eq(&a.report, &b.report),
            "{}: repeated point must return the cached report",
            a.point.label()
        );
    }

    // A single repeated point resolves from the store too.
    let point = spec.points()[0];
    let report = engine.run_point(&point);
    assert_eq!(engine.store().computed(), simulated);
    assert_eq!(*report, *first[0].report);
}

#[test]
fn queued_engine_reports_contention_counters_deterministically() {
    // The queued memory system's new counters (bus occupancy, queueing
    // delay, histograms) are part of the bit-equality contract: any
    // thread-count dependence would show up here.
    let spec = spec();
    let a = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);
    let b = SweepEngine::new().with_threads(4).quiet().run_spec(&spec);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.report.offchip.busy_cycles, y.report.offchip.busy_cycles);
        assert_eq!(
            x.report.stacked.queue_hist.bins(),
            y.report.stacked.queue_hist.bins()
        );
        assert_eq!(
            x.report.offchip.queue_delay_cycles,
            y.report.offchip.queue_delay_cycles
        );
    }
    // The engine actually exercises the queued path: a non-baseline
    // design moves data, so buses accumulate occupancy.
    assert!(a
        .iter()
        .filter(|r| r.point.design.stacked.is_some())
        .all(|r| r.report.stacked.busy_cycles > 0));
}

#[test]
fn loaded_grid_is_thread_count_independent() {
    let grid = LoadedGrid {
        designs: vec![
            DesignSpec::baseline(),
            DesignSpec::footprint(64),
            DesignSpec::alloy(64),
        ],
        intervals: vec![96, 12, 4],
        config: LoadedConfig {
            warmup: 800,
            requests: 800,
            ..LoadedConfig::tiny()
        },
    };
    let sequential = run_loaded(&grid, 1);
    let parallel = run_loaded(&grid, 4);
    assert_eq!(sequential.len(), grid.len());
    for (a, b) in sequential.iter().zip(&parallel) {
        assert_eq!(a.design, b.design, "result order must match grid order");
        assert_eq!(
            a.point,
            b.point,
            "{}: parallel loaded run diverged",
            a.design.label()
        );
    }
}

#[test]
fn trace_cache_streaming_fallback_is_equivalent() {
    // The same grid with trace caching disabled (budget 0 streams every
    // run) must produce identical reports: the cache is an optimization,
    // never an observable behavior change.
    let spec = spec();
    let cached = SweepEngine::new().with_threads(2).quiet().run_spec(&spec);
    let streamed = SweepEngine::new()
        .with_threads(2)
        .with_trace_budget(0)
        .quiet()
        .run_spec(&spec);
    for (a, b) in cached.iter().zip(&streamed) {
        assert_eq!(*a.report, *b.report, "{}", a.point.label());
    }
}

#[test]
fn shared_traces_synthesize_once_per_workload() {
    let cache = TraceCache::new(100_000);
    let a = cache
        .records(WorkloadKind::WebSearch, 16, 42, 5_000)
        .expect("within budget");
    let b = cache
        .records(WorkloadKind::WebSearch, 16, 42, 5_000)
        .expect("within budget");
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    assert_eq!(cache.records_synthesized(), 5_000);
}
