//! Golden-stats regression net: one tiny fixed-seed run per design
//! family, with every counter of the resulting `SimReport` compared
//! against a committed JSON golden. Any timing-model or cache-model
//! change that shifts a counter shows up as a readable JSON diff.
//!
//! Regenerate after an *intentional* model change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_stats
//! git diff tests/golden/   # review every counter shift
//! ```

use std::fs;
use std::path::PathBuf;

use fc_sim::{DesignSpec, SimConfig, Simulation, DESIGN_FAMILIES};
use fc_trace::WorkloadKind;

const SEED: u64 = 42;
const WARMUP: u64 = 2_000;
const MEASURED: u64 = 2_000;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn run(design: DesignSpec) -> String {
    let mut sim = Simulation::new(SimConfig::small(), design);
    let report = sim.run_workload(WorkloadKind::WebSearch, SEED, WARMUP, MEASURED);
    report.to_canonical_json()
}

#[test]
fn every_design_family_matches_its_golden() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut mismatches = Vec::new();
    for family in DESIGN_FAMILIES {
        let actual = run(family.build(64));
        let path = dir.join(format!("{}.json", family.name));
        if update {
            fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {path:?} ({e}); regenerate with \
                 UPDATE_GOLDEN=1 cargo test --test golden_stats"
            )
        });
        if actual != expected {
            mismatches.push(format!(
                "design family `{}` diverged from {path:?}\n--- expected\n{expected}\n--- actual\n{actual}",
                family.name
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} golden mismatch(es); if the model change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff:\n\n{}",
        mismatches.len(),
        mismatches.join("\n\n")
    );
}

#[test]
fn golden_runs_are_reproducible() {
    // The harness itself must be deterministic, or goldens are noise.
    let a = run(DesignSpec::footprint(64));
    let b = run(DesignSpec::footprint(64));
    assert_eq!(a, b);
}

#[test]
fn canonical_json_counts_match_report() {
    // Spot-check the serialization against live counters.
    let mut sim = Simulation::new(SimConfig::small(), DesignSpec::page(64));
    let report = sim.run_workload(WorkloadKind::WebSearch, SEED, 500, 500);
    let json = report.to_canonical_json();
    assert!(json.contains(&format!("\"insts\": {}", report.insts)));
    assert!(json.contains(&format!(
        "\"queue_delay_cycles\": {}",
        report.stacked.queue_delay_cycles
    )));
    assert!(json.contains("\"density_bins\""));
}
