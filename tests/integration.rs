//! End-to-end integration tests: trace generation → L2 → DRAM cache →
//! DRAM timing/energy, exercising the same paths the experiment harness
//! uses, at a scale fast enough for CI.

use fc_sim::{DesignSpec, SimConfig, Simulation};
use fc_trace::{TraceGenerator, WorkloadKind};

const WARMUP: u64 = 150_000;
const MEASURED: u64 = 100_000;

fn run(design: DesignSpec, workload: WorkloadKind) -> fc_sim::SimReport {
    let mut sim = Simulation::new(SimConfig::default(), design);
    sim.run_workload(workload, 1234, WARMUP, MEASURED)
}

#[test]
fn baseline_conservation_laws() {
    let r = run(DesignSpec::baseline(), WorkloadKind::WebSearch);
    // Every DRAM-cache access misses; every miss reads exactly one block.
    assert_eq!(r.cache.hits, 0);
    assert_eq!(r.cache.misses, r.cache.accesses);
    assert_eq!(r.cache.offchip_read_blocks, r.cache.misses);
    // The DRAM model saw exactly the traffic the plans described.
    assert!(r.offchip.read_blocks >= r.cache.offchip_read_blocks);
    assert_eq!(r.stacked.read_blocks + r.stacked.write_blocks, 0);
    // Time moved and instructions retired.
    assert!(r.cycles > 0 && r.insts > 0);
    assert!(r.throughput() > 0.0);
}

#[test]
fn hits_plus_misses_equals_accesses_for_every_design() {
    for design in [
        DesignSpec::block(64),
        DesignSpec::page(64),
        DesignSpec::footprint(64),
        DesignSpec::subblock(64),
        DesignSpec::hotpage(64),
        DesignSpec::ideal(),
    ] {
        let r = run(design, WorkloadKind::WebFrontend);
        assert_eq!(
            r.cache.hits + r.cache.misses,
            r.cache.accesses,
            "{}: hits+misses != accesses",
            design.label()
        );
        assert!(r.cache.accesses > 0, "{}: no accesses", design.label());
    }
}

#[test]
fn energy_consistent_with_operation_counts() {
    let r = run(DesignSpec::footprint(64), WorkloadKind::WebSearch);
    // Energy must be positive exactly when the corresponding ops exist.
    assert!(r.offchip.activates > 0);
    assert!(r.offchip_energy.act_pre_nj > 0.0);
    assert!(r.offchip_energy.burst_nj > 0.0);
    assert!(r.stacked_energy.total_nj() > 0.0);
    // Burst energy scales with blocks moved: recompute from counts.
    let params = fc_dram::EnergyParams::off_chip_ddr3();
    let expect = fc_dram::EnergyBreakdown::from_counts(
        &params,
        r.offchip.activates,
        r.offchip.read_blocks,
        r.offchip.write_blocks,
    );
    assert!((expect.burst_nj - r.offchip_energy.burst_nj).abs() < 1e-6);
    assert!((expect.act_pre_nj - r.offchip_energy.act_pre_nj).abs() < 1e-6);
}

#[test]
fn footprint_prediction_counters_flow_to_report() {
    let r = run(DesignSpec::footprint(64), WorkloadKind::WebSearch);
    let p = r.prediction.expect("footprint reports counters");
    assert!(p.covered > 0, "predictor never covered a block");
    // Only the footprint design reports counters.
    let r2 = run(DesignSpec::page(64), WorkloadKind::WebSearch);
    assert!(r2.prediction.is_none());
}

#[test]
fn density_histograms_populated_for_page_designs() {
    let r = run(DesignSpec::page(64), WorkloadKind::MapReduce);
    assert!(
        r.cache.density.total() > 0,
        "page evictions must record densities"
    );
}

#[test]
fn stacked_dram_row_locality_of_page_fills() {
    // Page-organized fills stream whole rows: activates per stacked write
    // block must be far below 1.
    let r = run(DesignSpec::page(64), WorkloadKind::WebSearch);
    let act_per_block = r.stacked.activates as f64 / r.stacked.write_blocks.max(1) as f64;
    assert!(
        act_per_block < 0.5,
        "page fills should amortize activations, got {act_per_block:.2}"
    );
}

#[test]
fn trace_io_round_trips_through_simulation_input() {
    use fc_trace::{TraceReader, TraceWriter};
    let records: Vec<_> = TraceGenerator::new(WorkloadKind::SatSolver, 4, 9)
        .take(5000)
        .collect();
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).unwrap();
    for r in &records {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    let replayed: Vec<_> = TraceReader::new(buf.as_slice())
        .unwrap()
        .map(Result::unwrap)
        .collect();
    assert_eq!(records, replayed);

    // Replaying the stored trace gives the same result as the generator.
    let mut a = Simulation::new(SimConfig::small(), DesignSpec::footprint(64));
    let snap = a.snapshot();
    let ra = a.run_records(records, &snap);
    let mut b = Simulation::new(SimConfig::small(), DesignSpec::footprint(64));
    let snap = b.snapshot();
    let rb = b.run_records(replayed, &snap);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.cache.hits, rb.cache.hits);
}

#[test]
fn ideal_low_latency_beats_ideal() {
    let normal = run(DesignSpec::ideal(), WorkloadKind::DataServing).throughput();
    let low = run(DesignSpec::ideal_low_latency(), WorkloadKind::DataServing).throughput();
    assert!(
        low >= normal,
        "halved DRAM latency cannot hurt: {low:.3} vs {normal:.3}"
    );
}

#[test]
fn coverage_analysis_handles_all_workloads() {
    for w in WorkloadKind::ALL {
        let records = TraceGenerator::new(w, 16, 3).take(100_000);
        let curve = fc_sim::analysis::coverage_curve(records, 4096, &[0.2, 0.8]);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].1 >= curve[0].1, "{w}: coverage not monotone");
        assert!(curve[1].1 > 0.0);
    }
}
