//! Acceptance tests for the loaded-latency experiment: the latency
//! curve is monotone non-decreasing in injected bandwidth for *every*
//! design family, and Footprint Cache sustains at least the page-based
//! design's usable bandwidth at equal stacked capacity.

use fc_sim::loaded::{self, usable_bandwidth, LoadedConfig, STANDARD_INTERVALS};
use fc_sim::{DesignSpec, DESIGN_FAMILIES};

fn cfg() -> LoadedConfig {
    LoadedConfig {
        warmup: 1_500,
        requests: 1_500,
        ..LoadedConfig::tiny()
    }
}

#[test]
fn loaded_latency_is_monotone_for_every_design_family() {
    for family in DESIGN_FAMILIES {
        let design = family.build(64);
        let curve = loaded::curve(&design, &cfg());
        assert_eq!(curve.len(), STANDARD_INTERVALS.len());
        for pair in curve.windows(2) {
            assert!(
                pair[1].injected_gbs > pair[0].injected_gbs,
                "curve must ascend in offered load"
            );
            assert!(
                pair[1].avg_latency >= pair[0].avg_latency,
                "{}: loaded latency fell from {} to {} when injection rose \
                 {:.1} -> {:.1} GB/s",
                design.label(),
                pair[0].avg_latency,
                pair[1].avg_latency,
                pair[0].injected_gbs,
                pair[1].injected_gbs,
            );
        }
    }
}

#[test]
fn footprint_usable_bandwidth_at_least_page_based() {
    for mb in [64, 256] {
        let footprint = usable_bandwidth(&loaded::curve(&DesignSpec::footprint(mb), &cfg()));
        let page = usable_bandwidth(&loaded::curve(&DesignSpec::page(mb), &cfg()));
        assert!(
            footprint >= page,
            "at {mb} MB Footprint sustains {footprint:.2} GB/s < page-based {page:.2} GB/s"
        );
    }
}

#[test]
fn saturation_shows_queueing_delay() {
    // At the heaviest offered load, the queued engine must report
    // queueing: delay histograms populated beyond the zero bin on at
    // least one DRAM, and bus utilization strictly positive.
    let design = DesignSpec::page(64);
    let heavy = loaded::measure(&design, *STANDARD_INTERVALS.last().unwrap(), &cfg());
    let queued = heavy.offchip.queue_delay_cycles + heavy.stacked.queue_delay_cycles;
    assert!(queued > 0, "saturated run recorded no queueing delay");
    assert!(heavy.offchip_util() > 0.0);
    let light = loaded::measure(&design, STANDARD_INTERVALS[0], &cfg());
    assert!(
        heavy.avg_latency > light.avg_latency,
        "saturation must cost latency"
    );
}
