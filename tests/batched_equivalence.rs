//! The batched replay path must be bit-identical to the per-record
//! path: `Simulation::step_slice` / `step_batch` exist purely to
//! amortize loop overhead, so for every registered design family the
//! `SimReport` after a batched replay must equal the one after stepping
//! the same records one at a time — and the equality must hold for
//! *any* placement of batch boundaries, including mid row-burst.

use proptest::prelude::*;

use fc_sim::{RecordBatch, ReportSnapshot, SimConfig, SimReport, Simulation, DESIGN_FAMILIES};
use fc_trace::{TraceGenerator, TraceRecord, WorkloadKind};

const WARMUP: usize = 4_000;
const MEASURED: usize = 8_000;

fn records(workload: WorkloadKind, n: usize) -> Vec<TraceRecord> {
    TraceGenerator::new(workload, 16, 42).take(n).collect()
}

fn report_after(sim: &Simulation) -> SimReport {
    SimReport::since(sim, &ReportSnapshot::zero())
}

/// Per-record reference replay: warmup, drain, then measured records
/// stepped one at a time.
fn run_per_record(design: &fc_sim::DesignSpec, rs: &[TraceRecord]) -> SimReport {
    let mut sim = Simulation::new(SimConfig::default(), *design);
    for r in &rs[..WARMUP] {
        sim.step(r);
    }
    sim.drain();
    for r in &rs[WARMUP..] {
        sim.step(r);
    }
    sim.drain();
    report_after(&sim)
}

/// Batched replay of the same records through `step_slice`.
fn run_batched(design: &fc_sim::DesignSpec, rs: &[TraceRecord]) -> SimReport {
    let mut sim = Simulation::new(SimConfig::default(), *design);
    sim.step_slice(&rs[..WARMUP]);
    sim.drain();
    sim.step_slice(&rs[WARMUP..]);
    sim.drain();
    report_after(&sim)
}

#[test]
fn batched_replay_is_bit_identical_for_every_design() {
    for workload in [WorkloadKind::WebSearch, WorkloadKind::DataServing] {
        let rs = records(workload, WARMUP + MEASURED);
        for family in DESIGN_FAMILIES {
            let design = family.build(64);
            let per_record = run_per_record(&design, &rs);
            let batched = run_batched(&design, &rs);
            assert_eq!(
                per_record, batched,
                "{} diverged under batching on {workload:?}",
                family.name
            );
        }
    }
}

#[test]
fn step_batch_matches_step_slice() {
    let rs = records(WorkloadKind::WebSearch, 6_000);
    let design = fc_sim::DesignSpec::footprint(64);

    let mut a = Simulation::new(SimConfig::default(), design);
    a.step_slice(&rs);
    a.drain();

    let mut b = Simulation::new(SimConfig::default(), design);
    let batch = RecordBatch::from_records(&rs);
    b.step_batch(&batch);
    b.drain();

    assert_eq!(report_after(&a), report_after(&b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary batch boundaries — including splits inside a page's
    /// access run or a row burst — must not move a single counter.
    #[test]
    fn batch_boundaries_never_change_the_report(
        cuts in proptest::collection::vec(1usize..6_000, 1..8),
        footprint in proptest::bool::ANY,
    ) {
        let rs = records(WorkloadKind::WebSearch, 6_000);
        let design = if footprint {
            fc_sim::DesignSpec::footprint(64)
        } else {
            fc_sim::DesignSpec::block(64)
        };

        let mut reference = Simulation::new(SimConfig::default(), design);
        for r in &rs {
            reference.step(r);
        }
        reference.drain();

        let mut chunked = Simulation::new(SimConfig::default(), design);
        let mut bounds: Vec<usize> = cuts;
        bounds.push(0);
        bounds.push(rs.len());
        bounds.sort_unstable();
        bounds.dedup();
        for w in bounds.windows(2) {
            chunked.step_slice(&rs[w[0]..w[1]]);
        }
        chunked.drain();

        prop_assert_eq!(report_after(&reference), report_after(&chunked));
    }
}
