//! Acceptance tests of the sampled-simulation subsystem (`fc-sample`
//! + the sweep layer's sampled grid):
//!
//! * **Accuracy** — for every design family in the registry, on the
//!   standard workloads, the sampled IPC estimate lands within 3%
//!   relative error of the full detailed run AND within its reported
//!   95% confidence interval (up to a 1% systematic-resolution floor:
//!   the sampler measures a deterministic interval frame, so for
//!   near-noiseless metrics the Student-t CI can be narrower than the
//!   frame's irreducible offset). Hit-ratio estimates land within
//!   `max(CI, 0.02)` of the full run.
//! * **Work bound** — at the long-trace scale the auto plans replay at
//!   most a fifth of the records across the design space, the
//!   deterministic bound behind the ≥5x end-to-end speedup
//!   `BENCH_sample.json` demonstrates.
//! * **Determinism** — sampled grids are bit-identical for any worker
//!   thread count, and the streaming trace path matches the cached
//!   slice path bit for bit.
//!
//! Everything here is deterministic: fixed seeds, fixed plans, no
//! wall-clock assertions.

use fc_sim::registry::DESIGN_FAMILIES;
use fc_sweep::{
    run_sampled_grid, DesignSpec, RunScale, SamplePlan, SampledGrid, SweepEngine, SweepSpec,
    WorkloadKind,
};

/// The sizing accuracy runs use: traces long enough that the auto
/// plans actually skip (the regime sampling exists for), short enough
/// for a debug-profile test run.
fn accuracy_scale() -> RunScale {
    RunScale {
        warmup_base: 400_000,
        warmup_per_mb: 0,
        measured_base: 2_000_000,
        measured_per_mb: 0,
    }
}

/// The capacity accuracy runs use: small, so the capacity-scaled warm
/// windows cover a minor fraction of the trace.
const CAPACITY_MB: u64 = 8;

fn check_accuracy(spec: &SweepSpec) {
    let grid = SampledGrid::auto(spec);
    let engine = SweepEngine::new().with_trace_budget(2_500_000).quiet();
    let sampled = run_sampled_grid(&grid, &engine);
    let full = engine.run_spec(spec);

    for (s, f) in sampled.iter().zip(&full) {
        let label = s.point.label();
        let full_ipc = f.report.throughput();
        let est = &s.report.ipc;
        let rel_err = (est.mean - full_ipc).abs() / full_ipc;
        assert!(
            rel_err <= 0.03,
            "{label}: sampled IPC {:.4} vs full {full_ipc:.4} — {:.2}% error (limit 3%)",
            est.mean,
            rel_err * 100.0
        );
        assert!(
            est.contains(full_ipc) || rel_err <= 0.01,
            "{label}: full IPC {full_ipc:.4} outside the 95% CI {:.4}±{:.4} \
             and beyond the 1% resolution floor",
            est.mean,
            est.ci_half
        );

        let full_hit = f.report.cache.hit_ratio();
        let hit = &s.report.hit_ratio;
        let tolerance = hit.ci_half.max(0.02);
        assert!(
            (hit.mean - full_hit).abs() <= tolerance,
            "{label}: sampled hit ratio {:.4} vs full {full_hit:.4} \
             (tolerance {tolerance:.4})",
            hit.mean
        );

        // The estimates really are interval statistics, not a single
        // degenerate measurement (exhaustive-fallback plans widen the
        // intervals, but still measure a small slice of the run).
        assert!(est.n >= 4, "{label}: only {} intervals", est.n);
        assert!(s.report.measured_fraction() < 0.15, "{label}");
    }
}

/// Every design family of the registry, resolved at the accuracy
/// capacity (capacity-independent families resolve as themselves).
fn all_families() -> Vec<DesignSpec> {
    let names: Vec<&str> = DESIGN_FAMILIES.iter().map(|f| f.name).collect();
    fc_sim::resolve_designs(&names.join(","), &[CAPACITY_MB]).expect("registry resolves")
}

#[test]
fn sampled_estimates_match_full_runs_for_every_family() {
    let spec = SweepSpec::new(accuracy_scale())
        .grid(&[WorkloadKind::WebSearch], &all_families())
        .dedup();
    check_accuracy(&spec);
}

#[test]
fn sampled_estimates_hold_on_a_second_workload() {
    // The paper's second server workload, on the families whose state
    // memory spans the spectrum: page-organized, predictor-driven
    // (Footprint), and frequency-counted (Banshee, which the auto
    // planner refuses to skip).
    let designs = vec![
        DesignSpec::page(CAPACITY_MB),
        DesignSpec::footprint(CAPACITY_MB),
        DesignSpec::banshee(CAPACITY_MB),
    ];
    let spec = SweepSpec::new(accuracy_scale()).grid(&[WorkloadKind::DataServing], &designs);
    check_accuracy(&spec);
}

#[test]
fn auto_plans_clear_the_5x_work_bound_at_long_scale() {
    // The deterministic bound behind the wall-clock speedup: across
    // the design space at the long-trace scale, the auto plans replay
    // at most a fifth of the records a full detailed sweep would.
    let spec = SweepSpec::new(RunScale::long())
        .grid(&[WorkloadKind::WebSearch], &all_families())
        .dedup();
    let grid = SampledGrid::auto(&spec);
    let mut replayed = 0.0;
    let mut total = 0.0;
    for sp in grid.points() {
        let (w, m) = (sp.point.warmup(), sp.point.measured());
        replayed += sp.plan.replayed_fraction(w, m) * (w + m) as f64;
        total += (w + m) as f64;
    }
    assert!(
        replayed <= total / 5.0,
        "auto plans replay {:.1}% of the long-scale design space \
         (bound: 20%)",
        100.0 * replayed / total
    );
}

#[test]
fn sampled_grid_is_bit_identical_for_any_thread_count() {
    let spec = SweepSpec::new(RunScale::tiny()).grid(
        &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
        &[
            DesignSpec::baseline(),
            DesignSpec::footprint(64),
            DesignSpec::page(64),
        ],
    );
    let grid = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
    let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
    let par = run_sampled_grid(&grid, &SweepEngine::new().with_threads(4).quiet());
    assert_eq!(seq.len(), grid.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.point, b.point, "result order must match grid order");
        assert_eq!(
            *a.report,
            *b.report,
            "{}: parallel sampled run diverged from sequential",
            a.point.label()
        );
        assert!(a.report.ipc.mean > 0.0);
    }
}

#[test]
fn streaming_and_cached_trace_paths_agree_bit_for_bit() {
    // The slice path skips by index arithmetic, the streaming path by
    // synthesizing and discarding; both must land on identical
    // reports (skip-heavy plan so the skips actually exercise both).
    let spec =
        SweepSpec::new(RunScale::tiny()).point(WorkloadKind::MapReduce, DesignSpec::footprint(64));
    let plan = SamplePlan::new(1_000, 200, 100, 100).with_warmup_window(500);
    let grid = SampledGrid::with_plan(&spec, plan);
    let cached = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
    let streamed = run_sampled_grid(
        &grid,
        &SweepEngine::new()
            .with_threads(2)
            .with_trace_budget(0)
            .quiet(),
    );
    assert_eq!(*cached[0].report, *streamed[0].report);
    assert!(cached[0].report.plan.skip() > 0, "plan must actually skip");
}
