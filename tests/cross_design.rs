//! Cross-design ordering tests: the qualitative results the paper's
//! evaluation hinges on must hold in the reproduction at test scale.
//! These encode Figure 5's orderings, the singleton ablation direction
//! (Section 6.5), and the sub-blocked extreme (Section 3.1).

use fc_sim::{DesignSpec, SimConfig, SimReport, Simulation};
use fc_trace::WorkloadKind;

// Test scale: enough for FHT training (evictions at 64 MB start early).
const WARMUP: u64 = 900_000;
const MEASURED: u64 = 400_000;
const MB: u64 = 64;

fn run(design: DesignSpec, workload: WorkloadKind) -> SimReport {
    let mut sim = Simulation::new(SimConfig::default(), design);
    sim.run_workload(workload, 77, WARMUP, MEASURED)
}

#[test]
fn miss_ratio_ordering_page_footprint_block() {
    // Figure 5a: page <= footprint << block for a high-density workload.
    let w = WorkloadKind::WebSearch;
    let page = run(DesignSpec::page(MB), w).cache.miss_ratio();
    let fp = run(DesignSpec::footprint(MB), w).cache.miss_ratio();
    let block = run(DesignSpec::block(MB), w).cache.miss_ratio();
    assert!(
        page <= fp + 0.05,
        "page ({page:.3}) should be at or below footprint ({fp:.3})"
    );
    assert!(
        fp < block * 0.6,
        "footprint ({fp:.3}) must be far below block ({block:.3})"
    );
}

#[test]
fn offchip_traffic_ordering_block_footprint_page() {
    // Figure 5b: block <= footprint << page.
    let w = WorkloadKind::WebSearch;
    let page = run(DesignSpec::page(MB), w).offchip_bytes_per_inst();
    let fp = run(DesignSpec::footprint(MB), w).offchip_bytes_per_inst();
    let block = run(DesignSpec::block(MB), w).offchip_bytes_per_inst();
    assert!(
        fp < page * 0.5,
        "footprint traffic ({fp:.3}) must be far below page ({page:.3})"
    );
    assert!(
        fp < block * 1.8,
        "footprint traffic ({fp:.3}) must be near block ({block:.3})"
    );
}

#[test]
fn page_cache_inflates_traffic_over_baseline() {
    // Figure 5b's key indictment of page-based caching.
    let w = WorkloadKind::DataServing;
    let base = run(DesignSpec::baseline(), w).offchip_bytes_per_inst();
    let page = run(DesignSpec::page(MB), w).offchip_bytes_per_inst();
    assert!(
        page > base * 2.0,
        "page-based ({page:.3}) must inflate traffic well beyond baseline ({base:.3})"
    );
}

#[test]
fn footprint_outperforms_baseline_and_page_on_bandwidth_bound_workload() {
    // Figure 7: Data Serving.
    let w = WorkloadKind::DataServing;
    let base = run(DesignSpec::baseline(), w).throughput();
    let page = run(DesignSpec::page(MB), w).throughput();
    let fp = run(DesignSpec::footprint(MB), w).throughput();
    assert!(
        fp > base,
        "footprint ({fp:.3}) must beat baseline ({base:.3})"
    );
    assert!(fp > page, "footprint ({fp:.3}) must beat page ({page:.3})");
}

#[test]
fn ideal_is_an_upper_bound() {
    let w = WorkloadKind::WebFrontend;
    let ideal = run(DesignSpec::ideal(), w).throughput();
    for design in [
        DesignSpec::baseline(),
        DesignSpec::block(MB),
        DesignSpec::footprint(MB),
    ] {
        let t = run(design, w).throughput();
        assert!(
            t <= ideal * 1.02,
            "{} ({t:.3}) exceeded ideal ({ideal:.3})",
            design.label()
        );
    }
}

#[test]
fn singleton_optimization_does_not_hurt_miss_rate() {
    // Section 6.5: removing singleton pages frees capacity.
    let w = WorkloadKind::DataServing;
    let with = run(DesignSpec::footprint(MB), w).cache.miss_ratio();
    let without = run(DesignSpec::footprint_no_singleton(MB), w)
        .cache
        .miss_ratio();
    assert!(
        with <= without + 0.02,
        "singleton opt should not hurt: with={with:.3} without={without:.3}"
    );
}

#[test]
fn subblocked_misses_more_than_footprint() {
    // Section 3.1: the sub-blocked cache is the maximum-underprediction
    // extreme; a trained footprint predictor must beat it on misses.
    let w = WorkloadKind::WebSearch;
    let sub = run(DesignSpec::subblock(MB), w).cache.miss_ratio();
    let fp = run(DesignSpec::footprint(MB), w).cache.miss_ratio();
    assert!(
        fp < sub,
        "footprint ({fp:.3}) must miss less than sub-blocked ({sub:.3})"
    );
}

#[test]
fn footprint_spends_less_stacked_energy_per_instruction_than_block() {
    // Figure 11: Footprint cuts total stacked dynamic energy per
    // instruction vs the block-based design (whose every access moves
    // tag blocks and activates a closed row).
    let w = WorkloadKind::WebSearch;
    let block = run(DesignSpec::block(MB), w);
    let fp = run(DesignSpec::footprint(MB), w);
    let block_epi = block.stacked_energy_per_inst_nj();
    let fp_epi = fp.stacked_energy_per_inst_nj();
    assert!(
        fp_epi < block_epi,
        "footprint stacked energy/inst ({fp_epi:.4} nJ) must be below block ({block_epi:.4} nJ)"
    );
}

#[test]
fn footprint_predictor_accuracy_is_high() {
    // Figure 8: near-perfect coverage with small overprediction for
    // stable, structured workloads.
    let r = run(DesignSpec::footprint(MB), WorkloadKind::WebSearch);
    let p = r.prediction.expect("counters");
    let demanded = (p.covered + p.underpredicted).max(1) as f64;
    let coverage = p.covered as f64 / demanded;
    let over = p.overpredicted as f64 / demanded;
    assert!(coverage > 0.80, "coverage too low: {coverage:.3}");
    assert!(over < 0.30, "overprediction too high: {over:.3}");
}

#[test]
fn sat_solver_drift_degrades_prediction() {
    // Section 6.2: the drifting dataset interferes with the predictor;
    // coverage must be visibly worse than on the stable Web Search.
    let stable = run(DesignSpec::footprint(MB), WorkloadKind::WebSearch);
    let drift = run(DesignSpec::footprint(MB), WorkloadKind::SatSolver);
    let cov = |r: &SimReport| {
        let p = r.prediction.expect("counters");
        p.covered as f64 / (p.covered + p.underpredicted).max(1) as f64
    };
    assert!(
        cov(&drift) < cov(&stable),
        "drift ({:.3}) should reduce coverage vs stable ({:.3})",
        cov(&drift),
        cov(&stable)
    );
}
