//! Spec/registry integration tests: JSON round-trips, stable result-
//! store hashing, and end-to-end sanity for the related-work designs
//! (Alloy, Banshee, Gemini) added on top of the registry.

use fc_sim::{DesignSpec, SimConfig, SimReport, Simulation, DESIGN_FAMILIES};
use fc_sweep::{RunScale, SweepEngine, SweepSpec};
use fc_trace::WorkloadKind;
use fc_types::{MemAccess, Pc, PhysAddr};

// ---------------------------------------------------------------------
// Spec serialization and hashing.

#[test]
fn every_registered_design_round_trips_through_json() {
    for family in DESIGN_FAMILIES {
        let spec = family.build(64);
        let json = spec.to_json();
        let back = DesignSpec::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", family.name));
        assert_eq!(spec, back, "{} changed in flight", family.name);
    }
}

#[test]
fn result_store_keys_are_stable_across_spec_round_trips() {
    // A spec that went through JSON must memoize onto the same key as
    // the original — the store's hash is a pure function of the spec.
    let scale = RunScale::tiny();
    for family in DESIGN_FAMILIES {
        let design = family.build(64);
        let round_tripped = DesignSpec::from_json(&design.to_json()).expect("round trip");
        let a = SweepSpec::new(scale).point(WorkloadKind::WebSearch, design);
        let b = SweepSpec::new(scale).point(WorkloadKind::WebSearch, round_tripped);
        assert_eq!(
            a.points()[0].key(),
            b.points()[0].key(),
            "{} hashed differently after JSON",
            family.name
        );
    }
}

#[test]
fn distinct_designs_never_share_store_keys() {
    let scale = RunScale::tiny();
    let mut seen = std::collections::HashMap::new();
    for family in DESIGN_FAMILIES {
        for mb in [64u64, 128] {
            let spec = SweepSpec::new(scale).point(WorkloadKind::WebSearch, family.build(mb));
            let key = spec.points()[0].key();
            if let Some(previous) = seen.insert(key.clone(), (family.name, mb)) {
                // Capacity-independent families collapse across mb —
                // that is the only legal collision.
                assert_eq!(
                    previous.0, family.name,
                    "{}@{mb} aliased {}@{}",
                    family.name, previous.0, previous.1
                );
                assert!(!family.scales_with_capacity);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-design latency ordering: a stacked hit must be cheaper than the
// miss that fills it, for each new design.

fn hit_and_miss_latency(design: DesignSpec) -> (u64, u64) {
    let mut memsys = design.build();
    let read = |addr: u64| MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0);
    let miss_done = memsys.demand_access(read(0x8000), 0);
    let miss_latency = miss_done;
    // Banshee/Gemini install on the first touch; Alloy fills its TAD.
    // Let the background fills drain, then re-demand the same block.
    let hit_start = miss_done + 100_000;
    let hit_done = memsys.demand_access(read(0x8000), hit_start);
    (hit_done - hit_start, miss_latency)
}

#[test]
fn alloy_hit_is_faster_than_miss() {
    let (hit, miss) = hit_and_miss_latency(DesignSpec::alloy(64));
    assert!(hit < miss, "alloy hit {hit} vs miss {miss}");
}

#[test]
fn banshee_hit_is_faster_than_miss() {
    let (hit, miss) = hit_and_miss_latency(DesignSpec::banshee(64));
    assert!(hit < miss, "banshee hit {hit} vs miss {miss}");
}

#[test]
fn gemini_hit_is_faster_than_miss() {
    let (hit, miss) = hit_and_miss_latency(DesignSpec::gemini(64));
    assert!(hit < miss, "gemini hit {hit} vs miss {miss}");
}

// ---------------------------------------------------------------------
// Alloy's signature behavior: every access is one compound (tag+data)
// stacked access, and the closed-row policy makes each an activation.

#[test]
fn alloy_compound_accesses_and_activations_match_demand_stream() {
    let mut memsys = DesignSpec::alloy(64).build();
    let accesses = 50u64;
    let mut at = 0;
    for i in 0..accesses {
        // Distinct blocks: every access probes (and then fills) a TAD.
        at = memsys.demand_access(
            MemAccess::read(Pc::new(0x400), PhysAddr::new(0x100_000 + i * 64), 0),
            at + 10_000,
        );
    }
    let stacked = memsys.stacked_stats();
    // One critical compound probe + one background compound fill per
    // miss.
    assert_eq!(stacked.compound_accesses, 2 * accesses);
    // Closed-page stack: every compound access activates its row.
    assert_eq!(stacked.activates, stacked.compound_accesses);
    // Each compound access moves a tag read + tag write beside the data.
    assert!(stacked.read_blocks >= 2 * accesses);
    assert!(stacked.write_blocks >= 2 * accesses);
}

#[test]
fn alloy_reports_compound_accesses_through_the_sweep_report() {
    let spec =
        SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::alloy(64));
    let results = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);
    assert!(
        results[0].report.stacked.compound_accesses > 0,
        "alloy runs must surface compound stacked accesses in SimReport"
    );
    // And the JSON emitter carries them.
    let json = fc_sweep::emit::to_json(&results);
    assert!(json.contains("\"stacked_compound_accesses\""));
}

// ---------------------------------------------------------------------
// Cross-design sanity at simulation scale: on the paper's default
// workloads, Footprint's speedup over the baseline is at least the
// page cache's — the traffic bill never makes Footprint the worse
// choice.

#[test]
fn footprint_speedup_at_least_page_on_default_workloads() {
    const WARMUP: u64 = 900_000;
    const MEASURED: u64 = 400_000;
    let run = |design: DesignSpec, w: WorkloadKind| -> SimReport {
        Simulation::new(SimConfig::default(), design).run_workload(w, 77, WARMUP, MEASURED)
    };
    for w in [WorkloadKind::WebSearch, WorkloadKind::DataServing] {
        let base = run(DesignSpec::baseline(), w).throughput();
        let page = run(DesignSpec::page(64), w).throughput() / base;
        let footprint = run(DesignSpec::footprint(64), w).throughput() / base;
        assert!(
            footprint >= page,
            "{w}: footprint speedup {footprint:.3} below page {page:.3}"
        );
    }
}

// ---------------------------------------------------------------------
// The new designs run end to end through the engine and behave like
// caches (some hits once warm).

#[test]
fn new_designs_hit_once_warm_through_the_engine() {
    let spec = SweepSpec::new(RunScale::tiny()).grid(
        &[WorkloadKind::WebSearch],
        &[
            DesignSpec::alloy(64),
            DesignSpec::banshee(64),
            DesignSpec::gemini(64),
        ],
    );
    let results = SweepEngine::new().with_threads(3).quiet().run_spec(&spec);
    for r in &results {
        assert!(r.report.insts > 0, "{} produced no work", r.point.label());
        assert!(
            r.report.cache.accesses > 0,
            "{} saw no demand stream",
            r.point.label()
        );
    }
    // The page-organized contenders exploit spatial locality even at
    // tiny scale (Alloy's 64 B blocks see none post-L2).
    for r in &results[1..] {
        assert!(
            r.report.cache.hits > 0,
            "{} never hit at tiny scale",
            r.point.label()
        );
    }
    // Alloy's signature instead: compound stacked traffic.
    assert!(results[0].report.stacked.compound_accesses > 0);
}
