//! Trace I/O round-trip and error-path coverage (integration level):
//! property-based round-trips over arbitrary multi-core records,
//! generator- and scenario-produced streams through the binary format,
//! and every `TraceIoError` variant.

use fc_trace::{
    ScenarioGenerator, ScenarioSpec, TraceGenerator, TraceIoError, TraceReader, TraceRecord,
    TraceWriter, WorkloadKind,
};
use fc_types::{AccessKind, Pc, PhysAddr};
use proptest::prelude::*;

fn write_all(records: &[TraceRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).expect("header writes");
    for r in records {
        w.write(r).expect("record writes");
    }
    w.finish().expect("flush");
    buf
}

fn read_all(buf: &[u8]) -> Vec<TraceRecord> {
    TraceReader::new(buf)
        .expect("valid header")
        .map(|r| r.expect("valid record"))
        .collect()
}

#[test]
fn generator_stream_round_trips() {
    let records: Vec<_> = TraceGenerator::new(WorkloadKind::DataServing, 16, 7)
        .take(10_000)
        .collect();
    assert_eq!(read_all(&write_all(&records)), records);
}

#[test]
fn scenario_stream_round_trips() {
    // Heterogeneous mix records (high address bits carry the workload
    // salt) survive the fixed-width format too.
    let spec = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 16);
    let records: Vec<_> = ScenarioGenerator::new(&spec, 7).take(10_000).collect();
    assert_eq!(read_all(&write_all(&records)), records);
}

#[test]
fn bad_magic_is_detected() {
    assert!(matches!(
        TraceReader::new(&b"NOTATRACE!"[..]).unwrap_err(),
        TraceIoError::BadMagic
    ));
    // Too short for a header at all.
    assert!(matches!(
        TraceReader::new(&b"FC"[..]).unwrap_err(),
        TraceIoError::BadMagic
    ));
}

#[test]
fn truncation_is_detected_at_every_cut() {
    let records: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 3)
        .take(3)
        .collect();
    let buf = write_all(&records);
    // Cut anywhere strictly inside the final record.
    for cut in 1..21 {
        let mut short = buf.clone();
        short.truncate(buf.len() - cut);
        let results: Vec<_> = TraceReader::new(short.as_slice()).unwrap().collect();
        assert_eq!(results.len(), 3, "cut {cut}: two records + one error");
        assert!(results[0].is_ok() && results[1].is_ok());
        assert!(
            matches!(results[2], Err(TraceIoError::TruncatedRecord)),
            "cut {cut}"
        );
    }
}

#[test]
fn invalid_kind_byte_is_detected() {
    let records: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 3)
        .take(2)
        .collect();
    let mut buf = write_all(&records);
    // Second record's kind byte: 8 (magic) + 22 (record) + 20 (offset).
    buf[8 + 22 + 20] = 7;
    let results: Vec<_> = TraceReader::new(buf.as_slice()).unwrap().collect();
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(TraceIoError::InvalidKind(7))));
}

proptest! {
    #[test]
    fn arbitrary_multicore_records_round_trip(
        recs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<u8>(), 1u32..=u32::MAX),
            0..200)
    ) {
        let records: Vec<TraceRecord> = recs
            .into_iter()
            .map(|(pc, addr, write, core, gap)| TraceRecord {
                pc: Pc::new(pc),
                addr: PhysAddr::new(addr),
                kind: if write { AccessKind::Write } else { AccessKind::Read },
                core,
                inst_gap: gap,
            })
            .collect();
        prop_assert_eq!(read_all(&write_all(&records)), records);
    }

    #[test]
    fn truncated_tails_never_parse_silently(extra in 1usize..21) {
        // A valid stream plus a partial record must yield exactly one
        // TruncatedRecord error after the valid prefix.
        let records: Vec<_> = TraceGenerator::new(WorkloadKind::MapReduce, 2, 5)
            .take(4)
            .collect();
        let mut buf = write_all(&records);
        let tail = write_all(&records[..1]);
        buf.extend_from_slice(&tail[8..8 + extra]);
        let results: Vec<_> = TraceReader::new(buf.as_slice()).unwrap().collect();
        prop_assert_eq!(results.len(), 5);
        prop_assert!(results[..4].iter().all(|r| r.is_ok()));
        prop_assert!(matches!(results[4], Err(TraceIoError::TruncatedRecord)));
    }
}
