//! Determinism and workload-model validation: equal seeds must replay
//! identical simulations, and the synthetic workloads must exhibit the
//! statistical properties the paper's analysis depends on.

use fc_sim::{analysis, DesignSpec, SimConfig, Simulation};
use fc_trace::{TraceGenerator, WorkloadKind};

#[test]
fn identical_seeds_identical_reports() {
    let run = || {
        let mut sim = Simulation::new(SimConfig::default(), DesignSpec::footprint(64));
        sim.run_workload(WorkloadKind::DataServing, 999, 120_000, 80_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.insts, b.insts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.offchip, b.offchip);
    assert_eq!(a.stacked, b.stacked);
    assert_eq!(a.prediction, b.prediction);
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let mut sim = Simulation::new(SimConfig::default(), DesignSpec::baseline());
        sim.run_workload(WorkloadKind::WebSearch, seed, 50_000, 50_000)
    };
    assert_ne!(run(1).cycles, run(2).cycles);
}

#[test]
fn workload_density_profiles_differ_as_designed() {
    // MapReduce scans must look denser than SAT Solver's sparse walks in
    // the residency-free density bound.
    let density_mean = |w: WorkloadKind| {
        let records = TraceGenerator::new(w, 16, 5).take(400_000);
        let hist = analysis::page_density(records, 2048);
        let reps = [1.0, 2.5, 5.5, 11.5, 23.5, 32.0];
        let f = hist.fractions();
        f.iter().zip(reps).map(|(p, r)| p * r).sum::<f64>()
    };
    let search = density_mean(WorkloadKind::WebSearch);
    let sat = density_mean(WorkloadKind::SatSolver);
    assert!(
        search > sat,
        "Web Search ({search:.2}) must be denser than SAT Solver ({sat:.2})"
    );
}

#[test]
fn singleton_pages_exist_in_every_scale_out_workload() {
    for w in [
        WorkloadKind::DataServing,
        WorkloadKind::MapReduce,
        WorkloadKind::WebFrontend,
        WorkloadKind::WebSearch,
    ] {
        let records = TraceGenerator::new(w, 16, 6).take(300_000);
        let hist = analysis::page_density(records, 2048);
        let f = hist.fractions();
        assert!(f[0] > 0.03, "{w}: singleton fraction {:.3} too small", f[0]);
    }
}

#[test]
fn density_grows_with_cache_capacity() {
    // The Figure 4 mechanism: longer residency exposes more of each
    // page's visit. MapReduce's scans span far more than the 64 MB
    // residency, so its eviction density must grow markedly by 256 MB
    // (the paper's "very low density at 64/128 MB" observation). The
    // caches must be warmed enough that evictions are steady-state.
    let mean_density = |mb: u64| {
        let mut sim = Simulation::new(SimConfig::default(), DesignSpec::page(mb));
        let r = sim.run_workload(WorkloadKind::MapReduce, 21, 4_000_000, 2_000_000);
        let f = r.cache.density.fractions();
        let reps = [1.0, 2.5, 5.5, 11.5, 23.5, 32.0];
        f.iter().zip(reps).map(|(p, rep)| p * rep).sum::<f64>()
    };
    let small = mean_density(64);
    let large = mean_density(256);
    assert!(
        large > small * 1.3,
        "density must grow with capacity: 64MB={small:.2} vs 256MB={large:.2}"
    );
}

#[test]
fn trace_interleaving_is_roughly_time_ordered() {
    // The generator merges per-core schedules by instruction time; the
    // per-core cumulative instruction counts must stay within a modest
    // band of each other.
    let mut insts = [0u64; 16];
    for r in TraceGenerator::new(WorkloadKind::WebFrontend, 16, 8).take(200_000) {
        insts[r.core as usize] += r.inst_gap as u64;
    }
    let max = *insts.iter().max().unwrap() as f64;
    let min = *insts.iter().min().unwrap() as f64;
    assert!(
        min / max > 0.5,
        "cores drifted apart: min {min} vs max {max}"
    );
}

#[test]
fn multiprogrammed_resident_cores_hit_more_at_large_caches() {
    // The even cores' working sets fit at 512 MB; the hit ratio must
    // improve substantially from 64 MB to 512 MB.
    let hit = |mb: u64| {
        let mut sim = Simulation::new(SimConfig::default(), DesignSpec::page(mb));
        sim.run_workload(WorkloadKind::Multiprogrammed, 31, 1_000_000, 500_000)
            .cache
            .hit_ratio()
    };
    let small = hit(64);
    let large = hit(512);
    assert!(
        large >= small,
        "multiprogrammed hit ratio should not degrade with capacity: \
         64MB={small:.3} 512MB={large:.3}"
    );
}
