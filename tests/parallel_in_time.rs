//! Acceptance tests of the parallel-in-time sampled-simulation layer
//! (`fc_sample::run_sampled_pit` + the sweep layer's interval-level
//! dispatcher):
//!
//! * **Bit-equality** — for every design family in the registry, on
//!   two workloads, a sampled grid dispatched interval-by-interval
//!   across worker threads is bit-identical to the sequential run at
//!   any worker count.
//! * **Checkpoint transparency** — a checkpoint capture/restore
//!   round-trip at a functional-replay boundary is invisible: the
//!   continued run matches an uninterrupted one bit for bit
//!   (property-tested over boundary positions and seeds).
//! * **Accuracy unchanged** — parallel-in-time estimates satisfy the
//!   same 3%-of-full-run accuracy bounds the sequential sampler is
//!   held to (they are the same numbers, but this asserts it against
//!   the detailed run, not against the sequential sampler).
//! * **Observability** — interval dispatch advances the
//!   `pit.intervals_dispatched` / `pit.checkpoints_restored` pair.
//!
//! Everything here is deterministic: fixed seeds, fixed plans, no
//! wall-clock assertions.

use fc_sim::registry::DESIGN_FAMILIES;
use fc_sim::{ReportSnapshot, SimReport, Simulation};
use fc_sweep::{
    run_sampled_grid, run_sampled_grid_pit, DesignSpec, RunScale, SamplePlan, SampledGrid,
    SimConfig, SweepEngine, SweepSpec, WorkloadKind,
};
use fc_trace::{TraceGenerator, TraceRecord};
use proptest::prelude::*;

/// Every design family of the registry at a small capacity
/// (capacity-independent families resolve as themselves).
fn all_families() -> Vec<DesignSpec> {
    let names: Vec<&str> = DESIGN_FAMILIES.iter().map(|f| f.name).collect();
    fc_sim::resolve_designs(&names.join(","), &[8]).expect("registry resolves")
}

/// A plan that actually skips (period 1000 = skip 600, functional 200,
/// detailed 100, measured 100), so the parallel-in-time path engages
/// rather than delegating to the continuous driver.
fn skipping_plan() -> SamplePlan {
    SamplePlan::new(1_000, 200, 100, 100).with_warmup_window(1_000)
}

#[test]
fn pit_grids_are_bit_identical_for_every_design_family() {
    let spec = SweepSpec::new(RunScale::tiny())
        .grid(
            &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
            &all_families(),
        )
        .dedup();
    let grid = SampledGrid::with_plan(&spec, skipping_plan());
    let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
    assert_eq!(seq.len(), grid.len());
    assert!(
        seq.iter().all(|r| r.report.plan.skip() > 0),
        "the plan must skip, or nothing splits in time"
    );
    for workers in [2, 6] {
        let pit = run_sampled_grid_pit(&grid, &SweepEngine::new().with_threads(1).quiet(), workers);
        for (a, b) in seq.iter().zip(&pit) {
            assert_eq!(a.point, b.point, "result order must match grid order");
            assert_eq!(
                *a.report,
                *b.report,
                "{}: {workers}-worker parallel-in-time run diverged from sequential",
                a.point.label()
            );
        }
    }
}

#[test]
fn pit_dispatch_advances_the_checkpoint_metric_pair() {
    let spec =
        SweepSpec::new(RunScale::tiny()).point(WorkloadKind::MapReduce, DesignSpec::footprint(8));
    let grid = SampledGrid::with_plan(&spec, skipping_plan());
    let periods: u64 = grid
        .points()
        .iter()
        .map(|sp| sp.point.measured() / sp.plan.period)
        .sum();
    assert!(periods > 0);
    let before = fc_obs::metrics::snapshot();
    run_sampled_grid_pit(&grid, &SweepEngine::new().with_threads(1).quiet(), 3);
    let delta = fc_obs::metrics::snapshot().delta(&before);
    // Lower bounds, not equality: the metrics registry is
    // process-wide and other tests in this binary dispatch too.
    assert!(delta.counter("pit.intervals_dispatched").unwrap_or(0) >= periods);
    assert!(delta.counter("pit.checkpoints_restored").unwrap_or(0) >= periods);
}

#[test]
fn pit_estimates_meet_the_sequential_accuracy_bounds() {
    // The same 3% IPC / CI-containment bounds tests/sampled_accuracy.rs
    // holds the sequential sampler to, asserted directly against the
    // full detailed run for a parallel-in-time grid.
    let scale = RunScale {
        warmup_base: 400_000,
        warmup_per_mb: 0,
        measured_base: 2_000_000,
        measured_per_mb: 0,
    };
    let spec = SweepSpec::new(scale).grid(
        &[WorkloadKind::WebSearch],
        &[DesignSpec::footprint(8), DesignSpec::page(8)],
    );
    let grid = SampledGrid::auto(&spec);
    let engine = SweepEngine::new().with_trace_budget(2_500_000).quiet();
    let sampled = run_sampled_grid_pit(&grid, &engine, 4);
    let full = engine.run_spec(&spec);
    for (s, f) in sampled.iter().zip(&full) {
        let label = s.point.label();
        let full_ipc = f.report.throughput();
        let est = &s.report.ipc;
        let rel_err = (est.mean - full_ipc).abs() / full_ipc;
        assert!(
            rel_err <= 0.03,
            "{label}: parallel-in-time IPC {:.4} vs full {full_ipc:.4} — {:.2}% error (limit 3%)",
            est.mean,
            rel_err * 100.0
        );
        assert!(
            est.contains(full_ipc) || rel_err <= 0.01,
            "{label}: full IPC {full_ipc:.4} outside the 95% CI {:.4}±{:.4} \
             and beyond the 1% resolution floor",
            est.mean,
            est.ci_half
        );
    }
}

fn footprint_sim() -> Simulation {
    Simulation::new(SimConfig::small(), DesignSpec::footprint(8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Functional replay leaves the engine quiescent, so capturing a
    /// checkpoint there and continuing from the restored copy must be
    /// indistinguishable from never having checkpointed — for any
    /// boundary position, suffix length, and trace seed. This is the
    /// invariant the whole parallel-in-time layer rests on.
    #[test]
    fn checkpoint_round_trip_is_invisible(
        prefix in 200usize..1_500,
        suffix in 100usize..800,
        seed in 0u64..64,
    ) {
        let records: Vec<TraceRecord> = TraceGenerator::new(WorkloadKind::WebSearch, 4, seed)
            .take(prefix + suffix)
            .collect();

        // Uninterrupted: functional prefix, then detailed suffix.
        let mut plain = footprint_sim();
        for r in &records[..prefix] {
            plain.step_functional(r);
        }
        for r in &records[prefix..] {
            plain.step(r);
        }

        // Round-tripped at the same boundary, both ways a worker can
        // come back from a checkpoint: `to_sim` (fresh engine) and
        // `restore` (onto an existing engine).
        let mut src = footprint_sim();
        for r in &records[..prefix] {
            src.step_functional(r);
        }
        let ckpt = src.checkpoint();
        let mut cloned = ckpt.to_sim();
        let mut restored = footprint_sim();
        restored.restore(&ckpt);
        for r in &records[prefix..] {
            cloned.step(r);
            restored.step(r);
        }

        let zero = ReportSnapshot::zero();
        let want = SimReport::since(&plain, &zero);
        prop_assert_eq!(&want, &SimReport::since(&cloned, &zero));
        prop_assert_eq!(&want, &SimReport::since(&restored, &zero));
    }
}
