//! Workspace facade for the Footprint Cache reproduction.
//!
//! Re-exports every layer so downstream users (and the top-level
//! examples and integration tests) can depend on one crate. The layers,
//! bottom to top:
//!
//! | crate | role |
//! |---|---|
//! | [`fc_types`] | shared vocabulary: addresses, footprints, geometry |
//! | [`fc_trace`] | trace format + synthetic scale-out workloads |
//! | [`fc_cache`] | SRAM L2 + baseline DRAM-cache designs |
//! | [`fc_dram`] | DRAM timing/energy model (stacked + off-chip) |
//! | [`footprint_cache`] | the paper's design: FHT, singleton table, cache |
//! | [`fc_sim`] | trace-driven pod simulator |
//! | [`fc_sweep`] | parallel experiment-orchestration engine |
//! | [`fc_bench`] | the paper's figures/tables, driven through `fc_sweep` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fc_bench;
pub use fc_cache;
pub use fc_dram;
pub use fc_sim;
pub use fc_sweep;
pub use fc_trace;
pub use fc_types;
pub use footprint_cache;
