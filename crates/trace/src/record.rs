//! A single trace record.

use core::fmt;

use serde::{Deserialize, Serialize};

use fc_types::{AccessKind, CoreId, MemAccess, Pc, PhysAddr};

/// One memory reference in a trace: the access itself plus the number of
/// instructions the issuing core executed since its previous memory
/// reference (used to advance simulated time at fixed IPC, Section 5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the instruction performing the access.
    pub pc: Pc,
    /// Physical byte address accessed.
    pub addr: PhysAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Issuing core.
    pub core: CoreId,
    /// Instructions executed on `core` since its previous record
    /// (including this one; always at least 1).
    pub inst_gap: u32,
}

impl TraceRecord {
    /// The [`MemAccess`] view of this record (drops the instruction gap).
    #[inline]
    pub fn access(&self) -> MemAccess {
        MemAccess {
            pc: self.pc,
            addr: self.addr,
            kind: self.kind,
            core: self.core,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} +{}", self.access(), self.inst_gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_view_preserves_fields() {
        let r = TraceRecord {
            pc: Pc::new(0x400),
            addr: PhysAddr::new(0x1234),
            kind: AccessKind::Write,
            core: 5,
            inst_gap: 17,
        };
        let a = r.access();
        assert_eq!(a.pc, r.pc);
        assert_eq!(a.addr, r.addr);
        assert_eq!(a.kind, r.kind);
        assert_eq!(a.core, r.core);
    }

    #[test]
    fn display_appends_gap() {
        let r = TraceRecord {
            pc: Pc::new(0x10),
            addr: PhysAddr::new(0x20),
            kind: AccessKind::Read,
            core: 0,
            inst_gap: 3,
        };
        assert_eq!(format!("{r}"), "core0 R 0x20 pc=0x10 +3");
    }
}
