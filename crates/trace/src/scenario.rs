//! Scenario mixes: a (possibly different) workload per core.
//!
//! The paper evaluates 16-core scale-out pods, including a
//! multiprogrammed mix whose per-core private datasets produce the
//! bimodal density of Figure 4. A [`ScenarioSpec`] generalizes that to
//! arbitrary co-location: it assigns one [`WorkloadKind`] to each core
//! (plus an optional [`PhaseSchedule`] that rotates the assignments
//! over time), and [`ScenarioGenerator`] interleaves the per-core
//! streams by core clock into one deterministic trace.
//!
//! Three properties make mixes composable with the rest of the stack:
//!
//! * **Per-stream seeding** — each workload's stream seed is derived
//!   from `seed ^ (workload as u64) << 8` (the discipline
//!   `fc_sweep::SweepPoint::seed` uses for homogeneous sweeps) and
//!   splitmixed so co-located streams never correlate, making a
//!   workload's record stream in a mix a pure function of
//!   `(scenario seed, workload, core, phase)` and never of the other
//!   workloads present or of thread count.
//! * **Address/PC isolation** — every workload slot shifts its region
//!   base and synthetic PCs by a per-workload salt, so co-located
//!   workloads never alias data or access functions (cores running the
//!   *same* workload still share its regions, like the homogeneous
//!   generator).
//! * **Canonical JSON** — specs round-trip through
//!   [`ScenarioSpec::to_json`] / [`ScenarioSpec::from_json`] with a
//!   fixed field order, so sweep stores can hash them stably.

use serde::{Deserialize, Serialize};

use fc_types::json::{escape, JsonValue};

use crate::record::TraceRecord;
use crate::synth::{CoreEngine, WorkloadKind};

/// A phase schedule: every `len_insts` core-local instructions, each
/// core's assignment rotates `rotate_by` positions through the
/// scenario's assignment vector (core `c` runs
/// `assignments[(c + phase * rotate_by) % cores]` in phase `phase`).
///
/// Phase switches restart the incoming workload's visit schedule
/// deterministically; its dataset addresses are unchanged, so caches
/// stay warm for data the core returns to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    /// Core-local instructions per phase.
    pub len_insts: u64,
    /// Assignment-vector rotation applied at each phase boundary.
    pub rotate_by: u32,
}

/// A consolidation scenario: one workload per core, with an optional
/// phase schedule.
///
/// # Examples
///
/// ```
/// use fc_trace::{ScenarioSpec, WorkloadKind};
///
/// let mix = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 16);
/// assert_eq!(mix.cores(), 16);
/// assert_eq!(mix.workloads().len(), 2);
/// let back = ScenarioSpec::from_json(&mix.to_json()).unwrap();
/// assert_eq!(mix, back);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (labels, emitters).
    pub name: String,
    /// The workload each core runs (index = core id; length = cores).
    pub assignments: Vec<WorkloadKind>,
    /// Optional phase rotation.
    pub phase: Option<PhaseSchedule>,
}

impl ScenarioSpec {
    /// Every core runs `kind` (the homogeneous case, useful as a mix-
    /// path control).
    pub fn homogeneous(kind: WorkloadKind, cores: u8) -> Self {
        Self {
            name: format!("{}x{}", kind, cores),
            assignments: vec![kind; cores as usize],
            phase: None,
        }
    }

    /// The first half of the pod runs `a`, the second half `b`.
    pub fn split(a: WorkloadKind, b: WorkloadKind, cores: u8) -> Self {
        assert!(cores >= 2, "a split scenario needs at least two cores");
        let half = cores as usize / 2;
        let mut assignments = vec![a; half];
        assignments.resize(cores as usize, b);
        Self {
            name: format!("{a}+{b}"),
            assignments,
            phase: None,
        }
    }

    /// Cores cycle through all six workloads (maximum heterogeneity).
    pub fn all_different(cores: u8) -> Self {
        Self {
            name: "all-different".to_string(),
            assignments: (0..cores)
                .map(|c| WorkloadKind::ALL[c as usize % WorkloadKind::ALL.len()])
                .collect(),
            phase: None,
        }
    }

    /// Attaches a phase schedule (builder-style).
    pub fn with_phase(mut self, phase: PhaseSchedule) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Number of cores the scenario describes.
    ///
    /// # Panics
    ///
    /// Panics if the scenario assigns more than 255 cores (the trace
    /// format's core-id width).
    pub fn cores(&self) -> u8 {
        u8::try_from(self.assignments.len()).expect("scenarios support at most 255 cores")
    }

    /// Whether every core runs the same workload in every phase.
    pub fn is_homogeneous(&self) -> bool {
        self.assignments.iter().all(|w| *w == self.assignments[0])
    }

    /// The distinct workloads of the scenario, in paper figure order.
    pub fn workloads(&self) -> Vec<WorkloadKind> {
        WorkloadKind::ALL
            .into_iter()
            .filter(|w| self.assignments.contains(w))
            .collect()
    }

    /// The workload core `core` runs in phase `phase`.
    pub fn workload_at(&self, core: u8, phase: u64) -> WorkloadKind {
        let n = self.assignments.len() as u64;
        let rotate = self.phase.map_or(0, |p| p.rotate_by as u64);
        self.assignments[((core as u64 + phase * rotate) % n) as usize]
    }

    /// Serializes the scenario as canonical JSON (fixed field order) —
    /// the stable encoding sweep stores hash.
    pub fn to_json(&self) -> String {
        let assignments: Vec<String> = self
            .assignments
            .iter()
            .map(|w| format!("\"{}\"", escape(w.name())))
            .collect();
        let phase = match self.phase {
            Some(p) => format!(
                "{{\"len_insts\": {}, \"rotate_by\": {}}}",
                p.len_insts, p.rotate_by
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\": \"{}\", \"assignments\": [{}], \"phase\": {}}}",
            escape(&self.name),
            assignments.join(", "),
            phase
        )
    }

    /// Parses a scenario from [`to_json`](ScenarioSpec::to_json)'s
    /// format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        let name = v.field("name")?.as_str()?.to_string();
        let assignments = match v.field("assignments")? {
            JsonValue::Arr(items) => items
                .iter()
                .map(|item| {
                    let name = item.as_str()?;
                    WorkloadKind::ALL
                        .into_iter()
                        .find(|w| w.name().eq_ignore_ascii_case(name))
                        .ok_or_else(|| format!("unknown workload `{name}`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            other => return Err(format!("expected assignments array, got {other:?}")),
        };
        if assignments.is_empty() {
            return Err("scenario assigns no cores".to_string());
        }
        if assignments.len() > u8::MAX as usize {
            return Err("scenario assigns more than 255 cores".to_string());
        }
        let phase = match v.field("phase")? {
            JsonValue::Null => None,
            p => Some(PhaseSchedule {
                len_insts: p.field("len_insts")?.as_u64()?,
                rotate_by: p.field("rotate_by")?.as_u32()?,
            }),
        };
        Ok(Self {
            name,
            assignments,
            phase,
        })
    }
}

/// One named scenario family: a constructor over the core-count axis,
/// mirroring `fc_sim`'s design registry.
#[derive(Clone, Copy)]
pub struct ScenarioFamily {
    /// CLI / registry name (lowercase, no spaces).
    pub name: &'static str,
    /// One-line description for catalogue listings.
    pub summary: &'static str,
    builder: fn(u8) -> ScenarioSpec,
}

impl ScenarioFamily {
    /// Builds the family's spec for a `cores`-core pod.
    pub fn build(&self, cores: u8) -> ScenarioSpec {
        (self.builder)(cores)
    }
}

/// Every scenario family the reproduction knows, in catalogue order.
pub const SCENARIO_FAMILIES: &[ScenarioFamily] = &[
    ScenarioFamily {
        name: "dsmr",
        summary: "Data Serving on half the cores, MapReduce on the rest",
        builder: |cores| {
            ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, cores)
        },
    },
    ScenarioFamily {
        name: "webmix",
        summary: "Web Search + Web Frontend halves (latency-sensitive pair)",
        builder: |cores| {
            ScenarioSpec::split(WorkloadKind::WebSearch, WorkloadKind::WebFrontend, cores)
        },
    },
    ScenarioFamily {
        name: "alldiff",
        summary: "cores cycle through all six workloads",
        builder: ScenarioSpec::all_different,
    },
    ScenarioFamily {
        name: "multiprog",
        summary: "n copies of the Multiprogrammed mix (bimodal densities)",
        builder: |cores| ScenarioSpec::homogeneous(WorkloadKind::Multiprogrammed, cores),
    },
    ScenarioFamily {
        name: "phased",
        summary: "Data Serving + MapReduce halves, rotating every 1.5M insts",
        builder: |cores| {
            let mut spec =
                ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, cores)
                    .with_phase(PhaseSchedule {
                        len_insts: 1_500_000,
                        rotate_by: 1,
                    });
            spec.name = format!("{} (phased)", spec.name);
            spec
        },
    },
];

/// Looks up a scenario family by (case-insensitive) name.
pub fn scenario_family(name: &str) -> Option<&'static ScenarioFamily> {
    SCENARIO_FAMILIES
        .iter()
        .find(|f| f.name.eq_ignore_ascii_case(name.trim()))
}

/// Resolves a comma-separated family list for a `cores`-core pod.
/// Unknown names report the full catalogue.
pub fn resolve_scenarios(list: &str, cores: u8) -> Result<Vec<ScenarioSpec>, String> {
    list.split(',')
        .map(|name| {
            scenario_family(name)
                .map(|f| f.build(cores))
                .ok_or_else(|| {
                    format!(
                        "unknown scenario `{}`; pick from: {}",
                        name.trim(),
                        SCENARIO_FAMILIES
                            .iter()
                            .map(|f| f.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
        })
        .collect()
}

/// One core's stream within a scenario: the engine for the current
/// phase plus the absolute-clock bookkeeping that stitches phases into
/// one gap-exact instruction stream.
#[derive(Debug)]
struct CoreStream {
    core: u8,
    /// Absolute core-local instructions consumed before the current
    /// engine's epoch (phase boundaries pin this to the boundary).
    base: u64,
    /// Absolute instruction time of the last emitted record.
    last_emitted: u64,
    phase: u64,
    engine: CoreEngine,
}

impl CoreStream {
    fn build_engine(spec: &ScenarioSpec, core: u8, phase: u64, seed: u64) -> CoreEngine {
        let workload = spec.workload_at(core, phase);
        // The sweep executor's per-stream seeding discipline: the
        // stream is a pure function of (seed, workload, core, phase).
        // The workload is splitmixed into the full seed width *before*
        // the engine XORs the core id into bits 8.. — leaving both in
        // the same byte would hand co-located (workload, core) pairs
        // with equal `workload ^ core` identical RNG streams (e.g.
        // cores 0 and 1 of the all-different scenario). Mixing the
        // phase in matters too: without it, a workload returning in a
        // later phase would replay its earlier visit schedule verbatim
        // against a warm cache and consolidation metrics would report
        // phantom speedups. Phase 0 keeps the bare per-workload seed,
        // so unphased scenarios are unaffected.
        let stream_seed = crate::synth::splitmix(seed ^ (workload as u64) << 8)
            ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let salt = workload as u64 + 1;
        let engine = CoreEngine::new(&workload.spec(), core, stream_seed, salt);
        assert!(
            engine.class_count() > 0,
            "core {core} has no classes for {workload}; check CoreSet coverage"
        );
        engine
    }

    /// Absolute time of this core's next record, advancing phases as
    /// boundaries are crossed.
    fn next_time(&mut self, spec: &ScenarioSpec, seed: u64) -> u64 {
        loop {
            let t = self.base + self.engine.peek_time();
            let Some(schedule) = spec.phase else { return t };
            let boundary = (self.phase + 1).saturating_mul(schedule.len_insts);
            if t < boundary {
                return t;
            }
            self.phase += 1;
            self.base = boundary;
            self.engine = Self::build_engine(spec, self.core, self.phase, seed);
        }
    }

    /// Emits this core's next record with the gap measured on the
    /// absolute core clock (phase switches included).
    fn emit(&mut self) -> TraceRecord {
        let mut record = self.engine.emit();
        let now = self.base + self.engine.last_inst();
        record.inst_gap = (now - self.last_emitted).clamp(1, u32::MAX as u64) as u32;
        self.last_emitted = now;
        record
    }
}

/// An infinite, deterministic stream of [`TraceRecord`]s for a
/// scenario mix: per-core workload streams interleaved by core clock.
///
/// Like [`TraceGenerator`](crate::TraceGenerator), records merge across
/// cores in per-core instruction order (fixed trace IPC 1.0), which
/// approximates global chronological order; the stream is bit-identical
/// for a given `(scenario, seed)` whatever thread count the surrounding
/// sweep uses.
///
/// # Examples
///
/// ```
/// use fc_trace::{ScenarioGenerator, ScenarioSpec, WorkloadKind};
///
/// let spec = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 4);
/// let records: Vec<_> = ScenarioGenerator::new(&spec, 7).take(1000).collect();
/// let again: Vec<_> = ScenarioGenerator::new(&spec, 7).take(1000).collect();
/// assert_eq!(records, again);
/// ```
#[derive(Debug)]
pub struct ScenarioGenerator {
    spec: ScenarioSpec,
    seed: u64,
    streams: Vec<CoreStream>,
}

impl ScenarioGenerator {
    /// Creates a generator for `spec` with a seed.
    ///
    /// # Panics
    ///
    /// Panics if the scenario assigns no cores or more than 255, or if
    /// some core's workload gives it no classes.
    pub fn new(spec: &ScenarioSpec, seed: u64) -> Self {
        assert!(!spec.assignments.is_empty(), "need at least one core");
        assert!(
            spec.assignments.len() <= u8::MAX as usize,
            "scenarios support at most 255 cores, got {}",
            spec.assignments.len()
        );
        let streams = (0..spec.cores())
            .map(|core| CoreStream {
                core,
                base: 0,
                last_emitted: 0,
                phase: 0,
                engine: CoreStream::build_engine(spec, core, 0, seed),
            })
            .collect();
        Self {
            spec: spec.clone(),
            seed,
            streams,
        }
    }

    /// The scenario driving the stream.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Number of cores in the stream.
    pub fn core_count(&self) -> usize {
        self.streams.len()
    }
}

impl Iterator for ScenarioGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Emit from the core whose next touch is earliest (ties break
        // to the lowest core id, like the homogeneous generator).
        let mut best = 0;
        let mut best_time = u64::MAX;
        for i in 0..self.streams.len() {
            let t = self.streams[i].next_time(&self.spec, self.seed);
            if t < best_time {
                best = i;
                best_time = t;
            }
        }
        Some(self.streams[best].emit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn deterministic_across_instances() {
        let spec = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 8);
        let a: Vec<_> = ScenarioGenerator::new(&spec, 99).take(5000).collect();
        let b: Vec<_> = ScenarioGenerator::new(&spec, 99).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_the_stream() {
        let spec = ScenarioSpec::all_different(8);
        let a: Vec<_> = ScenarioGenerator::new(&spec, 1).take(500).collect();
        let b: Vec<_> = ScenarioGenerator::new(&spec, 2).take(500).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_cores_emit_and_gaps_are_positive() {
        let spec = ScenarioSpec::all_different(16);
        let records: Vec<_> = ScenarioGenerator::new(&spec, 5).take(50_000).collect();
        let cores: HashSet<u8> = records.iter().map(|r| r.core).collect();
        assert_eq!(cores.len(), 16);
        assert!(records.iter().all(|r| r.inst_gap >= 1));
    }

    #[test]
    fn colocated_workloads_never_alias_addresses() {
        // Cores 0-1 run Data Serving, cores 2-3 MapReduce: the two
        // programs' address regions must be disjoint, while cores
        // sharing a workload share its regions.
        let spec = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 4);
        let records: Vec<_> = ScenarioGenerator::new(&spec, 11).take(50_000).collect();
        let mut by_workload: HashMap<bool, HashSet<u64>> = HashMap::new();
        for r in &records {
            by_workload
                .entry(r.core < 2)
                .or_default()
                .insert(r.addr.raw() >> 40);
        }
        let ds = by_workload.get(&true).unwrap();
        let mr = by_workload.get(&false).unwrap();
        assert!(ds.is_disjoint(mr), "regions alias: {ds:?} vs {mr:?}");
    }

    #[test]
    fn colocated_workloads_never_alias_pcs() {
        let spec = ScenarioSpec::split(WorkloadKind::WebSearch, WorkloadKind::SatSolver, 4);
        let records: Vec<_> = ScenarioGenerator::new(&spec, 3).take(20_000).collect();
        let ws: HashSet<u64> = records
            .iter()
            .filter(|r| r.core < 2)
            .map(|r| r.pc.raw())
            .collect();
        let sat: HashSet<u64> = records
            .iter()
            .filter(|r| r.core >= 2)
            .map(|r| r.pc.raw())
            .collect();
        assert!(ws.is_disjoint(&sat));
    }

    #[test]
    fn mix_stream_is_workload_local() {
        // A workload's records in a mix depend only on (seed, workload,
        // core): swapping the *other* half of the pod must not change
        // them.
        let a = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 4);
        let b = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::WebSearch, 4);
        let take = |spec: &ScenarioSpec| -> Vec<TraceRecord> {
            ScenarioGenerator::new(spec, 17)
                .take(40_000)
                .filter(|r| r.core < 2)
                .take(5_000)
                .collect()
        };
        assert_eq!(take(&a), take(&b));
    }

    #[test]
    fn phase_schedule_rotates_assignments() {
        let spec = ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 4)
            .with_phase(PhaseSchedule {
                len_insts: 50_000,
                rotate_by: 1,
            });
        assert_eq!(spec.workload_at(0, 0), WorkloadKind::DataServing);
        assert_eq!(spec.workload_at(1, 1), WorkloadKind::MapReduce);
        assert_eq!(spec.workload_at(3, 1), WorkloadKind::DataServing);

        // Core 0 starts on Data Serving regions and must emit MapReduce
        // region addresses once its clock crosses the boundary.
        let records: Vec<_> = ScenarioGenerator::new(&spec, 9).take(100_000).collect();
        let ds_salt = WorkloadKind::DataServing as u64 + 1;
        let mr_salt = WorkloadKind::MapReduce as u64 + 1;
        let core0_salts: HashSet<u64> = records
            .iter()
            .filter(|r| r.core == 0)
            .map(|r| r.addr.raw() >> 44)
            .collect();
        assert!(core0_salts.contains(&ds_salt), "{core0_salts:?}");
        assert!(core0_salts.contains(&mr_salt), "{core0_salts:?}");

        // Gaps stay positive across phase switches.
        assert!(records.iter().all(|r| r.inst_gap >= 1));
    }

    #[test]
    fn homogeneous_mix_matches_workload_statistics() {
        // The mix path reproduces the homogeneous generator's rates
        // (addresses are salted, so streams differ bit-wise).
        let spec = ScenarioSpec::homogeneous(WorkloadKind::WebSearch, 4);
        let mix: Vec<_> = ScenarioGenerator::new(&spec, 21).take(20_000).collect();
        let solo: Vec<_> = crate::TraceGenerator::new(WorkloadKind::WebSearch, 4, 21)
            .take(20_000)
            .collect();
        let mean_gap = |rs: &[TraceRecord]| {
            rs.iter().map(|r| r.inst_gap as u64).sum::<u64>() as f64 / rs.len() as f64
        };
        let (a, b) = (mean_gap(&mix), mean_gap(&solo));
        assert!(
            (a - b).abs() / b < 0.1,
            "mix mean gap {a:.0} vs solo {b:.0}"
        );
    }

    #[test]
    fn json_round_trips() {
        let specs = [
            ScenarioSpec::homogeneous(WorkloadKind::Multiprogrammed, 16),
            ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 16),
            ScenarioSpec::all_different(16).with_phase(PhaseSchedule {
                len_insts: 1_000_000,
                rotate_by: 2,
            }),
        ];
        for spec in specs {
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json).unwrap_or_else(|e| {
                panic!("{}: {e}\n{json}", spec.name);
            });
            assert_eq!(spec, back);
            // Canonical: a second trip is bit-identical.
            assert_eq!(json, back.to_json());
        }
    }

    #[test]
    fn json_rejects_malformed_scenarios() {
        assert!(ScenarioSpec::from_json("{}").is_err());
        assert!(ScenarioSpec::from_json("not json").is_err());
        assert!(
            ScenarioSpec::from_json(r#"{"name": "x", "assignments": [], "phase": null}"#).is_err()
        );
        assert!(ScenarioSpec::from_json(
            r#"{"name": "x", "assignments": ["Warp Drive"], "phase": null}"#
        )
        .is_err());
    }

    #[test]
    fn registry_resolves_families() {
        assert_eq!(resolve_scenarios("dsmr,alldiff", 16).unwrap().len(), 2);
        assert!(resolve_scenarios("dsmr,warpdrive", 16).is_err());
        for family in SCENARIO_FAMILIES {
            let spec = family.build(16);
            assert_eq!(spec.cores(), 16, "{}", family.name);
            // Every family round-trips through JSON.
            assert_eq!(
                ScenarioSpec::from_json(&spec.to_json()).unwrap(),
                spec,
                "{}",
                family.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "at most 255 cores")]
    fn oversized_scenario_rejected() {
        ScenarioGenerator::new(
            &ScenarioSpec {
                name: "huge".into(),
                assignments: vec![WorkloadKind::WebSearch; 256],
                phase: None,
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_scenario_rejected() {
        ScenarioGenerator::new(
            &ScenarioSpec {
                name: "empty".into(),
                assignments: vec![],
                phase: None,
            },
            1,
        );
    }
}
