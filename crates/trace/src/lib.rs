//! Memory-access traces and synthetic scale-out workloads.
//!
//! The paper's trace-based analyses replay memory traces captured from
//! CloudSuite 1.0 and SPEC INT2006 workloads with in-order execution and a
//! fixed IPC of 1.0 (Section 5.4). Those traces are not redistributable, so
//! this crate provides two substitutes that together preserve the paper's
//! methodology:
//!
//! * a compact binary **trace format** ([`TraceRecord`], [`TraceWriter`],
//!   [`TraceReader`]) so externally captured traces can be replayed,
//! * **synthetic workload generators** ([`TraceGenerator`],
//!   [`WorkloadKind`]) that reproduce, per workload, the statistical
//!   properties the paper's mechanisms depend on: PC-correlated spatial
//!   footprints, page-density distributions that grow with residency
//!   (Figure 4), singleton-page populations, dataset sizes far beyond the
//!   largest cache, and the per-workload quirks the paper calls out
//!   (MapReduce's low density at small caches, SAT Solver's phase drift,
//!   the multiprogrammed mix's bimodal behavior), and
//! * **scenario mixes** ([`ScenarioSpec`], [`ScenarioGenerator`]) that
//!   assign a (possibly different) workload to each core — the
//!   consolidated-server regime the simulator's per-core accounting and
//!   `fc_sweep --grid mix` measure.
//!
//! # Examples
//!
//! ```
//! use fc_trace::{TraceGenerator, WorkloadKind};
//!
//! let mut generator = TraceGenerator::new(WorkloadKind::DataServing, 16, 42);
//! let record = generator.next().unwrap();
//! assert!(record.inst_gap >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod io;
mod record;
pub mod scenario;
pub mod synth;

pub use io::{TraceIoError, TraceReader, TraceWriter};
pub use record::TraceRecord;
pub use scenario::{
    resolve_scenarios, scenario_family, PhaseSchedule, ScenarioFamily, ScenarioGenerator,
    ScenarioSpec, SCENARIO_FAMILIES,
};
pub use synth::{ClassSpec, PatternFamily, TraceGenerator, WorkloadKind, WorkloadSpec};
