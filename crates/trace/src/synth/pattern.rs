//! Footprint pattern families.
//!
//! A pattern is the set of block-offset *deltas* (relative to the visit's
//! start offset, modulo the 32-block structure chunk) that one access
//! function touches. Deltas are derived deterministically from
//! (seed, class, function, phase), so the same PC always produces the same
//! spatial footprint — the correlation property behind the paper's
//! predictor (Section 3.1, citing spatial memory streaming [34]).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of 64-byte blocks in one 2 KB structure chunk. Patterns are
/// defined at this granularity independently of the simulated cache's page
/// size, mirroring how real data-structure layouts do not change when the
/// cache's allocation unit does.
pub const CHUNK_BLOCKS: usize = 32;

/// The shape of the block set an access function touches within a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternFamily {
    /// A contiguous run of `min..=max` blocks (structured records).
    Dense {
        /// Minimum run length.
        min: u8,
        /// Maximum run length.
        max: u8,
    },
    /// `min..=max` blocks at function-specific scattered offsets
    /// (irregular structures: SAT clause graphs).
    Sparse {
        /// Minimum block count.
        min: u8,
        /// Maximum block count.
        max: u8,
    },
    /// `count` blocks every `stride` blocks (column accesses).
    Strided {
        /// Distance between touched blocks.
        stride: u8,
        /// Number of touched blocks.
        count: u8,
    },
    /// All 32 blocks of the chunk (sequential scans).
    Full,
    /// Exactly one block — the singleton-page generator (Section 3.2).
    Singleton,
}

impl PatternFamily {
    /// Mean number of blocks a pattern from this family touches.
    pub fn mean_len(&self) -> f64 {
        match *self {
            PatternFamily::Dense { min, max } | PatternFamily::Sparse { min, max } => {
                (min as f64 + max as f64) / 2.0
            }
            PatternFamily::Strided { count, .. } => count as f64,
            PatternFamily::Full => CHUNK_BLOCKS as f64,
            PatternFamily::Singleton => 1.0,
        }
    }

    /// Derives the concrete delta mask for `function` under `salt`.
    ///
    /// The result is a bit mask over `0..32` deltas with bit 0 always set
    /// (the triggering access is part of the footprint). The derivation is
    /// a pure function of its arguments: equal inputs yield equal patterns.
    pub fn derive(&self, seed: u64, class: u16, function: u16, salt: u64) -> u32 {
        let key = splitmix(
            seed ^ (class as u64) << 48 ^ (function as u64) << 32 ^ salt.wrapping_mul(0x9e37),
        );
        let mut rng = SmallRng::seed_from_u64(key);
        let mask: u32 = match *self {
            PatternFamily::Dense { min, max } => {
                let len = rng.random_range(min..=max).clamp(1, CHUNK_BLOCKS as u8) as u32;
                if len >= 32 {
                    u32::MAX
                } else {
                    (1u32 << len) - 1
                }
            }
            PatternFamily::Sparse { min, max } => {
                let len = rng.random_range(min..=max).clamp(1, CHUNK_BLOCKS as u8) as usize;
                let mut m = 1u32; // delta 0 always present
                while (m.count_ones() as usize) < len {
                    m |= 1 << rng.random_range(0..CHUNK_BLOCKS as u32);
                }
                m
            }
            PatternFamily::Strided { stride, count } => {
                let stride = stride.max(1) as usize;
                let mut m = 0u32;
                for i in 0..count as usize {
                    let d = i * stride;
                    if d >= CHUNK_BLOCKS {
                        break;
                    }
                    m |= 1 << d;
                }
                m | 1
            }
            PatternFamily::Full => u32::MAX,
            PatternFamily::Singleton => 1,
        };
        mask | 1
    }
}

/// SplitMix64 finalizer: cheap, high-quality 64-bit mixing for seed
/// derivation.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn derivation_is_deterministic() {
        let fam = PatternFamily::Dense { min: 4, max: 16 };
        let a = fam.derive(42, 1, 2, 0);
        let b = fam.derive(42, 1, 2, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_functions_differ_often() {
        let fam = PatternFamily::Sparse { min: 3, max: 12 };
        let patterns: Vec<u32> = (0..32).map(|f| fam.derive(7, 0, f, 0)).collect();
        let distinct: std::collections::HashSet<_> = patterns.iter().collect();
        assert!(distinct.len() > 16, "patterns collide too much");
    }

    #[test]
    fn salt_changes_pattern() {
        // The SAT Solver drift mechanism: a new phase re-derives patterns.
        let fam = PatternFamily::Sparse { min: 6, max: 12 };
        let changed = (0..16)
            .filter(|&f| fam.derive(9, 0, f, 0) != fam.derive(9, 0, f, 1))
            .count();
        assert!(changed > 10);
    }

    #[test]
    fn family_shapes() {
        assert_eq!(PatternFamily::Full.derive(1, 0, 0, 0), u32::MAX);
        assert_eq!(PatternFamily::Singleton.derive(1, 0, 0, 0), 1);
        let strided = PatternFamily::Strided {
            stride: 8,
            count: 4,
        }
        .derive(1, 0, 0, 0);
        assert_eq!(strided, 1 | 1 << 8 | 1 << 16 | 1 << 24);
    }

    #[test]
    fn mean_len_matches_family() {
        assert_eq!(PatternFamily::Full.mean_len(), 32.0);
        assert_eq!(PatternFamily::Singleton.mean_len(), 1.0);
        assert_eq!(PatternFamily::Dense { min: 4, max: 8 }.mean_len(), 6.0);
    }

    proptest! {
        /// Every derived pattern contains delta 0 and respects size bounds.
        #[test]
        fn pattern_wellformed(seed: u64, class: u16, func: u16, salt in 0u64..8) {
            for fam in [
                PatternFamily::Dense { min: 2, max: 10 },
                PatternFamily::Sparse { min: 1, max: 8 },
                PatternFamily::Strided { stride: 4, count: 8 },
                PatternFamily::Full,
                PatternFamily::Singleton,
            ] {
                let m = fam.derive(seed, class, func, salt);
                prop_assert!(m & 1 == 1, "delta 0 missing");
                match fam {
                    PatternFamily::Dense { max, .. } =>
                        prop_assert!(m.count_ones() <= max as u32 + 1),
                    PatternFamily::Sparse { max, .. } =>
                        prop_assert!(m.count_ones() <= max as u32 + 1),
                    PatternFamily::Singleton => prop_assert_eq!(m, 1),
                    _ => {}
                }
            }
        }
    }
}
