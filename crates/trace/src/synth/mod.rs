//! Synthetic scale-out workload generators.
//!
//! Each workload is a weighted mix of **data classes**. A class describes
//! one kind of data structure traversal: how often it is accessed
//! (`access_rate`), how long one page visit stretches in instructions
//! (`visit_duration` — the knob behind Figure 4's density-vs-capacity
//! growth), the footprint *pattern* its access functions produce, how pages
//! are selected (Zipf-skewed, uniform, or sequential scan), the write
//! fraction, and the revisit probability.
//!
//! Every class owns a set of synthetic *access functions* (PCs). A
//! function's footprint pattern is derived deterministically from
//! (workload seed, class, function, phase), which is exactly the
//! PC-correlation property the footprint predictor exploits (Section 3.1):
//! the same code touching the same structure touches the same offsets.
//! The SAT Solver workload periodically re-derives patterns ("phase
//! drift"), reproducing the prediction interference the paper reports for
//! its on-the-fly datasets.

mod engine;
mod pattern;
mod zipf;

pub use engine::TraceGenerator;
pub use pattern::PatternFamily;
pub use zipf::Zipf;

pub(crate) use engine::CoreEngine;
pub(crate) use pattern::splitmix;

use serde::{Deserialize, Serialize};

/// How a class picks the next page to visit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PageSelect {
    /// Zipf-skewed random choice with the given theta (popularity skew).
    Zipf(f64),
    /// Uniform random choice over the region.
    Uniform,
    /// Sequential scan through the region (per-core cursor).
    Sequential,
}

/// Which cores run a class (the multiprogrammed mix gives different cores
/// different programs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreSet {
    /// Every core runs this class.
    All,
    /// Only even-numbered cores.
    Even,
    /// Only odd-numbered cores.
    Odd,
}

impl CoreSet {
    /// Whether `core` belongs to the set.
    pub fn contains(self, core: u8) -> bool {
        match self {
            CoreSet::All => true,
            CoreSet::Even => core.is_multiple_of(2),
            CoreSet::Odd => core % 2 == 1,
        }
    }
}

/// One data class of a synthetic workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Human-readable label (appears nowhere in the trace; debugging aid).
    pub name: &'static str,
    /// Memory accesses per instruction per core contributed by this class
    /// (at the post-L1 filter level the traces model).
    pub access_rate: f64,
    /// Mean instructions over which one page visit spreads its touches.
    pub visit_duration: u64,
    /// Footprint pattern family of this class's access functions.
    pub pattern: PatternFamily,
    /// Page selection policy.
    pub select: PageSelect,
    /// Region size in 2 KB structure chunks.
    pub pages: u64,
    /// Fraction of touches that are stores.
    pub write_frac: f64,
    /// Probability that a completed visit is followed by a revisit of the
    /// same page (temporal reuse at the DRAM cache level).
    pub reuse: f64,
    /// Number of distinct access functions (PCs).
    pub functions: u16,
    /// Whether structures are aligned: `true` fixes each function's start
    /// offset, `false` draws it per visit (exercising the offset part of
    /// the PC & offset key).
    pub aligned: bool,
    /// Cores that run this class.
    pub cores: CoreSet,
    /// Whether each core gets a private copy of the region
    /// (multiprogrammed workloads).
    pub private_region: bool,
}

/// A complete synthetic workload description.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name as it appears in the paper's figures.
    pub name: &'static str,
    /// The data classes making up the workload.
    pub classes: Vec<ClassSpec>,
    /// Instructions between pattern re-derivations (SAT Solver phase
    /// drift), or `None` for stable patterns.
    pub phase_len: Option<u64>,
}

impl WorkloadSpec {
    /// Total access rate (accesses per instruction per core), summed over
    /// classes, averaged over the core sets.
    pub fn total_access_rate(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| {
                let share = match c.cores {
                    CoreSet::All => 1.0,
                    CoreSet::Even | CoreSet::Odd => 0.5,
                };
                c.access_rate * share
            })
            .sum()
    }

    /// Estimated off-chip bandwidth demand per core in GB/s for a baseline
    /// system without a DRAM cache at IPC 1 (64 bytes per access, 3 GHz).
    /// The paper's workloads land at 0.6–1.6 GB/s per core (Section 5.3).
    pub fn baseline_bandwidth_gbs_per_core(&self) -> f64 {
        self.total_access_rate() * 64.0 * 3.0
    }

    /// Scales every region size by `factor` (useful for fast tests; the
    /// experiments use the full datasets).
    pub fn scale_dataset(mut self, factor: f64) -> Self {
        for c in &mut self.classes {
            c.pages = ((c.pages as f64 * factor).round() as u64).max(64);
        }
        self
    }
}

/// The six evaluated workloads (Section 5.3): five scale-out workloads
/// from CloudSuite 1.0 plus a multiprogrammed SPEC INT2006 mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Data Serving (Cassandra-like key-value store): the most
    /// bandwidth-hungry workload (Figures 5 and 7).
    DataServing,
    /// MapReduce (text processing): wide scans whose pages show very low
    /// density at small caches, growing strongly with capacity.
    MapReduce,
    /// Multiprogrammed SPEC INT2006 mix: per-core private datasets, some
    /// resident at 512 MB (bimodal density, no regular trend).
    Multiprogrammed,
    /// SAT Solver (symbolic execution): builds its dataset on the fly;
    /// pattern drift interferes with prediction.
    SatSolver,
    /// Web Frontend (PHP serving): moderate density, session-state writes.
    WebFrontend,
    /// Web Search (index serving): dense posting-list scans.
    WebSearch,
}

impl WorkloadKind {
    /// All workloads in the paper's figure order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::DataServing,
        WorkloadKind::MapReduce,
        WorkloadKind::Multiprogrammed,
        WorkloadKind::SatSolver,
        WorkloadKind::WebFrontend,
        WorkloadKind::WebSearch,
    ];

    /// The workload's display name (matches the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::DataServing => "Data Serving",
            WorkloadKind::MapReduce => "MapReduce",
            WorkloadKind::Multiprogrammed => "Multiprogrammed",
            WorkloadKind::SatSolver => "SAT Solver",
            WorkloadKind::WebFrontend => "Web Frontend",
            WorkloadKind::WebSearch => "Web Search",
        }
    }

    /// The generative model for this workload. Parameters are documented
    /// class by class; rates target the paper's 0.6–1.6 GB/s per-core
    /// baseline bandwidth band, and visit durations are sized against
    /// 64–512 MB cache residencies so density grows with capacity
    /// (Figure 4).
    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadKind::DataServing => WorkloadSpec {
                name: self.name(),
                phase_len: None,
                classes: vec![
                    ClassSpec {
                        name: "record-read",
                        access_rate: 0.0045,
                        visit_duration: 1_800_000,
                        pattern: PatternFamily::Dense { min: 6, max: 24 },
                        select: PageSelect::Zipf(0.85),
                        pages: 4_000_000, // 8 GB of records
                        write_frac: 0.05,
                        reuse: 0.15,
                        functions: 24,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "memtable-write",
                        access_rate: 0.0012,
                        visit_duration: 400_000,
                        pattern: PatternFamily::Dense { min: 3, max: 10 },
                        select: PageSelect::Zipf(0.7),
                        pages: 512_000, // 1 GB memtable/log
                        write_frac: 0.8,
                        reuse: 0.2,
                        functions: 8,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "index-probe",
                        access_rate: 0.0004,
                        visit_duration: 10_000,
                        pattern: PatternFamily::Singleton,
                        select: PageSelect::Uniform,
                        pages: 4_000_000,
                        write_frac: 0.05,
                        reuse: 0.02,
                        functions: 6,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                ],
            },
            WorkloadKind::MapReduce => WorkloadSpec {
                name: self.name(),
                phase_len: None,
                classes: vec![
                    ClassSpec {
                        name: "input-scan",
                        access_rate: 0.0022,
                        visit_duration: 25_000_000,
                        pattern: PatternFamily::Full,
                        select: PageSelect::Sequential,
                        pages: 6_000_000, // 12 GB input
                        write_frac: 0.02,
                        reuse: 0.0,
                        functions: 6,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "hash-lookup",
                        access_rate: 0.0005,
                        visit_duration: 10_000,
                        pattern: PatternFamily::Singleton,
                        select: PageSelect::Uniform,
                        pages: 2_000_000,
                        write_frac: 0.3,
                        reuse: 0.03,
                        functions: 4,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "intermediate-write",
                        access_rate: 0.001,
                        visit_duration: 640_000,
                        pattern: PatternFamily::Dense { min: 4, max: 12 },
                        select: PageSelect::Sequential,
                        pages: 1_000_000,
                        write_frac: 0.9,
                        reuse: 0.05,
                        functions: 8,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                ],
            },
            WorkloadKind::Multiprogrammed => WorkloadSpec {
                name: self.name(),
                phase_len: None,
                classes: vec![
                    ClassSpec {
                        name: "resident-working-set",
                        access_rate: 0.004,
                        visit_duration: 540_000,
                        pattern: PatternFamily::Dense { min: 8, max: 28 },
                        select: PageSelect::Zipf(0.3),
                        pages: 12_000, // 24 MB per even core; 8 cores fit in 512 MB
                        write_frac: 0.25,
                        reuse: 0.5,
                        functions: 16,
                        aligned: true,
                        cores: CoreSet::Even,
                        private_region: true,
                    },
                    ClassSpec {
                        name: "streaming-scan",
                        access_rate: 0.003,
                        visit_duration: 1_600_000,
                        pattern: PatternFamily::Full,
                        select: PageSelect::Sequential,
                        pages: 1_500_000, // 3 GB per odd core
                        write_frac: 0.1,
                        reuse: 0.0,
                        functions: 4,
                        aligned: true,
                        cores: CoreSet::Odd,
                        private_region: true,
                    },
                    ClassSpec {
                        name: "pointer-chase",
                        access_rate: 0.0012,
                        visit_duration: 10_000,
                        pattern: PatternFamily::Singleton,
                        select: PageSelect::Uniform,
                        pages: 800_000,
                        write_frac: 0.15,
                        reuse: 0.05,
                        functions: 8,
                        aligned: false,
                        cores: CoreSet::Odd,
                        private_region: true,
                    },
                ],
            },
            WorkloadKind::SatSolver => WorkloadSpec {
                name: self.name(),
                // Patterns re-derive every 3M instructions: the on-the-fly
                // dataset interferes with the prediction mechanism
                // (Section 6.2).
                phase_len: Some(3_000_000),
                classes: vec![
                    ClassSpec {
                        name: "clause-walk",
                        access_rate: 0.0018,
                        visit_duration: 525_000,
                        pattern: PatternFamily::Sparse { min: 3, max: 12 },
                        select: PageSelect::Uniform,
                        pages: 2_500_000, // 5 GB clause database
                        write_frac: 0.2,
                        reuse: 0.1,
                        functions: 16,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "watch-list",
                        access_rate: 0.0006,
                        visit_duration: 8_000,
                        pattern: PatternFamily::Singleton,
                        select: PageSelect::Uniform,
                        pages: 2_500_000,
                        write_frac: 0.3,
                        reuse: 0.02,
                        functions: 6,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "learned-clauses",
                        access_rate: 0.0008,
                        visit_duration: 300_000,
                        pattern: PatternFamily::Dense { min: 2, max: 10 },
                        select: PageSelect::Sequential,
                        pages: 1_000_000,
                        write_frac: 0.75,
                        reuse: 0.05,
                        functions: 8,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                ],
            },
            WorkloadKind::WebFrontend => WorkloadSpec {
                name: self.name(),
                phase_len: None,
                classes: vec![
                    ClassSpec {
                        name: "object-read",
                        access_rate: 0.002,
                        visit_duration: 1_000_000,
                        pattern: PatternFamily::Dense { min: 4, max: 16 },
                        select: PageSelect::Zipf(0.75),
                        pages: 2_000_000, // 4 GB of objects
                        write_frac: 0.1,
                        reuse: 0.2,
                        functions: 20,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "session-write",
                        access_rate: 0.001,
                        visit_duration: 250_000,
                        pattern: PatternFamily::Dense { min: 2, max: 8 },
                        select: PageSelect::Zipf(0.6),
                        pages: 500_000,
                        write_frac: 0.6,
                        reuse: 0.25,
                        functions: 10,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "cache-miss-probe",
                        access_rate: 0.0004,
                        visit_duration: 10_000,
                        pattern: PatternFamily::Singleton,
                        select: PageSelect::Uniform,
                        pages: 2_000_000,
                        write_frac: 0.1,
                        reuse: 0.02,
                        functions: 6,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "hot-template",
                        access_rate: 0.0008,
                        visit_duration: 960_000,
                        pattern: PatternFamily::Dense { min: 8, max: 24 },
                        select: PageSelect::Zipf(0.9),
                        pages: 128_000, // 256 MB of templates/code-like data
                        write_frac: 0.02,
                        reuse: 0.3,
                        functions: 12,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                ],
            },
            WorkloadKind::WebSearch => WorkloadSpec {
                name: self.name(),
                phase_len: None,
                classes: vec![
                    ClassSpec {
                        name: "posting-scan",
                        access_rate: 0.002,
                        visit_duration: 3_300_000,
                        pattern: PatternFamily::Dense { min: 12, max: 32 },
                        select: PageSelect::Zipf(0.6),
                        pages: 5_000_000, // 10 GB index
                        write_frac: 0.02,
                        reuse: 0.1,
                        functions: 10,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "doc-fetch",
                        access_rate: 0.001,
                        visit_duration: 320_000,
                        pattern: PatternFamily::Dense { min: 4, max: 12 },
                        select: PageSelect::Zipf(0.8),
                        pages: 2_000_000,
                        write_frac: 0.05,
                        reuse: 0.15,
                        functions: 8,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "rare-probe",
                        access_rate: 0.00015,
                        visit_duration: 10_000,
                        pattern: PatternFamily::Singleton,
                        select: PageSelect::Uniform,
                        pages: 5_000_000,
                        write_frac: 0.05,
                        reuse: 0.01,
                        functions: 4,
                        aligned: false,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                    ClassSpec {
                        name: "score-accumulate",
                        access_rate: 0.0003,
                        visit_duration: 120_000,
                        pattern: PatternFamily::Dense { min: 2, max: 6 },
                        select: PageSelect::Sequential,
                        pages: 200_000,
                        write_frac: 0.85,
                        reuse: 0.1,
                        functions: 6,
                        aligned: true,
                        cores: CoreSet::All,
                        private_region: false,
                    },
                ],
            },
        }
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_construct() {
        for kind in WorkloadKind::ALL {
            let spec = kind.spec();
            assert!(!spec.classes.is_empty(), "{kind} has no classes");
            assert_eq!(spec.name, kind.name());
        }
    }

    #[test]
    fn bandwidth_demand_in_paper_band() {
        // Section 5.3: 0.6–1.6 GB/s per core on the baseline chip.
        for kind in WorkloadKind::ALL {
            let bw = kind.spec().baseline_bandwidth_gbs_per_core();
            assert!(
                (0.5..=1.8).contains(&bw),
                "{kind}: baseline demand {bw:.2} GB/s/core outside band"
            );
        }
    }

    #[test]
    fn data_serving_is_most_bandwidth_hungry() {
        let ds = WorkloadKind::DataServing
            .spec()
            .baseline_bandwidth_gbs_per_core();
        for kind in WorkloadKind::ALL {
            if kind != WorkloadKind::DataServing {
                assert!(ds > kind.spec().baseline_bandwidth_gbs_per_core());
            }
        }
    }

    #[test]
    fn datasets_far_exceed_largest_cache() {
        // The combined region must dwarf 512 MB (Section 5.3: footprints
        // exceed the 16-32 GB available memory; we only need ≫ cache).
        for kind in WorkloadKind::ALL {
            let bytes: u64 = kind.spec().classes.iter().map(|c| c.pages * 2048).sum();
            assert!(
                bytes > 4 * 512 * 1024 * 1024,
                "{kind}: dataset only {} MB",
                bytes >> 20
            );
        }
    }

    #[test]
    fn scale_dataset_shrinks_regions() {
        let spec = WorkloadKind::WebSearch.spec().scale_dataset(0.01);
        for c in &spec.classes {
            assert!(c.pages >= 64);
        }
        assert!(spec.classes[0].pages <= 50_000);
    }

    #[test]
    fn core_sets_partition() {
        assert!(CoreSet::All.contains(0) && CoreSet::All.contains(7));
        assert!(CoreSet::Even.contains(2) && !CoreSet::Even.contains(3));
        assert!(CoreSet::Odd.contains(3) && !CoreSet::Odd.contains(2));
    }

    #[test]
    fn only_sat_solver_drifts() {
        for kind in WorkloadKind::ALL {
            let drift = kind.spec().phase_len.is_some();
            assert_eq!(drift, kind == WorkloadKind::SatSolver);
        }
    }
}
