//! Zipfian page-popularity sampling.
//!
//! Scale-out datasets are "randomly distributed across memory, without
//! forming a particular working set" (Section 6.7), but request popularity
//! is still skewed; the classic server-workload model is a Zipf
//! distribution. This sampler uses the Gray et al. method (popularized by
//! YCSB's `ZipfianGenerator`): O(n) construction, O(1) sampling.

use rand::Rng;
use std::collections::HashMap;
use std::sync::Mutex;

/// Process-wide memo of computed `zeta(n, theta)` values.
///
/// A 16-core pod constructs one `Zipf` per core per popularity class
/// over identical `(n, theta)` pairs, and `zeta` walks up to a million
/// `powf` terms per call — memoizing turns all but the first
/// construction per pair into a map probe. Keyed on `theta.to_bits()`
/// so equal inputs hit the exact cached f64 (bit-identical results by
/// construction).
static ZETA_MEMO: Mutex<Option<HashMap<(u64, u64), f64>>> = Mutex::new(None);

/// `(n, theta bits, zeta bits)` for every Zipf class in the default
/// workload models, seeding the memo so no process ever pays the
/// million-term sum for a stock workload. Each entry is asserted
/// bit-identical to the direct computation by
/// `baked_zeta_is_bit_identical`; regenerate with
/// `cargo test -p fc-trace dump_baked_zeta -- --ignored --nocapture`
/// after changing a workload's page counts or thetas (stale entries
/// are harmless — they just stop matching and the sum runs again).
const BAKED_ZETA: &[(u64, u64, u64)] = &[
    (12_000, 0x3fd3333333333333, 0x408ff98c13104ee2), // theta=0.30
    (128_000, 0x3feccccccccccccd, 0x4036fba7e44e1aeb), // theta=0.90
    (500_000, 0x3fe3333333333333, 0x407d9f604fcae358), // theta=0.60
    (512_000, 0x3fe6666666666666, 0x406528c1dd85686b), // theta=0.70
    (2_000_000, 0x3fe8000000000000, 0x40625f738a8abeec), // theta=0.75
    (2_000_000, 0x3fe999999999999a, 0x4055a5cdb20f642e), // theta=0.80
    (4_000_000, 0x3feb333333333333, 0x404d8c2a4b0b2246), // theta=0.85
    (5_000_000, 0x3fe3333333333333, 0x4092a5f3cd9282f0), // theta=0.60
];

fn seeded_memo() -> HashMap<(u64, u64), f64> {
    BAKED_ZETA
        .iter()
        .map(|&(n, theta_bits, zeta_bits)| ((n, theta_bits), f64::from_bits(zeta_bits)))
        .collect()
}

/// Samples page indices in `0..n` with probability ∝ `1/(k+1)^theta`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in `[0, 1)`.
    /// `theta = 0` degenerates to uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty range");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let key = (n, theta.to_bits());
        let mut memo = ZETA_MEMO.lock().expect("zeta memo poisoned");
        let memo = memo.get_or_insert_with(seeded_memo);
        if let Some(&z) = memo.get(&key) {
            return z;
        }
        let z = Self::zeta_uncached(n, theta);
        memo.insert(key, z);
        z
    }

    fn zeta_uncached(n: u64, theta: f64) -> f64 {
        // Exact sum for small n; integral approximation of the tail for
        // large n keeps construction fast for multi-million-page regions.
        const EXACT: u64 = 1_000_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-theta dx from EXACT to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.random_range(0..self.n);
        }
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// The size of the sampled range.
    pub fn range(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(1000, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 0u64;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if z.sample(&mut rng) < 500 {
                lo += 1;
            }
        }
        let frac = lo as f64 / DRAWS as f64;
        assert!((frac - 0.5).abs() < 0.02, "uniform half-split, got {frac}");
    }

    #[test]
    fn skew_concentrates_on_low_indices() {
        let z = Zipf::new(1_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u64;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            // Top 1% of pages should receive far more than 1% of draws.
            if z.sample(&mut rng) < 10_000 {
                head += 1;
            }
        }
        let frac = head as f64 / DRAWS as f64;
        assert!(frac > 0.3, "zipf(0.9) head mass too small: {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.99] {
            let z = Zipf::new(37, theta);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 37);
            }
        }
    }

    #[test]
    fn large_range_construction_is_fast_and_sane() {
        // 16M pages: construction must use the tail approximation.
        let z = Zipf::new(16_000_000, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 16_000_000);
        }
        assert_eq!(z.range(), 16_000_000);
    }

    #[test]
    fn memoized_zeta_is_bit_identical() {
        for (n, theta) in [(1_000u64, 0.37), (5_000_000, 0.91)] {
            // First call may populate the memo, second must hit it;
            // both must equal the direct computation bit-for-bit.
            let direct = Zipf::zeta_uncached(n, theta);
            assert_eq!(Zipf::zeta(n, theta).to_bits(), direct.to_bits());
            assert_eq!(Zipf::zeta(n, theta).to_bits(), direct.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_one() {
        Zipf::new(10, 1.0);
    }
}

#[cfg(test)]
mod baked {
    use super::*;
    use crate::synth::{PageSelect, WorkloadKind};

    /// Every Zipf class of every stock workload must have a baked zeta
    /// entry, and every entry must match the direct computation
    /// bit-for-bit — the table is a cache, never an approximation.
    #[test]
    fn baked_zeta_is_bit_identical() {
        for &(n, theta_bits, zeta_bits) in BAKED_ZETA {
            let direct = Zipf::zeta_uncached(n, f64::from_bits(theta_bits));
            assert_eq!(
                direct.to_bits(),
                zeta_bits,
                "stale baked zeta for n={n}: regenerate with dump_baked_zeta"
            );
        }
        for k in WorkloadKind::ALL {
            for c in &k.spec().classes {
                if let PageSelect::Zipf(theta) = c.select {
                    assert!(
                        BAKED_ZETA
                            .iter()
                            .any(|&(n, tb, _)| n == c.pages && tb == theta.to_bits()),
                        "{:?} class (pages={}, theta={theta}) missing a baked zeta entry",
                        k,
                        c.pages
                    );
                }
            }
        }
    }

    /// Regenerates the `BAKED_ZETA` table body (run with `--ignored
    /// --nocapture`, paste the output over the table).
    #[test]
    #[ignore]
    fn dump_baked_zeta() {
        let mut pairs = std::collections::BTreeSet::new();
        for k in WorkloadKind::ALL {
            for c in &k.spec().classes {
                if let PageSelect::Zipf(theta) = c.select {
                    pairs.insert((c.pages, theta.to_bits()));
                }
            }
        }
        for (n, tb) in &pairs {
            let theta = f64::from_bits(*tb);
            let z = Zipf::zeta_uncached(*n, theta);
            println!(
                "    ({n}, {tb:#018x}, {:#018x}), // theta={theta:.2}",
                z.to_bits()
            );
        }
    }
}
