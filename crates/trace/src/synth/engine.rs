//! The generative engine behind [`TraceGenerator`].
//!
//! Each core runs an event-driven schedule of page *visits*. A visit is
//! one traversal of one 2 KB structure chunk by one access function: its
//! touches are spread over the class's `visit_duration` instructions, so
//! whether all of a page's blocks are touched before eviction depends on
//! how long the page stays cached — which is how the Figure 4
//! density-vs-capacity growth *emerges* from the model instead of being
//! baked in.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fc_types::{AccessKind, Pc, PhysAddr};

use crate::record::TraceRecord;
use crate::synth::pattern::{splitmix, CHUNK_BLOCKS};
use crate::synth::{ClassSpec, PageSelect, WorkloadKind, WorkloadSpec, Zipf};

/// Bytes per structure chunk (the pattern granularity).
const CHUNK_BYTES: u64 = 2048;

#[derive(Clone, Debug)]
struct Visit {
    class: u16,
    func: u16,
    page: u64,
    start: u8,
    /// Delta mask of blocks still to touch.
    remaining: u32,
}

#[derive(Clone, Debug)]
struct RuntimeClass {
    spec: ClassSpec,
    /// Mean instructions between touches of one visit.
    interval: u64,
    /// Concurrent visits this core keeps alive for the class.
    concurrency: u32,
    region_base: u64,
    zipf: Option<Zipf>,
    seq_cursor: u64,
}

impl RuntimeClass {
    fn draw_interval(&self, rng: &mut SmallRng) -> u64 {
        let i = self.interval.max(2);
        rng.random_range(i / 2..=i + i / 2).max(1)
    }

    fn pick_page(&mut self, rng: &mut SmallRng) -> u64 {
        match self.spec.select {
            PageSelect::Zipf(_) => self
                .zipf
                .as_ref()
                .expect("zipf sampler present for Zipf select")
                .sample(rng),
            PageSelect::Uniform => rng.random_range(0..self.spec.pages),
            PageSelect::Sequential => {
                let p = self.seq_cursor;
                self.seq_cursor = (self.seq_cursor + 1) % self.spec.pages;
                p
            }
        }
    }
}

/// One core's event-driven visit schedule. Crate-visible so the
/// scenario generator (`crate::scenario`) can compose per-core engines
/// running *different* workloads into one interleaved stream.
#[derive(Debug)]
pub(crate) struct CoreEngine {
    core: u8,
    seed: u64,
    /// Stream salt: shifted into the high address bits and the PC so
    /// distinct workloads co-located in a scenario mix never alias
    /// regions or access functions. Zero for homogeneous streams.
    salt: u64,
    rng: SmallRng,
    classes: Vec<RuntimeClass>,
    slots: Vec<Visit>,
    free: Vec<u32>,
    /// Min-heap of (next touch time, slot).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    last_inst: u64,
    phase_len: Option<u64>,
}

impl CoreEngine {
    pub(crate) fn new(spec: &WorkloadSpec, core: u8, seed: u64, salt: u64) -> Self {
        let rng = SmallRng::seed_from_u64(splitmix(seed ^ (core as u64) << 8));
        let mut engine = Self {
            core,
            seed,
            salt,
            rng,
            classes: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            heap: BinaryHeap::new(),
            last_inst: 0,
            phase_len: spec.phase_len,
        };
        for (idx, class) in spec.classes.iter().enumerate() {
            if !class.cores.contains(core) {
                continue;
            }
            let interval =
                ((class.visit_duration as f64 / class.pattern.mean_len()).round() as u64).max(1);
            let concurrency = ((class.access_rate * interval as f64).round() as u32).max(1);
            let private = if class.private_region {
                (core as u64) << 36
            } else {
                0
            };
            let region_base = (engine.salt << 44) | ((idx as u64 + 1) << 40) | private;
            let zipf = match class.select {
                PageSelect::Zipf(theta) => Some(Zipf::new(class.pages, theta)),
                _ => None,
            };
            let seq_cursor = if matches!(class.select, PageSelect::Sequential) {
                // Spread scan cursors across cores.
                (class.pages / 16).saturating_mul(core as u64) % class.pages
            } else {
                0
            };
            engine.classes.push(RuntimeClass {
                spec: class.clone(),
                interval,
                concurrency,
                region_base,
                zipf,
                seq_cursor,
            });
        }
        // Populate the initial visit mix, first touches spread over one
        // interval so the schedule starts smooth.
        for c in 0..engine.classes.len() {
            for _ in 0..engine.classes[c].concurrency {
                let when = engine
                    .rng
                    .random_range(0..engine.classes[c].interval.max(2));
                engine.spawn_fresh(c as u16, when);
            }
        }
        engine
    }

    fn salt_at(&self, when: u64) -> u64 {
        self.phase_len.map_or(0, |p| when / p)
    }

    fn alloc_slot(&mut self, visit: Visit) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = visit;
            slot
        } else {
            self.slots.push(visit);
            (self.slots.len() - 1) as u32
        }
    }

    fn spawn_fresh(&mut self, class: u16, when: u64) {
        let salt = self.salt_at(when);
        let rc = &mut self.classes[class as usize];
        let func = self.rng.random_range(0..rc.spec.functions);
        let page = rc.pick_page(&mut self.rng);
        let start = if rc.spec.aligned {
            (splitmix(self.seed ^ (class as u64) << 16 ^ func as u64) % CHUNK_BLOCKS as u64) as u8
        } else {
            self.rng.random_range(0..CHUNK_BLOCKS as u8)
        };
        let remaining = rc.spec.pattern.derive(self.seed, class, func, salt);
        let slot = self.alloc_slot(Visit {
            class,
            func,
            page,
            start,
            remaining,
        });
        self.heap.push(Reverse((when, slot)));
    }

    fn respawn_same(&mut self, visit: &Visit, when: u64) {
        let salt = self.salt_at(when);
        let remaining = self.classes[visit.class as usize].spec.pattern.derive(
            self.seed,
            visit.class,
            visit.func,
            salt,
        );
        let slot = self.alloc_slot(Visit {
            remaining,
            ..*visit
        });
        self.heap.push(Reverse((when, slot)));
    }

    /// Scheduled time of this core's next record.
    pub(crate) fn peek_time(&self) -> u64 {
        let Reverse((t, _)) = self.heap.peek().expect("core heap never empties");
        (*t).max(self.last_inst + 1)
    }

    /// Instruction time of the last emitted record (core-local clock).
    pub(crate) fn last_inst(&self) -> u64 {
        self.last_inst
    }

    /// Number of classes this core runs (zero means the spec's core
    /// sets exclude it).
    pub(crate) fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Emits this core's next record.
    pub(crate) fn emit(&mut self) -> TraceRecord {
        let Reverse((t, slot)) = self.heap.pop().expect("core heap never empties");
        let now = t.max(self.last_inst + 1);
        let gap = (now - self.last_inst).min(u32::MAX as u64) as u32;
        self.last_inst = now;

        let visit = &mut self.slots[slot as usize];
        let delta = visit.remaining.trailing_zeros();
        visit.remaining &= visit.remaining - 1;
        let offset = (visit.start as u32 + delta) % CHUNK_BLOCKS as u32;
        let class = visit.class;
        let func = visit.func;
        let page = visit.page;
        let done = visit.remaining == 0;
        let finished = visit.clone();

        let rc = &self.classes[class as usize];
        let addr = rc.region_base + page * CHUNK_BYTES + offset as u64 * 64;
        let pc_core = if rc.spec.private_region {
            (self.core as u64) << 24
        } else {
            0
        };
        let pc =
            (self.salt << 32) | 0x40_0000 | pc_core | (class as u64) << 16 | (func as u64) << 2;
        let write_frac = rc.spec.write_frac;
        let reuse = rc.spec.reuse;
        let kind = if self.rng.random::<f64>() < write_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };

        if done {
            self.free.push(slot);
            let next = now + self.classes[class as usize].draw_interval(&mut self.rng);
            if self.rng.random::<f64>() < reuse {
                // Temporal reuse: revisit the same page with the same
                // function after roughly one inter-touch interval.
                self.respawn_same(&finished, next);
            } else {
                self.spawn_fresh(class, next);
            }
        } else {
            let next = now + self.classes[class as usize].draw_interval(&mut self.rng);
            self.heap.push(Reverse((next, slot)));
        }

        TraceRecord {
            pc: Pc::new(pc),
            addr: PhysAddr::new(addr),
            kind,
            core: self.core,
            inst_gap: gap.max(1),
        }
    }
}

/// An infinite, deterministic stream of [`TraceRecord`]s for one workload
/// on an `n`-core pod.
///
/// Records are merged across cores in per-core instruction order, which at
/// the paper's fixed trace IPC of 1.0 approximates global chronological
/// order. The stream is infinite — take as many records as the experiment
/// needs.
///
/// # Examples
///
/// ```
/// use fc_trace::{TraceGenerator, WorkloadKind};
///
/// let records: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 16, 7)
///     .take(1000)
///     .collect();
/// assert_eq!(records.len(), 1000);
/// // Deterministic: the same seed replays the same trace.
/// let again: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 16, 7)
///     .take(1000)
///     .collect();
/// assert_eq!(records, again);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    cores: Vec<CoreEngine>,
}

impl TraceGenerator {
    /// Creates a generator for `kind` with `cores` cores and a seed.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(kind: WorkloadKind, cores: u8, seed: u64) -> Self {
        Self::from_spec(&kind.spec(), cores, seed)
    }

    /// Creates a generator from a custom [`WorkloadSpec`].
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or if some core ends up with no classes.
    pub fn from_spec(spec: &WorkloadSpec, cores: u8, seed: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        let engines: Vec<CoreEngine> = (0..cores)
            .map(|c| CoreEngine::new(spec, c, seed, 0))
            .collect();
        for e in &engines {
            assert!(
                !e.classes.is_empty(),
                "core {} has no classes; check CoreSet coverage",
                e.core
            );
        }
        Self { cores: engines }
    }

    /// Number of cores in the stream.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Emit from the core whose next touch is earliest.
        let idx = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.peek_time())
            .map(|(i, _)| i)
            .expect("at least one core");
        Some(self.cores[idx].emit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{CoreSet, PatternFamily};
    use std::collections::{HashMap, HashSet};

    fn single_class_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            phase_len: None,
            classes: vec![ClassSpec {
                name: "only",
                access_rate: 0.01,
                visit_duration: 10_000,
                pattern: PatternFamily::Dense { min: 4, max: 8 },
                select: PageSelect::Uniform,
                pages: 128,
                write_frac: 0.3,
                reuse: 0.5,
                functions: 1,
                aligned: true,
                cores: CoreSet::All,
                private_region: false,
            }],
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<_> = TraceGenerator::new(WorkloadKind::DataServing, 16, 99)
            .take(5000)
            .collect();
        let b: Vec<_> = TraceGenerator::new(WorkloadKind::DataServing, 16, 99)
            .take(5000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_the_stream() {
        let a: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 1)
            .take(500)
            .collect();
        let b: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 2)
            .take(500)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn gaps_are_positive_and_mean_matches_rate() {
        let spec = WorkloadKind::WebSearch.spec();
        let expect_gap = 1.0 / spec.total_access_rate();
        let records: Vec<_> = TraceGenerator::from_spec(&spec, 16, 3)
            .take(100_000)
            .collect();
        let mut per_core_insts: HashMap<u8, u64> = HashMap::new();
        for r in &records {
            assert!(r.inst_gap >= 1);
            *per_core_insts.entry(r.core).or_default() += r.inst_gap as u64;
        }
        let total_insts: u64 = per_core_insts.values().sum();
        let mean_gap = total_insts as f64 / records.len() as f64;
        assert!(
            mean_gap > expect_gap * 0.5 && mean_gap < expect_gap * 2.0,
            "mean gap {mean_gap:.0} vs expected {expect_gap:.0}"
        );
    }

    #[test]
    fn all_cores_emit() {
        let records: Vec<_> = TraceGenerator::new(WorkloadKind::SatSolver, 16, 5)
            .take(50_000)
            .collect();
        let cores: HashSet<u8> = records.iter().map(|r| r.core).collect();
        assert_eq!(cores.len(), 16);
    }

    #[test]
    fn single_function_visits_repeat_footprints() {
        // One aligned function, stable phase: every visit of a page must
        // touch the same offsets — the predictability the FHT relies on.
        let records: Vec<_> = TraceGenerator::from_spec(&single_class_spec(), 1, 11)
            .take(20_000)
            .collect();
        let mut per_page: HashMap<u64, HashSet<u64>> = HashMap::new();
        for r in &records {
            let page = r.addr.raw() / 2048;
            let offset = (r.addr.raw() % 2048) / 64;
            per_page.entry(page).or_default().insert(offset);
        }
        // All pages visited by the single function must share one
        // footprint size (<= max pattern length 8).
        let sizes: HashSet<usize> = per_page.values().map(|s| s.len()).collect();
        assert!(sizes.len() <= 2, "footprints vary: {sizes:?}");
        assert!(sizes.iter().all(|&s| s <= 8));
    }

    #[test]
    fn singleton_class_touches_one_block_per_page() {
        let mut spec = single_class_spec();
        spec.classes[0].pattern = PatternFamily::Singleton;
        spec.classes[0].pages = 10_000_000;
        spec.classes[0].reuse = 0.0;
        spec.classes[0].aligned = false;
        let records: Vec<_> = TraceGenerator::from_spec(&spec, 1, 13)
            .take(5_000)
            .collect();
        let mut per_page: HashMap<u64, HashSet<u64>> = HashMap::new();
        for r in &records {
            per_page
                .entry(r.addr.raw() / 2048)
                .or_default()
                .insert(r.addr.raw() % 2048 / 64);
        }
        let multi = per_page.values().filter(|s| s.len() > 1).count();
        // Collisions are possible but must be rare.
        assert!(multi * 50 < per_page.len(), "{multi}/{}", per_page.len());
    }

    #[test]
    fn write_fraction_respected() {
        let records: Vec<_> = TraceGenerator::from_spec(&single_class_spec(), 2, 17)
            .take(50_000)
            .collect();
        let writes = records.iter().filter(|r| r.kind.is_write()).count();
        let frac = writes as f64 / records.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn multiprogrammed_cores_use_private_regions() {
        let records: Vec<_> = TraceGenerator::new(WorkloadKind::Multiprogrammed, 4, 23)
            .take(50_000)
            .collect();
        // Odd cores stream privately: same class, different cores, must not
        // share addresses.
        let mut by_core: HashMap<u8, HashSet<u64>> = HashMap::new();
        for r in records.iter().filter(|r| r.core % 2 == 1) {
            by_core.entry(r.core).or_default().insert(r.addr.raw());
        }
        let c1 = by_core.get(&1).cloned().unwrap_or_default();
        let c3 = by_core.get(&3).cloned().unwrap_or_default();
        assert!(!c1.is_empty() && !c3.is_empty());
        assert!(c1.is_disjoint(&c3));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        TraceGenerator::new(WorkloadKind::WebSearch, 0, 1);
    }

    #[test]
    fn addresses_fall_in_class_regions() {
        let records: Vec<_> = TraceGenerator::new(WorkloadKind::WebFrontend, 8, 31)
            .take(20_000)
            .collect();
        let nclasses = WorkloadKind::WebFrontend.spec().classes.len() as u64;
        for r in &records {
            let region = r.addr.raw() >> 40;
            assert!(region >= 1 && region <= nclasses, "address {region}");
        }
    }
}
