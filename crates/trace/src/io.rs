//! Binary trace serialization.
//!
//! Format: an 8-byte header (`b"FCTRACE1"`), then fixed-width 22-byte
//! records (little-endian): `pc: u64`, `addr: u64`, `inst_gap: u32`,
//! `kind: u8` (0 = read, 1 = write), `core: u8`. The stream ends at EOF.

use std::error::Error;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};

use bytes::{Buf, BufMut};

use fc_types::{AccessKind, Pc, PhysAddr};

use crate::record::TraceRecord;

const MAGIC: &[u8; 8] = b"FCTRACE1";
const RECORD_BYTES: usize = 22;

/// Errors produced while reading or writing traces.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// The stream ended in the middle of a record.
    TruncatedRecord,
    /// A record's `kind` byte was neither 0 nor 1.
    InvalidKind(u8),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io failure: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace stream (bad magic)"),
            TraceIoError::TruncatedRecord => write!(f, "truncated trace record"),
            TraceIoError::InvalidKind(k) => write!(f, "invalid access kind byte {k}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes trace records to any [`Write`] sink.
///
/// A `&mut W` can be passed wherever a `W: Write` is expected.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), fc_trace::TraceIoError> {
/// use fc_trace::{TraceReader, TraceRecord, TraceWriter};
/// use fc_types::{AccessKind, PhysAddr, Pc};
///
/// let record = TraceRecord {
///     pc: Pc::new(0x400),
///     addr: PhysAddr::new(0x8000),
///     kind: AccessKind::Read,
///     core: 3,
///     inst_gap: 12,
/// };
///
/// let mut buf = Vec::new();
/// let mut writer = TraceWriter::new(&mut buf)?;
/// writer.write(&record)?;
/// writer.finish()?;
///
/// let mut reader = TraceReader::new(buf.as_slice())?;
/// assert_eq!(reader.next().unwrap()?, record);
/// assert!(reader.next().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: BufWriter<W>,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the stream header.
    ///
    /// # Errors
    ///
    /// Returns an error if writing the header fails.
    pub fn new(sink: W) -> Result<Self, TraceIoError> {
        let mut sink = BufWriter::new(sink);
        sink.write_all(MAGIC)?;
        Ok(Self { sink, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying write fails.
    pub fn write(&mut self, record: &TraceRecord) -> Result<(), TraceIoError> {
        let mut buf = [0u8; RECORD_BYTES];
        {
            let mut cursor = &mut buf[..];
            cursor.put_u64_le(record.pc.raw());
            cursor.put_u64_le(record.addr.raw());
            cursor.put_u32_le(record.inst_gap);
            cursor.put_u8(record.kind.is_write() as u8);
            cursor.put_u8(record.core);
        }
        self.sink.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Returns an error if flushing fails.
    pub fn finish(mut self) -> Result<(), TraceIoError> {
        self.sink.flush()?;
        Ok(())
    }
}

/// Reads trace records from any [`Read`] source; iterates
/// `Result<TraceRecord, TraceIoError>`.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: BufReader<R>,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader, validating the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::BadMagic`] if the header is missing or
    /// wrong, or an I/O error.
    pub fn new(source: R) -> Result<Self, TraceIoError> {
        let mut source = BufReader::new(source);
        let mut magic = [0u8; 8];
        source
            .read_exact(&mut magic)
            .map_err(|_| TraceIoError::BadMagic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        Ok(Self { source })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut buf = [0u8; RECORD_BYTES];
        let mut filled = 0;
        while filled < RECORD_BYTES {
            match self.source.read(&mut buf[filled..]) {
                Ok(0) => {
                    return if filled == 0 {
                        None
                    } else {
                        Some(Err(TraceIoError::TruncatedRecord))
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(Err(e.into())),
            }
        }
        let mut cursor = &buf[..];
        let pc = Pc::new(cursor.get_u64_le());
        let addr = PhysAddr::new(cursor.get_u64_le());
        let inst_gap = cursor.get_u32_le();
        let kind = match cursor.get_u8() {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => return Some(Err(TraceIoError::InvalidKind(k))),
        };
        let core = cursor.get_u8();
        Some(Ok(TraceRecord {
            pc,
            addr,
            kind,
            core,
            inst_gap,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                pc: Pc::new(0x1000 + i * 4),
                addr: PhysAddr::new(i * 64),
                kind: if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                core: (i % 16) as u8,
                inst_gap: (i % 100) as u32 + 1,
            })
            .collect()
    }

    #[test]
    fn round_trip_many_records() {
        let records = sample(1000);
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        assert_eq!(w.records_written(), 1000);
        w.finish().unwrap();

        let r = TraceReader::new(buf.as_slice()).unwrap();
        let read: Vec<_> = r.map(Result::unwrap).collect();
        assert_eq!(read, records);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(&b"NOTATRACE"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
        assert_eq!(format!("{err}"), "not a trace stream (bad magic)");
    }

    #[test]
    fn truncated_record_detected() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write(&sample(1)[0]).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next().unwrap().unwrap_err(),
            TraceIoError::TruncatedRecord
        ));
    }

    #[test]
    fn invalid_kind_byte_detected() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write(&sample(1)[0]).unwrap();
        w.finish().unwrap();
        // kind byte is at offset 8 (magic) + 20.
        buf[8 + 20] = 9;
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next().unwrap().unwrap_err(),
            TraceIoError::InvalidKind(9)
        ));
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let mut buf = Vec::new();
        TraceWriter::new(&mut buf).unwrap().finish().unwrap();
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(r.next().is_none());
    }

    proptest! {
        #[test]
        fn arbitrary_records_round_trip(
            recs in proptest::collection::vec(
                (any::<u64>(), any::<u64>(), any::<bool>(), any::<u8>(), 1u32..u32::MAX),
                0..50)
        ) {
            let records: Vec<TraceRecord> = recs
                .into_iter()
                .map(|(pc, addr, w, core, gap)| TraceRecord {
                    pc: Pc::new(pc),
                    addr: PhysAddr::new(addr),
                    kind: if w { AccessKind::Write } else { AccessKind::Read },
                    core,
                    inst_gap: gap,
                })
                .collect();
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf).unwrap();
            for r in &records {
                w.write(r).unwrap();
            }
            w.finish().unwrap();
            let read: Vec<_> = TraceReader::new(buf.as_slice())
                .unwrap()
                .map(Result::unwrap)
                .collect();
            prop_assert_eq!(read, records);
        }
    }
}
