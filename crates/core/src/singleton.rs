//! The Singleton Table (Section 4.4).
//!
//! When the FHT predicts a single-block footprint, Footprint Cache does
//! not allocate the page: the block is forwarded to the upper hierarchy,
//! bypassing the cache. But an unallocated page produces no eviction
//! feedback, so a wrong singleton classification could never be corrected.
//! The Singleton Table closes the loop: it remembers recent singleton
//! decisions (page tag, PC, offset); a second access to such a page — an
//! underprediction — promotes the page to a normal allocation and fixes
//! the FHT entry using the PC & offset stored in the table.

use serde::{Deserialize, Serialize};

use fc_types::PageAddr;

use fc_cache::SetAssoc;

use crate::pattern_hash;

/// What the Singleton Table remembers about one bypassed page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SingletonEntry {
    /// Prediction key (PC & offset, already collapsed by
    /// [`KeyKind`](crate::KeyKind)) that classified the page as singleton.
    pub key: u64,
    /// The single block offset that was accessed.
    pub offset: u8,
}

/// The Singleton Table: 512 entries, 3 KB in the paper's configuration.
///
/// # Examples
///
/// ```
/// use footprint_cache::SingletonTable;
/// use fc_types::PageAddr;
///
/// let mut st = SingletonTable::new(512);
/// let page = PageAddr::new(42);
/// st.record(page, 0x400 << 6, 7);
///
/// // A second access to the page finds (and removes) the entry.
/// let entry = st.take(page).unwrap();
/// assert_eq!(entry.offset, 7);
/// assert!(st.take(page).is_none());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SingletonTable {
    table: SetAssoc<SingletonEntry>,
}

impl SingletonTable {
    const WAYS: usize = 8;
    /// Bits per entry: page tag + PC&offset key + offset (the paper's 512
    /// entries occupy 3 KB → 48 bits each).
    const ENTRY_BITS: u64 = 48;

    /// Creates a table with `entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 8.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(Self::WAYS),
            "entries must be a positive multiple of 8"
        );
        Self {
            table: SetAssoc::new(entries / Self::WAYS, Self::WAYS),
        }
    }

    #[inline]
    fn decompose(&self, page: PageAddr) -> (usize, u64) {
        let h = pattern_hash(page.raw());
        ((h % self.table.sets() as u64) as usize, page.raw())
    }

    /// Records a singleton bypass decision for `page`. The entry stays
    /// until a second access ([`take`](Self::take)) or LRU eviction.
    pub fn record(&mut self, page: PageAddr, key: u64, offset: u8) {
        let (set, tag) = self.decompose(page);
        self.table.insert(set, tag, SingletonEntry { key, offset });
    }

    /// Looks up `page` and, if present, removes and returns its entry —
    /// the second-access promotion path.
    pub fn take(&mut self, page: PageAddr) -> Option<SingletonEntry> {
        let (set, tag) = self.decompose(page);
        self.table.remove(set, tag)
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.table.capacity()
    }

    /// SRAM size in bytes (512 entries → 3 KB).
    pub fn storage_bytes(&self) -> u64 {
        self.table.capacity() as u64 * Self::ENTRY_BITS / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_cycle() {
        let mut st = SingletonTable::new(64);
        let p = PageAddr::new(1000);
        st.record(p, 77, 3);
        let e = st.take(p).unwrap();
        assert_eq!(e, SingletonEntry { key: 77, offset: 3 });
        assert!(st.take(p).is_none());
    }

    #[test]
    fn distinct_pages_do_not_collide() {
        let mut st = SingletonTable::new(64);
        st.record(PageAddr::new(1), 10, 1);
        st.record(PageAddr::new(2), 20, 2);
        assert_eq!(st.take(PageAddr::new(1)).unwrap().key, 10);
        assert_eq!(st.take(PageAddr::new(2)).unwrap().key, 20);
    }

    #[test]
    fn rerecord_updates_entry() {
        let mut st = SingletonTable::new(64);
        let p = PageAddr::new(5);
        st.record(p, 1, 1);
        st.record(p, 2, 2);
        assert_eq!(st.take(p).unwrap().offset, 2);
    }

    #[test]
    fn lru_bounds_occupancy() {
        let mut st = SingletonTable::new(8); // one set
        for i in 0..20u64 {
            st.record(PageAddr::new(i), i, 0);
        }
        let live = (0..20u64)
            .filter(|&i| st.take(PageAddr::new(i)).is_some())
            .count();
        assert_eq!(live, 8);
    }

    #[test]
    fn paper_sizing_is_3_kb() {
        let st = SingletonTable::new(512);
        assert_eq!(st.storage_bytes(), 3 * 1024);
    }
}
