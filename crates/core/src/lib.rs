//! **Footprint Cache** — a die-stacked DRAM cache for servers that gets
//! hit ratio, latency *and* bandwidth (Jevdjic, Volos, Falsafi; ISCA
//! 2013).
//!
//! Footprint Cache allocates data at page granularity (1–4 KB) — giving
//! the small, fast SRAM tag array and high hit ratio of page-based
//! designs — but *fetches* only the 64-byte blocks predicted to be touched
//! during the page's residency: the page's **footprint**. That eliminates
//! the off-chip traffic blow-up of page-based caches while keeping their
//! hits.
//!
//! The three mechanisms, each its own module:
//!
//! * [`Fht`] — the **Footprint History Table** (Section 4.2): a small
//!   set-associative SRAM structure mapping a *PC & offset* key (the
//!   program counter that triggered a page miss, plus the missing block's
//!   offset within the page) to the footprint observed the last time a
//!   page was evicted under that key. Code that touches data structures
//!   the same way keeps touching them the same way — the spatial
//!   correlation insight the predictor inherits from spatial memory
//!   streaming [34].
//! * [`SingletonTable`] — the capacity optimization (Sections 3.2/4.4):
//!   pages predicted to contain a single useful block and show no reuse
//!   are *not allocated at all*; their block bypasses the cache. A small
//!   table remembers such decisions so a second access can promote the
//!   page and correct the prediction.
//! * [`FootprintCache`] — the cache proper (Section 4): a page tag array
//!   whose per-block (dirty, valid) encoding (Table 2) distinguishes
//!   demanded from merely-prefetched blocks with zero extra storage, so
//!   evictions can send exact footprint feedback to the FHT.
//!
//! # Quick start
//!
//! ```
//! use footprint_cache::{FootprintCache, FootprintCacheConfig};
//! use fc_cache::DramCacheModel;
//! use fc_types::{MemAccess, PhysAddr, Pc};
//!
//! let mut cache = FootprintCache::new(FootprintCacheConfig::new(256 << 20));
//!
//! // A page miss fetches only the predicted footprint (no history yet:
//! // just the demanded block).
//! let pc = Pc::new(0x400);
//! let miss = cache.access(MemAccess::read(pc, PhysAddr::new(0x10_0000), 0));
//! assert!(!miss.hit);
//! assert_eq!(miss.offchip_read_blocks(), 1);
//!
//! // The demanded block now hits in the stacked DRAM.
//! let hit = cache.access(MemAccess::read(pc, PhysAddr::new(0x10_0000), 0));
//! assert!(hit.hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod fht;
mod metrics;
mod singleton;

pub use cache::FootprintCache;
pub use config::{FootprintCacheConfig, KeyKind};
pub use fht::Fht;
pub use metrics::PredictorMetrics;
pub use singleton::{SingletonEntry, SingletonTable};

/// SplitMix64 finalizer used to spread prediction keys across table sets.
#[inline]
pub(crate) fn pattern_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}
