//! The Footprint History Table (Section 4.2).
//!
//! A set-associative SRAM table mapping PC & offset keys to predicted
//! footprints. Its size is independent of the dataset: it holds only the
//! fraction of the application's *instruction* working set that triggers
//! page misses, measured in kilobytes (16 K entries = 144 KB in the
//! paper's configuration). It is updated on every page eviction with the
//! demanded-block vector generated during the page's residency, keeping
//! the history "in harmony with the workload's execution phase".

use serde::{Deserialize, Serialize};

use fc_cache::SetAssoc;
use fc_types::Footprint;

use crate::pattern_hash;

/// The Footprint History Table.
///
/// # Examples
///
/// ```
/// use footprint_cache::Fht;
/// use fc_types::Footprint;
///
/// let mut fht = Fht::new(1024, 8);
/// let key = 0xdead_beef;
/// assert!(fht.predict(key).is_none());
///
/// fht.train(key, Footprint::from_offsets([0, 3, 4]));
/// assert_eq!(fht.predict(key), Some(Footprint::from_offsets([0, 3, 4])));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fht {
    table: SetAssoc<Footprint>,
    predicts: u64,
    hits: u64,
}

impl Fht {
    /// Bits per entry: key tag + 32-bit footprint (the paper's 16 K
    /// entries occupy 144 KB → 72 bits each).
    const ENTRY_BITS: u64 = 72;

    /// Creates an FHT with `entries` entries of associativity `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(ways),
            "entries must be a positive multiple of ways"
        );
        Self {
            table: SetAssoc::new(entries / ways, ways),
            predicts: 0,
            hits: 0,
        }
    }

    #[inline]
    fn decompose(&self, key: u64) -> (usize, u64) {
        // Hash the key so sequential PCs spread across sets.
        let h = pattern_hash(key);
        ((h % self.table.sets() as u64) as usize, key)
    }

    /// Looks up the predicted footprint for `key` (queried only on page
    /// misses — the FHT is off the critical path of hits).
    pub fn predict(&mut self, key: u64) -> Option<Footprint> {
        self.predicts += 1;
        let (set, tag) = self.decompose(key);
        let hit = self.table.get(set, tag).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Records the footprint observed at a page eviction, replacing any
    /// previous prediction for `key` ("updated upon every page eviction
    /// with the most recent footprint").
    pub fn train(&mut self, key: u64, demanded: Footprint) {
        if demanded.is_empty() {
            return;
        }
        let (set, tag) = self.decompose(key);
        self.table.insert(set, tag, demanded);
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.table.capacity()
    }

    /// SRAM size in bytes (16 K entries → 144 KB, Section 5.2).
    pub fn storage_bytes(&self) -> u64 {
        self.table.capacity() as u64 * Self::ENTRY_BITS / 8
    }

    /// Fraction of predictions that found history (coverage of the
    /// instruction working set).
    pub fn lookup_hit_ratio(&self) -> f64 {
        if self.predicts == 0 {
            0.0
        } else {
            self.hits as f64 / self.predicts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn train_then_predict() {
        let mut fht = Fht::new(64, 4);
        fht.train(1, Footprint::from_offsets([5]));
        assert_eq!(fht.predict(1), Some(Footprint::from_offsets([5])));
        assert!(fht.predict(2).is_none());
        assert!((fht.lookup_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn retrain_replaces_footprint() {
        let mut fht = Fht::new(64, 4);
        fht.train(7, Footprint::from_offsets([0, 1]));
        fht.train(7, Footprint::from_offsets([2]));
        assert_eq!(fht.predict(7), Some(Footprint::from_offsets([2])));
    }

    #[test]
    fn empty_feedback_ignored() {
        let mut fht = Fht::new(64, 4);
        fht.train(9, Footprint::empty());
        assert!(fht.predict(9).is_none());
    }

    #[test]
    fn capacity_bounded_by_lru() {
        let mut fht = Fht::new(8, 8); // one set
        for key in 0..16u64 {
            fht.train(key, Footprint::from_offsets([0]));
        }
        let live = (0..16u64).filter(|&k| fht.predict(k).is_some()).count();
        assert_eq!(live, 8);
    }

    #[test]
    fn paper_sizing_is_144_kb() {
        let fht = Fht::new(16 * 1024, 8);
        assert_eq!(fht.storage_bytes(), 144 * 1024);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_rejected() {
        Fht::new(10, 3);
    }

    proptest! {
        /// The most recent training always wins, regardless of interleaved
        /// other-key traffic (stability property the paper relies on).
        #[test]
        fn last_train_wins(keys in proptest::collection::vec(0u64..32, 1..50),
                           probe in 0u64..32, fp_bits in 1u64..u64::MAX) {
            let mut fht = Fht::new(256, 8);
            let fp = Footprint::from_bits(fp_bits);
            for k in keys {
                fht.train(k, Footprint::from_offsets([1, 2]));
            }
            fht.train(probe, fp);
            prop_assert_eq!(fht.predict(probe), Some(fp));
        }
    }
}
