//! Footprint Cache configuration.

use serde::{Deserialize, Serialize};

use fc_types::PageGeometry;

/// What keys the footprint predictor (Section 3.1 / Figure 8 discussion).
///
/// The paper settles on PC & offset: the PC alone mispredicts when data
/// structures are not page-aligned; the offset alone conflates unrelated
/// code. The other two variants exist for the `abl-key` ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyKind {
    /// The paper's key: (PC, block offset within page).
    #[default]
    PcOffset,
    /// Instruction address only.
    PcOnly,
    /// Block offset only.
    OffsetOnly,
}

impl KeyKind {
    /// Collapses (pc, offset) into the prediction key value.
    #[inline]
    pub fn key(self, pc: u64, offset: usize) -> u64 {
        match self {
            KeyKind::PcOffset => (pc << 6) ^ offset as u64,
            KeyKind::PcOnly => pc,
            KeyKind::OffsetOnly => offset as u64,
        }
    }
}

/// Configuration for a [`FootprintCache`](crate::FootprintCache).
///
/// Defaults follow the paper's evaluation setup (Table 4 / Section 5.2):
/// 2 KB pages, 16 K-entry FHT (144 KB), 512-entry Singleton Table (3 KB),
/// singleton optimization enabled.
///
/// # Examples
///
/// ```
/// use footprint_cache::{FootprintCacheConfig, KeyKind};
/// use fc_types::PageGeometry;
///
/// let config = FootprintCacheConfig::new(128 << 20)
///     .with_geometry(PageGeometry::new(1024))
///     .with_fht_entries(8192)
///     .with_singleton_optimization(false)
///     .with_key_kind(KeyKind::PcOnly);
/// assert_eq!(config.capacity_bytes, 128 << 20);
/// assert_eq!(config.geom.page_size(), 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FootprintCacheConfig {
    /// Stacked-DRAM capacity devoted to data.
    pub capacity_bytes: u64,
    /// Page size / block geometry.
    pub geom: PageGeometry,
    /// Tag array associativity.
    pub ways: usize,
    /// Footprint History Table entries (Figure 9 sweeps this).
    pub fht_entries: usize,
    /// FHT associativity.
    pub fht_ways: usize,
    /// Singleton Table entries.
    pub st_entries: usize,
    /// Whether the singleton-page capacity optimization is active
    /// (Section 6.5 ablates this).
    pub singleton_optimization: bool,
    /// Prediction key variant.
    pub key_kind: KeyKind,
}

impl FootprintCacheConfig {
    /// The paper's configuration at the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            geom: PageGeometry::default(),
            ways: 16,
            fht_entries: 16 * 1024,
            fht_ways: 8,
            st_entries: 512,
            singleton_optimization: true,
            key_kind: KeyKind::PcOffset,
        }
    }

    /// Sets the page geometry (Figure 8 sweeps 1/2/4 KB pages).
    pub fn with_geometry(mut self, geom: PageGeometry) -> Self {
        self.geom = geom;
        self
    }

    /// Sets the FHT entry count (Figure 9).
    pub fn with_fht_entries(mut self, entries: usize) -> Self {
        self.fht_entries = entries;
        self
    }

    /// Enables or disables the singleton optimization (Section 6.5).
    pub fn with_singleton_optimization(mut self, on: bool) -> Self {
        self.singleton_optimization = on;
        self
    }

    /// Sets the prediction key variant (ablation).
    pub fn with_key_kind(mut self, kind: KeyKind) -> Self {
        self.key_kind = kind;
        self
    }

    /// Number of page frames in the cache.
    pub fn pages(&self) -> usize {
        (self.capacity_bytes / self.geom.page_size() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FootprintCacheConfig::new(256 << 20);
        assert_eq!(c.geom.page_size(), 2048);
        assert_eq!(c.fht_entries, 16 * 1024);
        assert_eq!(c.st_entries, 512);
        assert!(c.singleton_optimization);
        assert_eq!(c.key_kind, KeyKind::PcOffset);
        assert_eq!(c.pages(), 131_072);
    }

    #[test]
    fn key_kinds_distinguish_inputs() {
        let k = KeyKind::PcOffset;
        assert_ne!(k.key(0x400, 1), k.key(0x400, 2));
        assert_ne!(k.key(0x400, 1), k.key(0x404, 1));
        assert_eq!(KeyKind::PcOnly.key(0x400, 1), KeyKind::PcOnly.key(0x400, 9));
        assert_eq!(
            KeyKind::OffsetOnly.key(0x400, 3),
            KeyKind::OffsetOnly.key(0x999, 3)
        );
    }
}
