//! Predictor quality metrics (Section 3.1 / Figure 8).
//!
//! At every page eviction the cache compares the footprint it *fetched*
//! (the prediction) with the footprint the cores *demanded*:
//!
//! * **covered** — predicted and demanded: useful prefetches;
//! * **overpredictions** — fetched but never demanded: wasted off-chip
//!   and TSV bandwidth and energy;
//! * **underpredictions** — demanded but not fetched: each cost an extra
//!   miss at full off-chip latency.

use serde::{Deserialize, Serialize};

/// Cumulative predictor metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorMetrics {
    /// Blocks predicted and demanded.
    pub covered_blocks: u64,
    /// Blocks fetched but never demanded before eviction.
    pub overpredicted_blocks: u64,
    /// Blocks demanded but not in the prediction (each produced a miss).
    pub underpredicted_blocks: u64,
    /// Pages bypassed by the singleton optimization.
    pub singleton_bypasses: u64,
    /// Singleton pages promoted to full allocations by a second access.
    pub singleton_promotions: u64,
}

impl PredictorMetrics {
    /// Total demanded blocks among evicted pages.
    pub fn demanded_blocks(&self) -> u64 {
        self.covered_blocks + self.underpredicted_blocks
    }

    /// Fraction of demanded blocks successfully predicted (Figure 8's
    /// "Covered" component).
    pub fn coverage(&self) -> f64 {
        let d = self.demanded_blocks();
        if d == 0 {
            0.0
        } else {
            self.covered_blocks as f64 / d as f64
        }
    }

    /// Underpredicted fraction of demanded blocks.
    pub fn underprediction_rate(&self) -> f64 {
        let d = self.demanded_blocks();
        if d == 0 {
            0.0
        } else {
            self.underpredicted_blocks as f64 / d as f64
        }
    }

    /// Overpredicted blocks relative to demanded blocks (can exceed 1.0;
    /// Figure 8 stacks it above 100%).
    pub fn overprediction_rate(&self) -> f64 {
        let d = self.demanded_blocks();
        if d == 0 {
            0.0
        } else {
            self.overpredicted_blocks as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_sensibly() {
        let m = PredictorMetrics {
            covered_blocks: 80,
            overpredicted_blocks: 10,
            underpredicted_blocks: 20,
            singleton_bypasses: 0,
            singleton_promotions: 0,
        };
        assert_eq!(m.demanded_blocks(), 100);
        assert!((m.coverage() - 0.8).abs() < 1e-12);
        assert!((m.underprediction_rate() - 0.2).abs() < 1e-12);
        assert!((m.overprediction_rate() - 0.1).abs() < 1e-12);
        assert!((m.coverage() + m.underprediction_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = PredictorMetrics::default();
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.overprediction_rate(), 0.0);
    }
}
