//! The Footprint Cache proper (Section 4).
//!
//! Allocation unit: a page (2 KB default). Fetch unit: the page's
//! *predicted footprint* of 64-byte blocks. On a page miss (the
//! *triggering miss*), the FHT is queried with the PC & offset key:
//!
//! * **singleton prediction** → the page is not allocated at all; the
//!   demanded block bypasses the cache and the decision is noted in the
//!   Singleton Table (capacity optimization, Section 4.4);
//! * **footprint prediction** → the page is allocated and the predicted
//!   blocks are fetched *at once* from off-chip memory — one DRAM row
//!   activation, streaming bursts — and written to the stacked DRAM the
//!   same way (the DRAM-locality property of Section 3);
//! * **no history** → the page is allocated with just the demanded block;
//!   eviction feedback will teach the FHT.
//!
//! Demanded blocks are distinguished from prefetched ones with the
//! (dirty, valid) encoding of Table 2 ([`BlockStateVec`]); at eviction the
//! demanded vector trains the FHT and the prediction quality metrics.

use fc_cache::{
    sram_latency_cycles, AccessPlan, DramCacheModel, DramCacheStats, MemOp, MemTarget, OpList,
    SetAssoc, StorageItem,
};
use fc_types::{BlockStateVec, Footprint, MemAccess, PageAddr, PhysAddr};

use crate::config::FootprintCacheConfig;
use crate::fht::Fht;
use crate::metrics::PredictorMetrics;
use crate::singleton::SingletonTable;

/// Bits per tag entry: page tag, page-valid, LRU, the two 32-bit
/// dirty/valid block vectors, and the FHT pointer (Table 4's 0.40 MB for
/// 32 K entries imply ~102 bits).
const TAG_ENTRY_BITS: u64 = 102;

#[derive(Clone, Copy, Debug, Default)]
struct PageEntry {
    states: BlockStateVec,
    /// The footprint fetched at allocation (for metrics).
    predicted: Footprint,
    /// Prediction key to train at eviction (the paper stores a pointer to
    /// the FHT entry; the key is functionally equivalent).
    fht_key: u64,
}

/// The Footprint Cache.
///
/// See the [crate-level documentation](crate) for an overview and
/// [`FootprintCacheConfig`] for the knobs.
///
/// # Examples
///
/// Footprint learning in action: after one page teaches the FHT its
/// footprint, the next page touched by the same code is fetched whole.
///
/// ```
/// use footprint_cache::{FootprintCache, FootprintCacheConfig};
/// use fc_cache::DramCacheModel;
/// use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
///
/// let config = FootprintCacheConfig::new(1 << 20); // small for the demo
/// let mut cache = FootprintCache::new(config);
/// let pc = Pc::new(0x400);
///
/// // Page A: the code touches blocks {0, 3, 5}.
/// for block in [0u64, 3, 5] {
///     cache.access(MemAccess::read(pc, PhysAddr::new(0x10_0000 + block * 64), 0));
/// }
/// cache.flush(); // evict everything -> trains the FHT
///
/// // Page B, same code, same starting offset: the whole footprint is
/// // fetched on the triggering miss...
/// let miss = cache.access(MemAccess::read(pc, PhysAddr::new(0x20_0000), 0));
/// assert_eq!(miss.offchip_read_blocks(), 3);
/// // ...so the other two blocks now hit.
/// assert!(cache.access(MemAccess::read(pc, PhysAddr::new(0x20_0000 + 3 * 64), 0)).hit);
/// assert!(cache.access(MemAccess::read(pc, PhysAddr::new(0x20_0000 + 5 * 64), 0)).hit);
/// ```
#[derive(Clone, Debug)]
pub struct FootprintCache {
    config: FootprintCacheConfig,
    tags: SetAssoc<PageEntry>,
    fht: Fht,
    st: SingletonTable,
    tag_latency: u32,
    stats: DramCacheStats,
    metrics: PredictorMetrics,
}

impl FootprintCache {
    /// Builds a Footprint Cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer pages than the associativity.
    pub fn new(config: FootprintCacheConfig) -> Self {
        let pages = config.pages();
        assert!(
            pages >= config.ways,
            "capacity must hold at least {} pages",
            config.ways
        );
        let tag_bytes = pages as u64 * TAG_ENTRY_BITS / 8;
        Self {
            tags: SetAssoc::new(pages / config.ways, config.ways),
            fht: Fht::new(config.fht_entries, config.fht_ways),
            st: SingletonTable::new(config.st_entries),
            tag_latency: sram_latency_cycles(tag_bytes),
            stats: DramCacheStats::default(),
            metrics: PredictorMetrics::default(),
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &FootprintCacheConfig {
        &self.config
    }

    /// Predictor quality counters (Figure 8).
    pub fn metrics(&self) -> &PredictorMetrics {
        &self.metrics
    }

    /// Read access to the FHT (diagnostics and examples).
    pub fn fht(&self) -> &Fht {
        &self.fht
    }

    fn decompose(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.tags.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    /// Stacked-DRAM address of a page slot (its 2 KB row).
    fn slot_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let ways = self.config.ways as u64;
        let slot = set as u64 * ways + tag % ways;
        PhysAddr::new(slot * self.config.geom.page_size() as u64)
    }

    /// Processes a victim page: density accounting, FHT feedback,
    /// prediction metrics, dirty writeback traffic.
    fn evict(&mut self, set: usize, victim_tag: u64, entry: PageEntry, bg: &mut OpList) {
        self.stats.evictions += 1;
        let demanded = entry.states.demanded();
        self.stats.density.record(demanded.len());

        // Feedback: the demanded vector is the page's generated footprint.
        self.fht.train(entry.fht_key, demanded);
        self.metrics.covered_blocks += entry.predicted.intersection(demanded).len() as u64;
        self.metrics.overpredicted_blocks += entry.predicted.difference(demanded).len() as u64;
        self.metrics.underpredicted_blocks += demanded.difference(entry.predicted).len() as u64;

        let dirty = entry.states.dirty();
        if dirty.is_empty() {
            return;
        }
        self.stats.dirty_evictions += 1;
        let sets = self.tags.sets() as u64;
        let victim_page = PageAddr::new(victim_tag * sets + set as u64);
        bg.push(MemOp::read(
            MemTarget::Stacked,
            self.slot_addr(set, victim_tag),
            dirty.len() as u32,
        ));
        bg.push(MemOp::write(
            MemTarget::OffChip,
            self.config.geom.page_base(victim_page),
            dirty.len() as u32,
        ));
    }

    /// Allocates `page` fetching `predicted`, with `offset` as the
    /// demanded block, and appends the fetch/fill/evict ops to `plan`.
    fn allocate(
        &mut self,
        page: PageAddr,
        offset: usize,
        predicted: Footprint,
        fht_key: u64,
        plan: &mut AccessPlan,
    ) {
        let (set, tag) = self.decompose(page);
        let blocks = predicted.len() as u32;

        // One off-chip row activation streams the whole footprint,
        // demanded block first (critical-block-first).
        plan.critical.push(MemOp::read(
            MemTarget::OffChip,
            self.config.geom.page_base(page),
            blocks,
        ));
        plan.background.push(MemOp::write(
            MemTarget::Stacked,
            self.slot_addr(set, tag),
            blocks,
        ));
        self.stats.fill_blocks += blocks as u64;

        let mut states = BlockStateVec::new();
        for b in predicted.iter() {
            states.fill_prefetched(b);
        }
        states.demand_read(offset);
        let entry = PageEntry {
            states,
            predicted,
            fht_key,
        };
        if let Some((victim_tag, victim)) = self.tags.insert(set, tag, entry) {
            let mut bg = OpList::new();
            self.evict(set, victim_tag, victim, &mut bg);
            plan.background.append(&mut bg);
        }
    }

    /// Warm-path twin of [`evict`](Self::evict): identical state
    /// transitions, feedback, and statistics, no op vectors.
    fn warm_evict(&mut self, entry: PageEntry) {
        self.stats.evictions += 1;
        let demanded = entry.states.demanded();
        self.stats.density.record(demanded.len());

        self.fht.train(entry.fht_key, demanded);
        self.metrics.covered_blocks += entry.predicted.intersection(demanded).len() as u64;
        self.metrics.overpredicted_blocks += entry.predicted.difference(demanded).len() as u64;
        self.metrics.underpredicted_blocks += demanded.difference(entry.predicted).len() as u64;

        let dirty = entry.states.dirty();
        if dirty.is_empty() {
            return;
        }
        self.stats.dirty_evictions += 1;
        self.stats.stacked_read_blocks += dirty.len() as u64;
        self.stats.offchip_write_blocks += dirty.len() as u64;
    }

    /// Warm-path twin of [`allocate`](Self::allocate): identical tag,
    /// predictor, and counter updates, no op vectors.
    fn warm_allocate(&mut self, page: PageAddr, offset: usize, predicted: Footprint, fht_key: u64) {
        let (set, tag) = self.decompose(page);
        let blocks = predicted.len() as u64;
        self.stats.offchip_read_blocks += blocks;
        self.stats.stacked_write_blocks += blocks;
        self.stats.fill_blocks += blocks;

        let mut states = BlockStateVec::new();
        for b in predicted.iter() {
            states.fill_prefetched(b);
        }
        states.demand_read(offset);
        let entry = PageEntry {
            states,
            predicted,
            fht_key,
        };
        if let Some((_victim_tag, victim)) = self.tags.insert(set, tag, entry) {
            self.warm_evict(victim);
        }
    }

    /// Evicts every cached page, emitting FHT feedback (useful for tests
    /// and for phase-boundary experiments; not a hardware operation).
    pub fn flush(&mut self) {
        let sets = self.tags.sets();
        let mut victims = Vec::new();
        for set in 0..sets {
            for (tag, _) in self.tags.iter_set(set) {
                victims.push((set, tag));
            }
        }
        let mut bg = OpList::new();
        for (set, tag) in victims {
            if let Some(entry) = self.tags.remove(set, tag) {
                self.evict(set, tag, entry, &mut bg);
            }
        }
        // Flush traffic is accounted like any other eviction traffic.
        let mut plan = AccessPlan::tag_only(false, 0);
        plan.background = bg;
        self.stats.absorb_plan(&plan);
    }
}

impl DramCacheModel for FootprintCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let geom = self.config.geom;
        let page = geom.page_of(req.addr);
        let offset = geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);

        if let Some(entry) = self.tags.get(set, tag) {
            if entry.states.state(offset).is_present() {
                // Block hit in the stacked DRAM.
                entry.states.demand_read(offset);
                self.stats.hits += 1;
                plan.hit = true;
                plan.critical
                    .push(MemOp::read(MemTarget::Stacked, self.slot_addr(set, tag), 1));
                self.stats.absorb_plan(&plan);
                return plan;
            }
            // Underprediction: page resident, block not fetched — a miss
            // at full off-chip latency (Section 3.1).
            entry.states.demand_read(offset);
            self.stats.misses += 1;
            plan.critical
                .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
            self.stats.fill_blocks += 1;
            plan.background.push(MemOp::write(
                MemTarget::Stacked,
                self.slot_addr(set, tag),
                1,
            ));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Page miss (triggering miss).
        self.stats.misses += 1;
        let key = self.config.key_kind.key(req.pc.raw(), offset);

        // Second access to a page previously classified singleton?
        if let Some(st_entry) = self.st.take(page) {
            // Promote: allocate with both known blocks and correct the
            // FHT entry created by the original classification.
            self.metrics.singleton_promotions += 1;
            let mut predicted = Footprint::singleton(st_entry.offset as usize);
            predicted.insert(offset);
            self.fht.train(st_entry.key, predicted);
            self.allocate(page, offset, predicted, st_entry.key, &mut plan);
            self.stats.absorb_plan(&plan);
            return plan;
        }

        match self.fht.predict(key) {
            Some(fp) if self.config.singleton_optimization && fp.is_singleton() => {
                // Singleton page: forward the block, allocate nothing.
                self.metrics.singleton_bypasses += 1;
                self.stats.bypasses += 1;
                plan.bypass = true;
                plan.critical
                    .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
                self.st.record(page, key, offset as u8);
            }
            Some(fp) => {
                // Fetch the predicted footprint (always including the
                // demanded block).
                let mut predicted = fp;
                predicted.insert(offset);
                self.allocate(page, offset, predicted, key, &mut plan);
            }
            None => {
                // No history: fetch the demanded block only; the eviction
                // feedback will create the FHT entry.
                self.allocate(page, offset, Footprint::singleton(offset), key, &mut plan);
            }
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let geom = self.config.geom;
        let page = geom.page_of(addr);
        let offset = geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);
        match self.tags.get(set, tag) {
            Some(entry) if entry.states.state(offset).is_present() => {
                entry.states.demand_write(offset);
                plan.hit = true;
                plan.background.push(MemOp::write(
                    MemTarget::Stacked,
                    self.slot_addr(set, tag),
                    1,
                ));
            }
            _ => {
                // Not resident: write through to memory; evictions from
                // the upper hierarchy are not tracked (Section 7).
                plan.background
                    .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
            }
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    // Warmup-only update path: the exact state transitions and
    // statistics of `access`/`writeback` — tags, FHT, Singleton Table,
    // prediction metrics — without constructing the `AccessPlan`'s op
    // vectors. The sampled simulator's functional mode calls these
    // once per fast-forwarded record, so the savings compound.
    //
    // Invariant (enforced by `warm_path_matches_detailed_path` below):
    // a cache driven by the warm methods is indistinguishable from one
    // driven by the plan-building methods.

    fn warm_access(&mut self, req: MemAccess) {
        self.stats.accesses += 1;
        let geom = self.config.geom;
        let page = geom.page_of(req.addr);
        let offset = geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);

        if let Some(entry) = self.tags.get(set, tag) {
            if entry.states.state(offset).is_present() {
                entry.states.demand_read(offset);
                self.stats.hits += 1;
                self.stats.stacked_read_blocks += 1;
                return;
            }
            // Underprediction: page resident, block not fetched.
            entry.states.demand_read(offset);
            self.stats.misses += 1;
            self.stats.offchip_read_blocks += 1;
            self.stats.fill_blocks += 1;
            self.stats.stacked_write_blocks += 1;
            return;
        }

        // Page miss (triggering miss).
        self.stats.misses += 1;
        let key = self.config.key_kind.key(req.pc.raw(), offset);

        if let Some(st_entry) = self.st.take(page) {
            self.metrics.singleton_promotions += 1;
            let mut predicted = Footprint::singleton(st_entry.offset as usize);
            predicted.insert(offset);
            self.fht.train(st_entry.key, predicted);
            self.warm_allocate(page, offset, predicted, st_entry.key);
            return;
        }

        match self.fht.predict(key) {
            Some(fp) if self.config.singleton_optimization && fp.is_singleton() => {
                self.metrics.singleton_bypasses += 1;
                self.stats.bypasses += 1;
                self.stats.offchip_read_blocks += 1;
                self.st.record(page, key, offset as u8);
            }
            Some(fp) => {
                let mut predicted = fp;
                predicted.insert(offset);
                self.warm_allocate(page, offset, predicted, key);
            }
            None => {
                self.warm_allocate(page, offset, Footprint::singleton(offset), key);
            }
        }
    }

    fn warm_writeback(&mut self, addr: PhysAddr) {
        let geom = self.config.geom;
        let page = geom.page_of(addr);
        let offset = geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        match self.tags.get(set, tag) {
            Some(entry) if entry.states.state(offset).is_present() => {
                entry.states.demand_write(offset);
                self.stats.stacked_write_blocks += 1;
            }
            _ => {
                self.stats.offchip_write_blocks += 1;
            }
        }
    }

    fn storage(&self) -> Vec<StorageItem> {
        let tag_bytes = self.config.pages() as u64 * TAG_ENTRY_BITS / 8;
        vec![
            StorageItem {
                name: "tag array",
                bytes: tag_bytes,
                latency_cycles: self.tag_latency,
            },
            StorageItem {
                name: "FHT",
                bytes: self.fht.storage_bytes(),
                latency_cycles: 2, // negligible and off the critical path
            },
            StorageItem {
                name: "Singleton Table",
                bytes: self.st.storage_bytes(),
                latency_cycles: 1,
            },
        ]
    }

    fn name(&self) -> &'static str {
        "Footprint"
    }

    fn prediction_counters(&self) -> Option<fc_cache::PredictionCounters> {
        Some(fc_cache::PredictionCounters {
            covered: self.metrics.covered_blocks,
            overpredicted: self.metrics.overpredicted_blocks,
            underpredicted: self.metrics.underpredicted_blocks,
            singleton_bypasses: self.metrics.singleton_bypasses,
            singleton_promotions: self.metrics.singleton_promotions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::{PageGeometry, Pc};

    fn read(pc: u64, addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(pc), PhysAddr::new(addr), 0)
    }

    fn small() -> FootprintCache {
        FootprintCache::new(FootprintCacheConfig::new(1 << 20))
    }

    const PAGE: u64 = 2048;

    #[test]
    fn cold_miss_fetches_only_demanded_block() {
        let mut c = small();
        let plan = c.access(read(0x400, 5 * PAGE + 7 * 64));
        assert!(!plan.hit && !plan.bypass);
        assert_eq!(plan.offchip_read_blocks(), 1);
        assert_eq!(plan.stacked_write_blocks(), 1);
    }

    #[test]
    fn footprint_learned_and_prefetched() {
        let mut c = small();
        let pc = 0x400;
        // Teach: page 100, offsets {2, 6, 9}, triggered at offset 2.
        for off in [2u64, 6, 9] {
            c.access(read(pc, 100 * PAGE + off * 64));
        }
        c.flush();
        // Apply: page 200, same code, same trigger offset.
        let miss = c.access(read(pc, 200 * PAGE + 2 * 64));
        assert!(!miss.hit);
        assert_eq!(miss.offchip_read_blocks(), 3, "whole footprint fetched");
        assert!(c.access(read(pc, 200 * PAGE + 6 * 64)).hit);
        assert!(c.access(read(pc, 200 * PAGE + 9 * 64)).hit);
    }

    #[test]
    fn underprediction_is_a_block_miss() {
        let mut c = small();
        let pc = 0x400;
        c.access(read(pc, 100 * PAGE)); // allocates with {0}
        let plan = c.access(read(pc, 100 * PAGE + 64)); // same page, new block
        assert!(!plan.hit);
        assert_eq!(plan.offchip_read_blocks(), 1);
        // After eviction, the metrics record one underprediction.
        c.flush();
        assert_eq!(c.metrics().underpredicted_blocks, 1);
        assert_eq!(c.metrics().covered_blocks, 1);
    }

    #[test]
    fn overpredictions_counted_at_eviction() {
        let mut c = small();
        let pc = 0x500;
        // Teach a 3-block footprint.
        for off in [0u64, 1, 2] {
            c.access(read(pc, 100 * PAGE + off * 64));
        }
        c.flush();
        // New page: footprint {0,1,2} fetched but only block 0 demanded.
        c.access(read(pc, 200 * PAGE));
        c.flush();
        assert_eq!(c.metrics().overpredicted_blocks, 2);
    }

    #[test]
    fn singleton_page_bypasses_allocation() {
        let mut c = small();
        let pc = 0x600;
        // Teach singleton: page with a single demanded block.
        c.access(read(pc, 100 * PAGE + 3 * 64));
        c.flush();
        // Same key on a fresh page: bypass, no allocation.
        let plan = c.access(read(pc, 200 * PAGE + 3 * 64));
        assert!(plan.bypass);
        assert_eq!(plan.offchip_read_blocks(), 1);
        assert_eq!(plan.stacked_write_blocks(), 0, "no fill on bypass");
        // The page is *not* resident.
        let again = c.access(read(pc, 200 * PAGE + 3 * 64));
        assert!(again.bypass || !again.hit);
        assert!(c.metrics().singleton_bypasses >= 1);
    }

    #[test]
    fn second_access_promotes_singleton_page() {
        let mut c = small();
        let pc = 0x600;
        c.access(read(pc, 100 * PAGE + 3 * 64));
        c.flush();
        let bypass = c.access(read(pc, 200 * PAGE + 3 * 64));
        assert!(bypass.bypass);
        // Second access, *different* offset: promotion.
        let promo = c.access(read(0x999, 200 * PAGE + 7 * 64));
        assert!(!promo.bypass);
        assert_eq!(promo.offchip_read_blocks(), 2, "fetches both known blocks");
        assert_eq!(c.metrics().singleton_promotions, 1);
        // Both blocks now resident.
        assert!(c.access(read(pc, 200 * PAGE + 3 * 64)).hit);
        assert!(c.access(read(pc, 200 * PAGE + 7 * 64)).hit);
        // And the FHT prediction is no longer singleton: a third page
        // allocates both blocks.
        let third = c.access(read(pc, 300 * PAGE + 3 * 64));
        assert!(!third.bypass);
        assert_eq!(third.offchip_read_blocks(), 2);
    }

    #[test]
    fn singleton_optimization_can_be_disabled() {
        let mut c = FootprintCache::new(
            FootprintCacheConfig::new(1 << 20).with_singleton_optimization(false),
        );
        let pc = 0x600;
        c.access(read(pc, 100 * PAGE + 3 * 64));
        c.flush();
        let plan = c.access(read(pc, 200 * PAGE + 3 * 64));
        assert!(!plan.bypass, "bypass disabled");
        assert_eq!(plan.stacked_write_blocks(), 1, "page allocated");
    }

    #[test]
    fn writeback_dirties_resident_block() {
        let mut c = small();
        c.access(read(0x400, 100 * PAGE));
        let wb = c.writeback(PhysAddr::new(100 * PAGE));
        assert!(wb.hit);
        assert_eq!(wb.stacked_write_blocks(), 1);
        // Eviction writes the dirty block off-chip.
        c.flush();
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().offchip_write_blocks, 1);
    }

    #[test]
    fn writeback_to_absent_page_goes_off_chip() {
        let mut c = small();
        let wb = c.writeback(PhysAddr::new(0x123456));
        assert!(!wb.hit);
        assert_eq!(wb.offchip_write_blocks(), 1);
    }

    #[test]
    fn density_histogram_tracks_demanded() {
        let mut c = small();
        for off in 0..5u64 {
            c.access(read(0x400, 100 * PAGE + off * 64));
        }
        c.flush();
        assert_eq!(c.stats().density.bins()[2], 1); // 5 blocks -> 4-7 bin
    }

    #[test]
    fn warm_path_matches_detailed_path() {
        // The warmup-only update path must leave the cache — tags,
        // replacement order, FHT, Singleton Table, and every
        // statistic — exactly where the plan-building path would.
        let mut detailed = small();
        let mut warm = small();
        // A mixed stream with reuse, a few hot PCs (so the FHT learns
        // and predicts), conflict evictions and dirty pages.
        let mut addr = 0x40u64;
        for i in 0..4_000u64 {
            addr = addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (addr >> 16) % (64 << 20);
            let pc = 0x400 + (addr % 7) * 4;
            if i % 3 == 0 {
                let _ = detailed.writeback(PhysAddr::new(a));
                warm.warm_writeback(PhysAddr::new(a));
            } else {
                let req = read(pc, a);
                let _ = detailed.access(req);
                warm.warm_access(req);
            }
        }
        assert_eq!(detailed.stats(), warm.stats());
        assert_eq!(detailed.metrics(), warm.metrics());
        // Replacement and predictor state must agree too: the same
        // probe stream produces identical plans afterwards.
        for probe in (0..64u64).map(|i| i * 0x10040) {
            let req = read(0x400, probe);
            assert_eq!(detailed.access(req), warm.access(req));
        }
    }

    #[test]
    fn storage_matches_table4() {
        // 64 MB: 0.40 MB tags, 4-cycle latency (Table 4).
        let c = FootprintCache::new(FootprintCacheConfig::new(64 << 20));
        let items = c.storage();
        let tags = &items[0];
        let mb = tags.bytes as f64 / (1 << 20) as f64;
        assert!((mb - 0.40).abs() < 0.01, "{mb} MB");
        assert_eq!(tags.latency_cycles, 4);
        // 512 MB: ~3.1 MB tags, 11 cycles.
        let c = FootprintCache::new(FootprintCacheConfig::new(512 << 20));
        let tags = &c.storage()[0];
        let mb = tags.bytes as f64 / (1 << 20) as f64;
        assert!((mb - 3.19).abs() < 0.1, "{mb} MB");
        assert_eq!(tags.latency_cycles, 11);
        // FHT 144 KB, ST 3 KB.
        assert_eq!(c.storage()[1].bytes, 144 * 1024);
        assert_eq!(c.storage()[2].bytes, 3 * 1024);
    }

    #[test]
    fn pc_only_key_still_learns() {
        let mut c = FootprintCache::new(
            FootprintCacheConfig::new(1 << 20).with_key_kind(crate::KeyKind::PcOnly),
        );
        let pc = 0x700;
        for off in [1u64, 4] {
            c.access(read(pc, 100 * PAGE + off * 64));
        }
        c.flush();
        let miss = c.access(read(pc, 200 * PAGE + 64));
        assert_eq!(miss.offchip_read_blocks(), 2);
    }

    #[test]
    fn four_kb_pages_supported() {
        let mut c = FootprintCache::new(
            FootprintCacheConfig::new(1 << 20).with_geometry(PageGeometry::new(4096)),
        );
        let plan = c.access(read(0x400, 4096 * 10 + 63 * 64));
        assert!(!plan.hit);
        assert!(c.access(read(0x400, 4096 * 10 + 63 * 64)).hit);
    }
}
