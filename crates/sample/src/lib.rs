//! `fc-sample` — sampled simulation with functional warmup and
//! statistical error bounds.
//!
//! Every grid point of the sweep layer used to replay its whole trace
//! in detailed timing mode, so sweep cost grew linearly with trace
//! length. This crate implements SMARTS-style systematic interval
//! sampling on top of the pod simulator's two execution modes:
//!
//! * **Functional warmup** ([`Simulation::step_functional`]) — the L2,
//!   the DRAM-cache tags, the MissMap, the footprint predictor and all
//!   replacement state are updated, but no DRAM or queue timing is
//!   simulated. A functional record costs a fraction of a detailed one.
//! * **Detailed intervals** — short windows replayed through the full
//!   timed path ([`Simulation::step`]); each interval's counters are
//!   captured as a [`SimReport`] delta between [`ReportSnapshot`]s.
//!
//! A [`SamplePlan`] drives the run: per sampling period, a *skip*
//! segment (records not replayed at all), a *functional warmup* window
//! that re-warms capacity state, a *detailed warmup* that re-warms
//! queues and MSHRs, and one *measured interval*. The per-interval
//! measurements aggregate into a [`SampledReport`]: point estimates
//! for IPC, MPKI, hit ratio and off-chip bandwidth with Student-t
//! confidence intervals, plus the measured/replayed record fractions
//! that quantify the speedup.
//!
//! # Examples
//!
//! ```
//! use fc_sample::{run_sampled, SamplePlan};
//! use fc_sim::{DesignSpec, SimConfig, Simulation};
//! use fc_trace::{TraceGenerator, WorkloadKind};
//!
//! let records: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 42)
//!     .take(12_000)
//!     .collect();
//! let mut sim = Simulation::new(SimConfig::small(), DesignSpec::footprint(64));
//! let plan = SamplePlan::exhaustive(2_000, 200, 200);
//! let report = run_sampled(&mut sim, &records, 2_000, 10_000, &plan);
//! assert_eq!(report.intervals.len(), 5);
//! assert!(report.ipc.mean > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod pit;
mod plan;
mod report;
mod runner;

pub use estimate::Estimate;
pub use pit::{assemble_report, build_base, fresh_at, run_interval, run_sampled_pit};
pub use plan::SamplePlan;
pub use report::{IntervalSample, SampledReport};
pub use runner::{run_sampled, run_sampled_stream};

// Re-exported so sampling callers can build simulations without extra
// deps (mirrors `fc_sweep`'s re-export discipline).
pub use fc_sim::{Checkpoint, DesignSpec, ReportSnapshot, SimConfig, SimReport, Simulation};
