//! Point estimates with Student-t confidence intervals.

use serde::{Deserialize, Serialize};

/// Two-sided 95% Student-t critical values for 1..=30 degrees of
/// freedom; beyond 30 the normal approximation (1.96) is used.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% t critical value for `df` degrees of freedom.
fn t95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => T95[(d - 1) as usize],
        _ => 1.96,
    }
}

/// A sampled metric: mean, spread, and a 95% confidence half-width.
///
/// With a single sample the half-width is infinite — one interval
/// carries no variance information — so downstream "within CI" checks
/// must always be paired with an absolute error bound.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Point estimate (mean of the per-interval values; for stratified
    /// plans, the sample-weighted mean of stratum means).
    pub mean: f64,
    /// Sample standard deviation of the per-interval values.
    pub stddev: f64,
    /// Half-width of the 95% confidence interval around `mean`.
    pub ci_half: f64,
    /// Number of measured intervals behind the estimate.
    pub n: u64,
}

impl Estimate {
    /// Estimates from independent per-interval samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "an estimate needs at least one sample");
        let n = samples.len() as u64;
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Self {
                mean,
                stddev: 0.0,
                ci_half: f64::INFINITY,
                n,
            };
        }
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let ci_half = t95(n - 1) * stddev / (n as f64).sqrt();
        Self {
            mean,
            stddev,
            ci_half,
            n,
        }
    }

    /// Stratified estimate: samples are grouped (e.g., by scenario
    /// phase), the mean is the sample-weighted mean of stratum means,
    /// and the variance combines within-stratum variances — sampling
    /// periods that alias a phase rotation stop inflating the CI.
    /// Strata with fewer than two samples fall back to the pooled
    /// estimate.
    ///
    /// # Panics
    ///
    /// Panics if every stratum is empty.
    pub fn stratified(strata: &[Vec<f64>]) -> Self {
        let filled: Vec<&Vec<f64>> = strata.iter().filter(|s| !s.is_empty()).collect();
        let pooled: Vec<f64> = filled.iter().flat_map(|s| s.iter().copied()).collect();
        if filled.len() < 2 || filled.iter().any(|s| s.len() < 2) {
            return Self::from_samples(&pooled);
        }
        let n: u64 = pooled.len() as u64;
        let mut mean = 0.0;
        let mut var_of_mean = 0.0;
        let mut min_df = u64::MAX;
        for s in &filled {
            let nj = s.len() as f64;
            let w = nj / n as f64;
            let mj = s.iter().sum::<f64>() / nj;
            let vj = s.iter().map(|x| (x - mj) * (x - mj)).sum::<f64>() / (nj - 1.0);
            mean += w * mj;
            var_of_mean += w * w * vj / nj;
            min_df = min_df.min(s.len() as u64 - 1);
        }
        let pooled_est = Self::from_samples(&pooled);
        Self {
            mean,
            stddev: pooled_est.stddev,
            ci_half: t95(min_df) * var_of_mean.sqrt(),
            n,
        }
    }

    /// Whether `value` lies within the confidence interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci_half
    }

    /// `ci_half / |mean|` — the estimate's relative precision (infinite
    /// for a zero mean).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci_half / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_have_zero_width() {
        let e = Estimate::from_samples(&[2.0; 10]);
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.stddev, 0.0);
        assert_eq!(e.ci_half, 0.0);
        assert!(e.contains(2.0));
        assert!(!e.contains(2.1));
    }

    #[test]
    fn single_sample_is_honest_about_ignorance() {
        let e = Estimate::from_samples(&[5.0]);
        assert_eq!(e.mean, 5.0);
        assert!(e.ci_half.is_infinite());
        assert!(e.contains(100.0), "an infinite CI contains everything");
    }

    #[test]
    fn known_interval() {
        // n=4, mean 2.5, s = sqrt(5/3): ci = 3.182 * s / 2.
        let e = Estimate::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((e.mean - 2.5).abs() < 1e-12);
        let s = (5.0f64 / 3.0).sqrt();
        assert!((e.stddev - s).abs() < 1e-12);
        assert!((e.ci_half - 3.182 * s / 2.0).abs() < 1e-9);
        assert!((e.relative_half_width() - e.ci_half / 2.5).abs() < 1e-12);
    }

    #[test]
    fn t_tightens_with_df_and_flattens() {
        assert!(t95(1) > t95(2));
        assert!(t95(30) > t95(31));
        assert_eq!(t95(31), 1.96);
        assert_eq!(t95(1_000), 1.96);
    }

    #[test]
    fn stratified_separates_phase_means() {
        // Two strata with distinct means but tiny within-stratum
        // variance: the stratified CI is much tighter than pooled.
        let a = vec![1.00, 1.01, 0.99, 1.00];
        let b = vec![2.00, 2.01, 1.99, 2.00];
        let pooled: Vec<f64> = a.iter().chain(&b).copied().collect();
        let strat = Estimate::stratified(&[a, b]);
        let plain = Estimate::from_samples(&pooled);
        assert!((strat.mean - 1.5).abs() < 1e-9);
        assert!((plain.mean - 1.5).abs() < 1e-9);
        assert!(strat.ci_half < plain.ci_half / 5.0);
    }

    #[test]
    fn thin_strata_fall_back_to_pooled() {
        let strat = Estimate::stratified(&[vec![1.0], vec![2.0, 3.0]]);
        let pooled = Estimate::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(strat, pooled);
    }
}
