//! Parallel-in-time execution of one sampled run.
//!
//! A skipping [`SamplePlan`] makes every measured period a pure
//! function of (base checkpoint, that period's records): the
//! sequential driver restores the base checkpoint before each period's
//! functional warmup, so no period observes another's state. This
//! module exploits that — the base is built once (the initial
//! functional-warmup window), then periods drain from a shared cursor
//! across worker threads, each worker cloning the base and replaying
//! only its own period. Interval samples land in per-period slots and
//! aggregate in plan order, so the report is **bit-identical** to the
//! sequential driver's at any worker count.
//!
//! Continuous (exhaustive) plans carry state through the whole region
//! and cannot be split in time; they delegate to the sequential
//! driver, as does `workers <= 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use fc_sim::{Checkpoint, DesignSpec, SimConfig, SimReport, Simulation};
use fc_trace::TraceRecord;

use crate::plan::SamplePlan;
use crate::report::{IntervalSample, SampledReport};
use crate::runner::{run_sampled, PlanLayout};

/// Runs a sampled simulation with periods dispatched across `workers`
/// threads. Requires a materialized slice (workers seek to arbitrary
/// record indices); the sweep layer falls back to the sequential
/// streaming path when the trace cache cannot hold the run.
///
/// The report is bit-identical to [`run_sampled`] on the same inputs,
/// for every `workers` value — both drivers compute the same pure
/// per-period function from the same base checkpoint and merge in
/// plan order.
///
/// # Panics
///
/// Panics if the plan is invalid, the slice is shorter than
/// `warmup + measured`, or the measured region yields no interval.
pub fn run_sampled_pit(
    sim: &mut Simulation,
    records: &[TraceRecord],
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
    workers: usize,
) -> SampledReport {
    assert!(
        records.len() as u64 >= warmup + measured,
        "slice holds {} records but the run needs {}",
        records.len(),
        warmup + measured
    );
    if plan.skip() == 0 || workers <= 1 {
        return run_sampled(sim, records, warmup, measured, plan);
    }
    let base = build_base(sim, records, warmup, measured, plan);
    let layout = PlanLayout::of(plan, warmup, measured);

    let periods = layout.periods as usize;
    fc_obs::metrics::counter("pit.intervals_dispatched").add(layout.periods);
    let slots: Vec<OnceLock<IntervalSample>> = (0..periods).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = workers.min(periods.max(1));
    std::thread::scope(|scope| {
        let (base, slots, cursor) = (&base, &slots, &cursor);
        for worker in 0..workers {
            scope.spawn(move || {
                fc_obs::trace::set_lane_name(&format!("pit-{worker}"));
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= periods {
                        break;
                    }
                    let sample = run_interval(base, records, warmup, measured, plan, k as u64);
                    slots[k].set(sample).expect("slot written once");
                }
                // Explicit: a scoped join may land before TLS
                // destructors run, so the trace buffer drains here.
                fc_obs::trace::flush_thread();
            });
        }
    });

    let intervals: Vec<IntervalSample> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every period ran"))
        .collect();
    assemble_report(plan, warmup, measured, intervals)
}

/// Replays the initial functional-warmup window on `sim` and captures
/// the base checkpoint every period of a skipping plan restores.
/// Functional replay never touches timing state, so the engine is
/// already quiescent when the checkpoint is captured — capture changes
/// nothing, which is what makes sequential and parallel runs agree
/// bit-for-bit.
pub fn build_base(
    sim: &mut Simulation,
    records: &[TraceRecord],
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
) -> Checkpoint {
    if let Err(e) = plan.validate() {
        panic!("invalid sample plan: {e}");
    }
    let layout = PlanLayout::of(plan, warmup, measured);
    let _span = fc_obs::trace::span("functional-warmup", "sample");
    let start = (warmup - layout.window) as usize;
    for r in &records[start..warmup as usize] {
        sim.step_functional(r);
    }
    sim.checkpoint()
}

/// One period's work: clone the base, replay the period's own
/// functional warmup, then detailed warmup, then the measured
/// interval — returning the interval's counter deltas. This is the
/// same pure function the sequential checkpointed driver computes,
/// so dispatching periods across workers cannot change the report.
/// `records` must be the same full slice `build_base` saw (absolute
/// indexing).
pub fn run_interval(
    base: &Checkpoint,
    records: &[TraceRecord],
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
    k: u64,
) -> IntervalSample {
    let layout = PlanLayout::of(plan, warmup, measured);
    let mut sim = base.to_sim();
    fc_obs::metrics::counter("pit.checkpoints_restored").inc();
    let warm_start = layout.warm_start(plan, warmup, k) as usize;
    let fw_end = warm_start + plan.functional_warmup as usize;
    let dw_end = fw_end + plan.detail_warmup as usize;
    let iv_end = dw_end + plan.interval as usize;
    {
        let _span = fc_obs::trace::span("functional-warmup", "sample");
        for r in &records[warm_start..fw_end] {
            sim.step_functional(r);
        }
    }
    {
        let _span = fc_obs::trace::span("detailed-warmup", "sample");
        sim.step_slice(&records[fw_end..dw_end]);
    }
    let snapshot = sim.snapshot();
    let delta = {
        let _span = fc_obs::trace::span("measured", "sample");
        sim.step_slice(&records[dw_end..iv_end]);
        SimReport::since(&sim, &snapshot)
    };
    IntervalSample::from_report(k, layout.interval_start(plan, warmup, k), &delta)
}

/// Merges per-period interval samples (in plan order) into the final
/// [`SampledReport`], with work accounting identical to the
/// sequential driver's — the report is a pure function of the plan,
/// the run sizing, and the samples, regardless of who computed them.
pub fn assemble_report(
    plan: &SamplePlan,
    warmup: u64,
    measured: u64,
    intervals: Vec<IntervalSample>,
) -> SampledReport {
    let layout = PlanLayout::of(plan, warmup, measured);
    let per_period = plan.functional_warmup + plan.detail_warmup + plan.interval;
    let replayed = layout.window + layout.periods * per_period;
    let detailed = layout.periods * (plan.detail_warmup + plan.interval);
    fc_obs::metrics::counter("sample.runs").inc();
    fc_obs::metrics::counter("sample.intervals").add(layout.periods);
    fc_obs::metrics::counter("sample.records.replayed").add(replayed);
    fc_obs::metrics::counter("sample.records.detailed").add(detailed);
    fc_obs::metrics::counter("sample.records.skipped").add(warmup + measured - replayed);
    SampledReport::aggregate(*plan, warmup + measured, replayed, detailed, intervals)
}

/// Reconstructs, from scratch, the engine state a parallel-in-time
/// worker holds at the start of period `k`'s detailed warmup: a fresh
/// simulation that replays only the functional-warmup prefix (the
/// initial window, a checkpoint round-trip, then period `k`'s own
/// functional warmup). Useful for spot-checking a single interval
/// without running the periods before it.
///
/// # Panics
///
/// Panics if `k` is outside the plan's measured periods or the slice
/// is shorter than `warmup + measured`.
pub fn fresh_at(
    config: SimConfig,
    design: DesignSpec,
    records: &[TraceRecord],
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
    k: u64,
) -> Simulation {
    assert!(
        records.len() as u64 >= warmup + measured,
        "slice holds {} records but the run needs {}",
        records.len(),
        warmup + measured
    );
    let layout = PlanLayout::of(plan, warmup, measured);
    assert!(
        k < layout.periods,
        "period {k} out of range ({} measured periods)",
        layout.periods
    );
    let mut sim = Simulation::new(config, design);
    let start = (warmup - layout.window) as usize;
    for r in &records[start..warmup as usize] {
        sim.step_functional(r);
    }
    let mut sim = if plan.skip() > 0 {
        // The same checkpoint round-trip every worker performs.
        sim.checkpoint().to_sim()
    } else {
        sim
    };
    let warm_start = layout.warm_start(plan, warmup, k) as usize;
    let fw_end = warm_start + plan.functional_warmup as usize;
    for r in &records[warm_start..fw_end] {
        sim.step_functional(r);
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_trace::{TraceGenerator, WorkloadKind};

    fn records(n: usize) -> Vec<TraceRecord> {
        TraceGenerator::new(WorkloadKind::WebSearch, 4, 7)
            .take(n)
            .collect()
    }

    fn sim() -> Simulation {
        Simulation::new(SimConfig::small(), DesignSpec::footprint(64))
    }

    // A skipping plan: period 4000, fw 600, dw 200, interval 200 →
    // skip() = 3000 > 0, so the checkpointed/parallel path engages.
    fn skipping_plan() -> SamplePlan {
        SamplePlan::new(4_000, 600, 200, 200).with_warmup_window(2_000)
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let rs = records(30_000);
        let plan = skipping_plan();
        let seq = run_sampled(&mut sim(), &rs, 6_000, 24_000, &plan);
        for workers in [2, 3, 8] {
            let pit = run_sampled_pit(&mut sim(), &rs, 6_000, 24_000, &plan, workers);
            assert_eq!(seq, pit, "{workers} workers diverged");
        }
    }

    #[test]
    fn single_worker_delegates_to_sequential() {
        let rs = records(30_000);
        let plan = skipping_plan();
        let seq = run_sampled(&mut sim(), &rs, 6_000, 24_000, &plan);
        let one = run_sampled_pit(&mut sim(), &rs, 6_000, 24_000, &plan, 1);
        assert_eq!(seq, one);
    }

    #[test]
    fn exhaustive_plans_delegate_to_sequential() {
        let rs = records(12_000);
        let plan = SamplePlan::exhaustive(2_000, 200, 200);
        let seq = run_sampled(&mut sim(), &rs, 2_000, 10_000, &plan);
        let pit = run_sampled_pit(&mut sim(), &rs, 2_000, 10_000, &plan, 4);
        assert_eq!(seq, pit);
        assert_eq!(pit.replayed_records, 12_000);
    }

    #[test]
    fn fresh_at_matches_worker_state() {
        let rs = records(30_000);
        let plan = skipping_plan();
        let layout = PlanLayout::of(&plan, 6_000, 24_000);
        // Build the base the way the parallel driver does, run period
        // k's functional warmup, and compare against fresh_at.
        let mut s = sim();
        let start = (6_000 - layout.window) as usize;
        for r in &rs[start..6_000] {
            s.step_functional(r);
        }
        let base = s.checkpoint();
        for k in [0u64, 2, 5] {
            let mut worker = base.to_sim();
            let ws = layout.warm_start(&plan, 6_000, k) as usize;
            for r in &rs[ws..ws + plan.functional_warmup as usize] {
                worker.step_functional(r);
            }
            let fresh = fresh_at(
                SimConfig::small(),
                DesignSpec::footprint(64),
                &rs,
                6_000,
                24_000,
                &plan,
                k,
            );
            let zero = fc_sim::ReportSnapshot::zero();
            assert_eq!(
                SimReport::since(&worker, &zero),
                SimReport::since(&fresh, &zero),
                "fresh_at({k}) diverged from worker state"
            );
        }
    }
}
