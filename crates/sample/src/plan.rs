//! Sampling plans: how a run is divided into skipped, functionally
//! warmed, and detailed records.

use serde::{Deserialize, Serialize};

/// A systematic interval-sampling plan.
///
/// The run's measured region is divided into periods of
/// [`period`](Self::period) records; each period is replayed as four
/// consecutive segments:
///
/// 1. **skip** (`period - functional_warmup - detail_warmup -
///    interval` records) — not replayed at all;
/// 2. **functional warmup** — replayed through
///    [`Simulation::step_functional`](fc_sim::Simulation::step_functional):
///    caches, MissMap, predictor and replacement state update, no
///    timing;
/// 3. **detailed warmup** — replayed through the full timed path but
///    excluded from measurement (re-warms DRAM queues and MSHRs);
/// 4. **measured interval** — the detailed records whose counter
///    deltas become one sample.
///
/// The run's initial warmup region is handled the same way once:
/// everything except the trailing [`warmup_window`](Self::warmup_window)
/// records is skipped, and the window is replayed functionally.
///
/// Plans with `functional_warmup + detail_warmup + interval == period`
/// and `warmup_window >= warmup` skip nothing: every record is
/// replayed, detailed timing is simply confined to the intervals. Such
/// *exhaustive-warm* plans have no state-staleness bias at all and are
/// what the accuracy tests use; skipping buys the large speedups at
/// realistic trace lengths, where the warmup region dwarfs the cache
/// turnover the functional window must cover.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SamplePlan {
    /// Records per sampling period (one measured interval per period).
    pub period: u64,
    /// Functional-warmup records per period, replayed (state updates,
    /// no timing) directly before the detailed segment.
    pub functional_warmup: u64,
    /// Detailed, timed but unmeasured records per period, re-warming
    /// queue/MSHR state before each measured interval.
    pub detail_warmup: u64,
    /// Detailed measured records per interval.
    pub interval: u64,
    /// Functional records replayed at the end of the run's initial
    /// warmup region; the rest of the warmup is skipped. Use
    /// `u64::MAX` to replay the whole warmup functionally.
    pub warmup_window: u64,
    /// Round-robin strata count (≥ 1). Interval `k` lands in stratum
    /// `k % strata`; estimates combine stratum means, which keeps
    /// phase-rotating scenarios from aliasing with the sampling period.
    pub strata: u32,
}

impl SamplePlan {
    /// Functional records per MB of stacked capacity that the
    /// auto-derived plans budget for state warming — calibrated so a
    /// page-organized cache's contents converge within two windows
    /// under the scale-out workloads' miss rates. Designs with
    /// longer-memory metadata scale this up via
    /// `DesignSpec::warm_scale` (see
    /// [`for_run_scaled`](Self::for_run_scaled)).
    pub const WARM_RECORDS_PER_MB: u64 = 12_000;

    /// Functional-warming floor covering the capacity-independent
    /// state everyone shares (the pod's L2 turns over in well under
    /// this many records).
    pub const WARM_RECORDS_FLOOR: u64 = 100_000;

    /// Measured intervals the auto-derived plans aim for.
    pub const TARGET_INTERVALS: u64 = 8;

    /// Replayed-fraction threshold beyond which
    /// [`for_run_scaled`](Self::for_run_scaled) stops skipping and
    /// falls back to an exhaustive-warm plan: if warming would replay
    /// this much of the trace anyway, the unbiased plan costs little
    /// more.
    pub const EXHAUSTIVE_FALLBACK_FRACTION: f64 = 0.5;

    /// A plan with an explicit per-period skip. `warmup_window`
    /// defaults to "replay the whole warmup"; tighten it with
    /// [`with_warmup_window`](Self::with_warmup_window).
    ///
    /// # Panics
    ///
    /// Panics if the segments do not fit the period or the interval is
    /// empty (see [`validate`](Self::validate)).
    pub fn new(period: u64, functional_warmup: u64, detail_warmup: u64, interval: u64) -> Self {
        let plan = Self {
            period,
            functional_warmup,
            detail_warmup,
            interval,
            warmup_window: u64::MAX,
            strata: 1,
        };
        if let Err(e) = plan.validate() {
            panic!("invalid sample plan: {e}");
        }
        plan
    }

    /// An exhaustive-warm plan: no record is skipped — the period is
    /// entirely functional except for the detailed warmup + interval
    /// tail. Zero state-staleness bias; the speedup is bounded by the
    /// functional/detailed cost ratio.
    ///
    /// # Panics
    ///
    /// Panics if `detail_warmup + interval > period` or the interval is
    /// empty.
    pub fn exhaustive(period: u64, detail_warmup: u64, interval: u64) -> Self {
        assert!(
            detail_warmup + interval <= period,
            "detailed segments ({}) exceed the period ({period})",
            detail_warmup + interval
        );
        Self::new(
            period,
            period - detail_warmup - interval,
            detail_warmup,
            interval,
        )
    }

    /// [`for_run_scaled`](Self::for_run_scaled) with a warm scale of 1
    /// (a plain page-organized cache).
    pub fn for_run(warmup: u64, measured: u64, capacity_mb: u64) -> Self {
        Self::for_run_scaled(warmup, measured, capacity_mb, 1)
    }

    /// Derives a plan for a run of `warmup + measured` records on a
    /// design of `capacity_mb` whose state memory is `warm_scale`
    /// times a plain page cache's (`fc_sim::DesignSpec::warm_scale`):
    ///
    /// * the state-warming unit is `turnover = max(WARM_RECORDS_PER_MB
    ///   × capacity × warm_scale, WARM_RECORDS_FLOOR)` records;
    /// * the initial warmup replays its trailing `2 × turnover`
    ///   records functionally and skips the rest;
    /// * each of the [`TARGET_INTERVALS`](Self::TARGET_INTERVALS)
    ///   periods warms `2 × turnover / 3` records functionally before
    ///   its detailed segment;
    /// * if all that would replay more than half the trace, the plan
    ///   falls back to exhaustive warming (zero staleness bias, the
    ///   trace is too short to skip profitably).
    ///
    /// Speedup therefore grows with trace length at fixed capacity —
    /// the warm windows are a fixed cost — which is exactly the
    /// long-trace regime sampling exists for.
    pub fn for_run_scaled(warmup: u64, measured: u64, capacity_mb: u64, warm_scale: u64) -> Self {
        let turnover =
            (Self::WARM_RECORDS_PER_MB * capacity_mb * warm_scale).max(Self::WARM_RECORDS_FLOOR);
        let period = (measured / Self::TARGET_INTERVALS).max(512);
        let interval = (period / 8).clamp(128, 8_192).min(period / 4).max(1);
        let detail_warmup = ((interval / 2).max(64)).min(period / 2);
        let budget = period - detail_warmup - interval;
        let functional_warmup = budget.min((2 * turnover / 3).max(period / 8));
        // Exhaustive fallback: every record is replayed anyway, so
        // widening the measured intervals costs almost nothing and
        // buys frame coverage (the mean over intervals tracks the
        // full-region aggregate more closely).
        let exhaustive = || {
            let wide = (period / 8).max(interval).min(period - detail_warmup);
            Self::exhaustive(period, detail_warmup, wide)
        };
        // If the run's own warmup region cannot hold the state-memory
        // window, this capacity cannot be warmed by skipping at all —
        // replay everything rather than sample with a cold cache.
        if 2 * turnover > warmup {
            return exhaustive();
        }
        let plan = Self {
            period,
            functional_warmup,
            detail_warmup,
            interval,
            warmup_window: 2 * turnover,
            strata: 1,
        };
        debug_assert!(plan.validate().is_ok(), "auto plan invalid: {plan:?}");
        if plan.replayed_fraction(warmup, measured) > Self::EXHAUSTIVE_FALLBACK_FRACTION {
            return exhaustive();
        }
        plan
    }

    /// Sets the initial-warmup functional window (builder-style).
    pub fn with_warmup_window(mut self, warmup_window: u64) -> Self {
        self.warmup_window = warmup_window;
        self
    }

    /// Sets the strata count (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `strata` is zero.
    pub fn with_strata(mut self, strata: u32) -> Self {
        assert!(strata >= 1, "strata must be at least 1");
        self.strata = strata;
        self
    }

    /// Checks the plan's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == 0 {
            return Err("measured interval must be at least 1 record".into());
        }
        if self.strata == 0 {
            return Err("strata must be at least 1".into());
        }
        let replayed = self.functional_warmup + self.detail_warmup + self.interval;
        if replayed > self.period {
            return Err(format!(
                "functional_warmup + detail_warmup + interval = {replayed} \
                 exceeds the period {}",
                self.period
            ));
        }
        Ok(())
    }

    /// Records per period that are not replayed at all.
    pub fn skip(&self) -> u64 {
        self.period - self.functional_warmup - self.detail_warmup - self.interval
    }

    /// Measured intervals a region of `measured` records yields.
    pub fn intervals_in(&self, measured: u64) -> u64 {
        measured / self.period
    }

    /// Fraction of a `warmup + measured` run that is replayed at all
    /// (functionally or detailed) — the work bound the speedup comes
    /// from.
    pub fn replayed_fraction(&self, warmup: u64, measured: u64) -> f64 {
        let total = warmup + measured;
        if total == 0 {
            return 0.0;
        }
        let per_period = self.functional_warmup + self.detail_warmup + self.interval;
        let replayed = self.warmup_window.min(warmup) + self.intervals_in(measured) * per_period;
        replayed as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_plans_skip_nothing() {
        let p = SamplePlan::exhaustive(2_000, 200, 200);
        assert_eq!(p.skip(), 0);
        assert_eq!(p.functional_warmup, 1_600);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn segments_must_fit_the_period() {
        let p = SamplePlan {
            period: 100,
            functional_warmup: 80,
            detail_warmup: 15,
            interval: 10,
            warmup_window: u64::MAX,
            strata: 1,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid sample plan")]
    fn constructor_rejects_oversized_segments() {
        SamplePlan::new(100, 80, 15, 10);
    }

    #[test]
    fn auto_plans_are_valid_across_scales() {
        for (warmup, measured) in [
            (2_000u64, 2_000u64),
            (100_000, 80_000),
            (2_460_000, 1_380_000),
        ] {
            for capacity in [16u64, 64, 256, 512] {
                let p = SamplePlan::for_run(warmup, measured, capacity);
                assert!(p.validate().is_ok(), "{p:?}");
                assert!(p.intervals_in(measured) >= 1, "{p:?}");
            }
        }
    }

    #[test]
    fn long_runs_replay_a_small_fraction() {
        // In the long-trace regime (trace length >> capacity-scaled
        // turnover), the auto plan must replay at most a fifth of the
        // trace — the ≥5x work bound of the sampled subsystem's
        // acceptance criteria.
        let p = SamplePlan::for_run(400_000, 4_000_000, 8);
        let f = p.replayed_fraction(400_000, 4_000_000);
        assert!(
            f <= 0.20,
            "auto plan replays {:.1}% of the trace",
            f * 100.0
        );

        // Longer-memory designs (warm scale 2) still clear the bound
        // at a longer trace.
        let p = SamplePlan::for_run_scaled(400_000, 12_000_000, 8, 2);
        let f = p.replayed_fraction(400_000, 12_000_000);
        assert!(
            f <= 0.20,
            "auto plan replays {:.1}% of the trace",
            f * 100.0
        );
    }

    #[test]
    fn short_runs_fall_back_to_exhaustive_warming() {
        // A 512 MB design on a full-scale trace: the warm windows would
        // dominate the run, so the auto plan refuses to skip (zero
        // staleness bias) instead of sampling badly.
        let p = SamplePlan::for_run(2_460_000, 1_380_000, 512);
        assert_eq!(p.skip(), 0, "short-trace plans must not skip: {p:?}");
        assert_eq!(p.warmup_window, u64::MAX);
        assert!((p.replayed_fraction(2_460_000, 1_380_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_less_designs_use_the_floor_window() {
        // warm_scale 0 (baseline/ideal): only the L2 needs warming.
        let p = SamplePlan::for_run_scaled(1_000_000, 4_000_000, 64, 0);
        assert_eq!(p.warmup_window, 2 * SamplePlan::WARM_RECORDS_FLOOR);
        assert!(p.skip() > 0);
    }

    #[test]
    fn intervals_and_fractions() {
        let p = SamplePlan::exhaustive(1_000, 100, 100);
        assert_eq!(p.intervals_in(5_500), 5);
        let f = p.replayed_fraction(1_000, 5_000);
        assert!((f - 1.0).abs() < 1e-12, "exhaustive replays everything");
    }
}
