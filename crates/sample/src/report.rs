//! Sampled measurement reports: per-interval samples and their
//! aggregation into estimates.

use serde::{Deserialize, Serialize};

use fc_sim::SimReport;

use crate::estimate::Estimate;
use crate::plan::SamplePlan;

/// One measured interval's counter deltas (a compact projection of the
/// interval's [`SimReport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Interval ordinal within the run (0-based).
    pub index: u64,
    /// Absolute record index where the measured slice began.
    pub start_record: u64,
    /// Instructions committed in the interval (all cores).
    pub insts: u64,
    /// Cycles elapsed in the interval.
    pub cycles: u64,
    /// Demand accesses reaching the DRAM-cache level (= L2 misses).
    pub accesses: u64,
    /// DRAM-cache hits in the interval.
    pub hits: u64,
    /// DRAM-cache misses in the interval.
    pub misses: u64,
    /// Off-chip traffic in bytes over the interval.
    pub offchip_bytes: u64,
}

impl IntervalSample {
    /// Projects an interval's report delta into a sample.
    pub fn from_report(index: u64, start_record: u64, delta: &SimReport) -> Self {
        Self {
            index,
            start_record,
            insts: delta.insts,
            cycles: delta.cycles,
            accesses: delta.cache.accesses,
            hits: delta.cache.hits,
            misses: delta.cache.misses,
            offchip_bytes: delta.offchip_bytes(),
        }
    }

    /// Instructions per cycle over the interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// DRAM-level misses per kilo-instruction over the interval.
    pub fn mpki(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.accesses as f64 * 1000.0 / self.insts as f64
        }
    }

    /// DRAM-cache hit ratio over the interval.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Off-chip bytes per instruction over the interval.
    pub fn offchip_bytes_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.offchip_bytes as f64 / self.insts as f64
        }
    }
}

/// Everything a sampled run measures: the interval samples, their
/// aggregation into confidence-bounded estimates, and the work
/// accounting that quantifies the speedup over a full detailed run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SampledReport {
    /// The plan that produced this report.
    pub plan: SamplePlan,
    /// Records the equivalent full run would replay (warmup + measured).
    pub total_records: u64,
    /// Records actually replayed (functional + detailed).
    pub replayed_records: u64,
    /// Records replayed through the detailed timed path.
    pub detailed_records: u64,
    /// Measured records (sum of interval lengths).
    pub measured_records: u64,
    /// The per-interval samples, in run order.
    pub intervals: Vec<IntervalSample>,
    /// Total instructions over the measured intervals.
    pub insts: u64,
    /// Total cycles over the measured intervals.
    pub cycles: u64,
    /// IPC estimate (pod throughput, Section 5.4's metric).
    pub ipc: Estimate,
    /// Misses-per-kilo-instruction estimate.
    pub mpki: Estimate,
    /// DRAM-cache hit-ratio estimate.
    pub hit_ratio: Estimate,
    /// Off-chip bytes-per-instruction estimate (bandwidth demand).
    pub offchip_bytes_per_inst: Estimate,
}

impl SampledReport {
    /// Aggregates interval samples under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty (a sampled run must measure
    /// something).
    pub fn aggregate(
        plan: SamplePlan,
        total_records: u64,
        replayed_records: u64,
        detailed_records: u64,
        intervals: Vec<IntervalSample>,
    ) -> Self {
        assert!(
            !intervals.is_empty(),
            "a sampled run must measure at least one interval \
             (measured region shorter than the plan period?)"
        );
        let estimate = |f: &dyn Fn(&IntervalSample) -> f64| -> Estimate {
            let xs: Vec<f64> = intervals.iter().map(f).collect();
            let mut e = if plan.strata <= 1 {
                Estimate::from_samples(&xs)
            } else {
                let mut strata: Vec<Vec<f64>> = vec![Vec::new(); plan.strata as usize];
                for (k, s) in intervals.iter().enumerate() {
                    strata[k % plan.strata as usize].push(f(s));
                }
                Estimate::stratified(&strata)
            };
            // Conservative drift inflation: a run still converging (a
            // cache filling across the measured region) offsets the
            // sampled frame from the full-run aggregate systematically
            // — a component the iid Student-t term cannot see. The
            // first-half/second-half mean gap is that drift's
            // first-order signature; folding half of it into the
            // half-width makes the interval a total-uncertainty bound
            // (it vanishes for stationary runs).
            if xs.len() >= 4 && e.ci_half.is_finite() {
                let (a, b) = xs.split_at(xs.len() / 2);
                let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
                e.ci_half += (mean(a) - mean(b)).abs() / 2.0;
            }
            e
        };
        let ipc = estimate(&IntervalSample::ipc);
        let mpki = estimate(&IntervalSample::mpki);
        let hit_ratio = estimate(&IntervalSample::hit_ratio);
        let offchip_bytes_per_inst = estimate(&IntervalSample::offchip_bytes_per_inst);
        Self {
            plan,
            total_records,
            replayed_records,
            detailed_records,
            measured_records: intervals.len() as u64 * plan.interval,
            insts: intervals.iter().map(|s| s.insts).sum(),
            cycles: intervals.iter().map(|s| s.cycles).sum(),
            intervals,
            ipc,
            mpki,
            hit_ratio,
            offchip_bytes_per_inst,
        }
    }

    /// Fraction of the equivalent full run that was measured.
    pub fn measured_fraction(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.measured_records as f64 / self.total_records as f64
        }
    }

    /// Fraction of the equivalent full run that was replayed at all —
    /// the deterministic work bound behind the wall-clock speedup.
    pub fn replayed_fraction(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.replayed_records as f64 / self.total_records as f64
        }
    }

    /// Ratio-of-sums throughput over all measured intervals (the
    /// pooled counterpart of the [`ipc`](Self::ipc) estimate's
    /// mean-of-ratios).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(index: u64, insts: u64, cycles: u64, hits: u64, misses: u64) -> IntervalSample {
        IntervalSample {
            index,
            start_record: index * 1000,
            insts,
            cycles,
            accesses: hits + misses,
            hits,
            misses,
            offchip_bytes: misses * 64,
        }
    }

    #[test]
    fn sample_rates() {
        let s = sample(0, 2000, 4000, 30, 10);
        assert_eq!(s.ipc(), 0.5);
        assert_eq!(s.mpki(), 20.0);
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(s.offchip_bytes_per_inst(), 640.0 / 2000.0);
    }

    #[test]
    fn zero_guards() {
        let z = IntervalSample {
            index: 0,
            start_record: 0,
            insts: 0,
            cycles: 0,
            accesses: 0,
            hits: 0,
            misses: 0,
            offchip_bytes: 0,
        };
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.mpki(), 0.0);
        assert_eq!(z.hit_ratio(), 0.0);
        assert_eq!(z.offchip_bytes_per_inst(), 0.0);
    }

    #[test]
    fn aggregation_sums_and_estimates() {
        let plan = SamplePlan::exhaustive(1000, 100, 100);
        let report = SampledReport::aggregate(
            plan,
            10_000,
            10_000,
            2_000,
            vec![
                sample(0, 1000, 2000, 30, 10),
                sample(1, 1000, 2500, 28, 12),
                sample(2, 1000, 2000, 30, 10),
            ],
        );
        assert_eq!(report.insts, 3000);
        assert_eq!(report.cycles, 6500);
        assert_eq!(report.measured_records, 300);
        assert!((report.measured_fraction() - 0.03).abs() < 1e-12);
        assert_eq!(report.replayed_fraction(), 1.0);
        assert_eq!(report.ipc.n, 3);
        assert!(report.ipc.mean > 0.0 && report.ipc.ci_half.is_finite());
        assert!(report.throughput() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn empty_runs_are_rejected() {
        let plan = SamplePlan::exhaustive(1000, 100, 100);
        SampledReport::aggregate(plan, 0, 0, 0, Vec::new());
    }

    #[test]
    fn stratified_aggregation_uses_round_robin() {
        let plan = SamplePlan::exhaustive(1000, 100, 100).with_strata(2);
        // Alternating fast/slow intervals: stratified CI collapses.
        let intervals: Vec<IntervalSample> = (0..8)
            .map(|k| {
                if k % 2 == 0 {
                    sample(k, 1000, 1000, 40, 0)
                } else {
                    sample(k, 1000, 2000, 20, 20)
                }
            })
            .collect();
        let strat = SampledReport::aggregate(plan, 8_000, 8_000, 1_600, intervals.clone());
        let plain = SampledReport::aggregate(plan.with_strata(1), 8_000, 8_000, 1_600, intervals);
        assert!((strat.ipc.mean - plain.ipc.mean).abs() < 1e-12);
        assert!(strat.ipc.ci_half < plain.ipc.ci_half / 10.0);
    }
}
