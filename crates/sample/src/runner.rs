//! The sampled-run driver: walks a record stream through skip /
//! functional / detailed segments and measures interval deltas.

use fc_sim::{SimReport, Simulation};
use fc_trace::TraceRecord;

use crate::plan::SamplePlan;
use crate::report::{IntervalSample, SampledReport};

/// A record source the driver can skip within. The slice source skips
/// by index arithmetic (free); the streaming source must synthesize
/// skipped records but never replays them. Both walk the identical
/// record sequence, so the two paths produce bit-identical reports.
trait Source {
    fn skip(&mut self, n: u64);
    fn replay(&mut self, n: u64, step: &mut dyn FnMut(&TraceRecord));

    /// Replays `n` records through the detailed engine. Sources that
    /// can expose contiguous record slices override this to hand the
    /// engine whole batches ([`Simulation::step_slice`]); the default
    /// steps one record at a time. Both are bit-identical.
    fn replay_detailed(&mut self, n: u64, sim: &mut Simulation) {
        self.replay(n, &mut |r| sim.step(r));
    }
}

/// Per-period record layout of a plan over a run, shared by the
/// sequential driver and the parallel-in-time dispatcher so both walk
/// byte-identical record positions.
///
/// Each period is `[lead skip | functional warmup | detailed warmup |
/// measured interval | trail skip]`, with the interval *centered* in
/// its period as far as the warmup segments allow.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PlanLayout {
    /// Functional records replayed at the end of the initial warmup.
    pub window: u64,
    /// Skipped records at the start of each period.
    pub lead: u64,
    /// Skipped records at the end of each period.
    pub trail: u64,
    /// Measured intervals (periods) in the run.
    pub periods: u64,
}

impl PlanLayout {
    pub fn of(plan: &SamplePlan, warmup: u64, measured: u64) -> Self {
        let warm = plan.functional_warmup + plan.detail_warmup;
        let lead = ((plan.period - plan.interval) / 2).saturating_sub(warm);
        Self {
            window: plan.warmup_window.min(warmup),
            lead,
            trail: plan.period - lead - warm - plan.interval,
            periods: plan.intervals_in(measured),
        }
    }

    /// Absolute record index where period `k`'s functional warmup
    /// starts (= where a checkpointed period resumes replaying).
    pub fn warm_start(&self, plan: &SamplePlan, warmup: u64, k: u64) -> u64 {
        warmup + k * plan.period + self.lead
    }

    /// Absolute record index of period `k`'s first *measured* record.
    pub fn interval_start(&self, plan: &SamplePlan, warmup: u64, k: u64) -> u64 {
        self.warm_start(plan, warmup, k) + plan.functional_warmup + plan.detail_warmup
    }
}

struct SliceSource<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl Source for SliceSource<'_> {
    fn skip(&mut self, n: u64) {
        self.pos += n as usize;
    }

    fn replay(&mut self, n: u64, step: &mut dyn FnMut(&TraceRecord)) {
        let end = self.pos + n as usize;
        for r in &self.records[self.pos..end] {
            step(r);
        }
        self.pos = end;
    }

    fn replay_detailed(&mut self, n: u64, sim: &mut Simulation) {
        let end = self.pos + n as usize;
        sim.step_slice(&self.records[self.pos..end]);
        self.pos = end;
    }
}

struct IterSource<I> {
    records: I,
}

impl<I: Iterator<Item = TraceRecord>> Source for IterSource<I> {
    fn skip(&mut self, n: u64) {
        for _ in 0..n {
            self.records.next().expect("record stream ended early");
        }
    }

    fn replay(&mut self, n: u64, step: &mut dyn FnMut(&TraceRecord)) {
        for _ in 0..n {
            let r = self.records.next().expect("record stream ended early");
            step(&r);
        }
    }
}

/// Runs a sampled simulation over a materialized record slice
/// (covering at least `warmup + measured` records). Skipped records
/// cost nothing — the slice is jumped over — so this is the fast path
/// the sweep layer uses whenever the trace cache holds the run.
///
/// # Panics
///
/// Panics if the plan is invalid, the slice is shorter than
/// `warmup + measured`, or the measured region yields no interval.
pub fn run_sampled(
    sim: &mut Simulation,
    records: &[TraceRecord],
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
) -> SampledReport {
    assert!(
        records.len() as u64 >= warmup + measured,
        "slice holds {} records but the run needs {}",
        records.len(),
        warmup + measured
    );
    let mut source = SliceSource { records, pos: 0 };
    drive(sim, &mut source, warmup, measured, plan)
}

/// Streaming counterpart of [`run_sampled`] for runs too long to
/// materialize: skipped records are synthesized and discarded (the
/// generator must advance), so the speedup is smaller but the report
/// is bit-identical to the slice path's.
pub fn run_sampled_stream<I>(
    sim: &mut Simulation,
    records: I,
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
) -> SampledReport
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut source = IterSource {
        records: records.into_iter(),
    };
    drive(sim, &mut source, warmup, measured, plan)
}

fn drive(
    sim: &mut Simulation,
    source: &mut dyn Source,
    warmup: u64,
    measured: u64,
    plan: &SamplePlan,
) -> SampledReport {
    if let Err(e) = plan.validate() {
        panic!("invalid sample plan: {e}");
    }
    let mut replayed = 0u64;
    let mut detailed = 0u64;

    // Initial warmup region: skip everything except the trailing
    // functional window.
    let layout = PlanLayout::of(plan, warmup, measured);
    source.skip(warmup - layout.window);
    {
        let _span = fc_obs::trace::span("functional-warmup", "sample");
        source.replay(layout.window, &mut |r| sim.step_functional(r));
    }
    replayed += layout.window;

    // Measured region: one interval per period, *centered* in its
    // period (as far as the warmup segments allow). Centering makes the
    // interval midpoints' mean coincide with the region midpoint, so a
    // linear trend across the region (a cache still converging) cannot
    // bias the estimates — end-of-period placement would sample half a
    // period late on average.
    //
    // Two execution modes, chosen by the plan:
    //
    // * **Continuous** (`plan.skip() == 0`, exhaustive plans): state is
    //   carried straight through — every record runs detailed, so the
    //   measured intervals tile the region with zero staleness.
    // * **Checkpointed** (skipping plans): a base checkpoint is captured
    //   right after the warmup window — while the engine is still
    //   quiescent from functional replay, so capture changes nothing —
    //   and every period restores it before replaying its own
    //   functional warmup. Each period is thus a pure function of
    //   (base, period records): it no longer sees the detailed/warmed
    //   state of earlier periods, which is exactly what lets the
    //   parallel-in-time dispatcher run periods on different workers
    //   and still produce bit-identical reports. The per-period
    //   functional warmup was always sized (to the design's turnover)
    //   to repair staleness across the skipped gap; restoring the base
    //   makes that the *only* warmth source, identically in sequential
    //   and parallel runs.
    let periods = layout.periods;
    let mut intervals = Vec::with_capacity(periods as usize);
    let base = if plan.skip() > 0 {
        Some(sim.checkpoint())
    } else {
        None
    };
    for k in 0..periods {
        source.skip(layout.lead);
        if let Some(base) = &base {
            sim.restore(base);
            fc_obs::metrics::counter("sample.checkpoints_restored").inc();
        }
        {
            let _span = fc_obs::trace::span("functional-warmup", "sample");
            source.replay(plan.functional_warmup, &mut |r| sim.step_functional(r));
        }
        {
            let _span = fc_obs::trace::span("detailed-warmup", "sample");
            source.replay_detailed(plan.detail_warmup, sim);
        }
        // Snapshots bound the interval *without* draining: forcing the
        // MSHRs empty at the boundaries would start every interval from
        // an artificial contention-free state (inflating IPC for
        // bandwidth-bound designs); with free-running boundaries the
        // in-flight work entering and leaving the interval cancels in
        // expectation.
        let snapshot = sim.snapshot();
        let delta = {
            let _span = fc_obs::trace::span("measured", "sample");
            source.replay_detailed(plan.interval, sim);
            SimReport::since(sim, &snapshot)
        };
        let start_record = layout.interval_start(plan, warmup, k);
        intervals.push(IntervalSample::from_report(k, start_record, &delta));
        replayed += plan.functional_warmup + plan.detail_warmup + plan.interval;
        detailed += plan.detail_warmup + plan.interval;
        source.skip(layout.trail);
    }
    // The measured tail shorter than one period is not replayed; the
    // systematic frame covers `periods * period` records.

    // One registry touch per run, after the hot loops.
    fc_obs::metrics::counter("sample.runs").inc();
    fc_obs::metrics::counter("sample.intervals").add(periods);
    fc_obs::metrics::counter("sample.records.replayed").add(replayed);
    fc_obs::metrics::counter("sample.records.detailed").add(detailed);
    fc_obs::metrics::counter("sample.records.skipped").add(warmup + measured - replayed);

    SampledReport::aggregate(*plan, warmup + measured, replayed, detailed, intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_sim::{DesignSpec, SimConfig};
    use fc_trace::{TraceGenerator, WorkloadKind};

    fn records(n: usize) -> Vec<TraceRecord> {
        TraceGenerator::new(WorkloadKind::WebSearch, 4, 42)
            .take(n)
            .collect()
    }

    fn sim() -> Simulation {
        Simulation::new(SimConfig::small(), DesignSpec::footprint(64))
    }

    #[test]
    fn slice_and_stream_paths_are_bit_identical() {
        let rs = records(30_000);
        let plan = SamplePlan::new(4_000, 1_000, 300, 300).with_warmup_window(2_000);
        let a = run_sampled(&mut sim(), &rs, 6_000, 24_000, &plan);
        let b = run_sampled_stream(&mut sim(), rs.iter().cloned(), 6_000, 24_000, &plan);
        assert_eq!(a, b);
        assert_eq!(a.intervals.len(), 6);
    }

    #[test]
    fn work_accounting_matches_the_plan() {
        let rs = records(30_000);
        let plan = SamplePlan::new(4_000, 1_000, 300, 300).with_warmup_window(2_000);
        let rep = run_sampled(&mut sim(), &rs, 6_000, 24_000, &plan);
        assert_eq!(rep.total_records, 30_000);
        assert_eq!(rep.replayed_records, 2_000 + 6 * 1_600);
        assert_eq!(rep.detailed_records, 6 * 600);
        assert_eq!(rep.measured_records, 6 * 300);
        assert!((rep.replayed_fraction() - 11_600.0 / 30_000.0).abs() < 1e-12);
        assert!(rep.insts > 0 && rep.cycles > 0);
        assert!(rep.ipc.mean > 0.0);
    }

    #[test]
    fn exhaustive_plans_replay_every_record() {
        let rs = records(12_000);
        let plan = SamplePlan::exhaustive(2_000, 200, 200);
        let rep = run_sampled(&mut sim(), &rs, 2_000, 10_000, &plan);
        assert_eq!(rep.replayed_records, 12_000);
        assert_eq!(rep.intervals.len(), 5);
        assert_eq!(rep.replayed_fraction(), 1.0);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let rs = records(20_000);
        let plan = SamplePlan::for_run(4_000, 16_000, 64);
        let a = run_sampled(&mut sim(), &rs, 4_000, 16_000, &plan);
        let b = run_sampled(&mut sim(), &rs, 4_000, 16_000, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn interval_positions_are_systematic() {
        let rs = records(14_000);
        let plan = SamplePlan::new(3_000, 500, 200, 300);
        let rep = run_sampled(&mut sim(), &rs, 2_000, 12_000, &plan);
        let starts: Vec<u64> = rep.intervals.iter().map(|s| s.start_record).collect();
        // Centered placement: lead skip (3000-300)/2 - 700 = 650, so the
        // interval starts 650 + 700 = 1350 records into each period.
        assert_eq!(starts, vec![3_350, 6_350, 9_350, 12_350]);
    }

    #[test]
    #[should_panic(expected = "slice holds")]
    fn short_slices_are_rejected() {
        let rs = records(100);
        let plan = SamplePlan::exhaustive(1_000, 100, 100);
        run_sampled(&mut sim(), &rs, 1_000, 1_000, &plan);
    }
}
