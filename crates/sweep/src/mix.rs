//! The scenario-mix sweep: consolidation scenarios × designs, in
//! parallel, with solo-run baselines and consolidation metrics.
//!
//! A mix point replays a [`ScenarioSpec`] — a (possibly different)
//! workload per core — through a design and measures per-core IPC and
//! MPKI. To turn those into consolidation metrics (weighted speedup,
//! fairness), every distinct workload of the grid also runs **solo**
//! (the ordinary homogeneous sweep point on the same design), and each
//! core's mix IPC is normalized by its workload's solo IPC on that
//! core. Solo runs go through the shared [`SweepEngine`], so they are
//! memoized across scenarios, across designs, and with any other grid
//! the engine has run.
//!
//! For scenarios with a phase schedule, the baseline (and the
//! `core_workload` label in the emitters) uses each core's **phase-0**
//! assignment — a documented approximation: a core that rotates
//! through several workloads is normalized by the one it started
//! with, so phased weighted speedups compare against a fixed-
//! assignment counterfactual rather than a per-phase blend.
//!
//! Determinism matches the rest of the sweep subsystem: a mix point's
//! seed is a pure function of the point (scenario canonical JSON +
//! base seed), every point simulates on a fresh
//! [`Simulation`](fc_sim::Simulation), and per-scenario record streams
//! are synthesized once and shared read-only — results are
//! bit-identical for any worker-thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use fc_sim::{consolidation, ConsolidationReport, ScenarioSpec, SimConfig, SimReport, Simulation};
use fc_trace::{ScenarioGenerator, TraceRecord};

use crate::executor::SweepEngine;
use crate::scale::RunScale;
use crate::spec::{SweepPoint, SweepSpec};
use crate::store::PointKey;
use crate::{DesignSpec, WorkloadKind};

/// One experiment in a mix sweep: a scenario replayed through a design.
#[derive(Clone, Debug, PartialEq)]
pub struct MixPoint {
    /// The consolidation scenario (one workload per core).
    pub scenario: ScenarioSpec,
    /// Memory-system design under evaluation.
    pub design: DesignSpec,
    /// Pod configuration (cores must match the scenario).
    pub config: SimConfig,
    /// Run sizing.
    pub scale: RunScale,
    /// Base seed the per-point seed is derived from.
    pub base_seed: u64,
}

impl MixPoint {
    /// The trace seed: a pure function of `(base seed, scenario)` —
    /// never of the design, so every design evaluated on a scenario
    /// replays the same record stream and the per-scenario trace cache
    /// can share it. Mirrors [`SweepPoint::seed`]'s discipline on the
    /// scenario axis.
    pub fn seed(&self) -> u64 {
        self.base_seed ^ PointKey::from_canonical(self.scenario.to_json()).hash64()
    }

    /// Stacked capacity in MB used for run sizing.
    pub fn capacity_mb(&self) -> u64 {
        RunScale::sizing_capacity(self.design.capacity_mb())
    }

    /// Warmup records for this point.
    pub fn warmup(&self) -> u64 {
        self.scale.warmup(self.capacity_mb())
    }

    /// Measured records for this point.
    pub fn measured(&self) -> u64 {
        self.scale.measured(self.capacity_mb())
    }

    /// Human-readable label (progress lines, result emitters).
    pub fn label(&self) -> String {
        format!("{} / {}", self.scenario.name, self.design.label())
    }

    /// The canonical text encoding of everything that influences this
    /// point's result (scenario JSON + design JSON + pod config + scale
    /// + seed). Distinct configurations never alias.
    pub fn canonical(&self) -> String {
        format!(
            "mix|{}|{}|{:?}|{:?}|{}",
            self.scenario.to_json(),
            self.design.to_json(),
            self.config,
            self.scale,
            self.base_seed
        )
    }

    /// Stable memoization key for this point.
    pub fn key(&self) -> PointKey {
        PointKey::from_canonical(self.canonical())
    }

    /// The homogeneous solo point for `workload` on this point's
    /// design — the baseline the consolidation metrics normalize by.
    pub fn solo_point(&self, workload: WorkloadKind) -> SweepPoint {
        SweepPoint {
            workload,
            design: self.design,
            config: self.config,
            scale: self.scale,
            base_seed: self.base_seed,
        }
    }
}

/// A declarative mix grid: the cross product `scenarios × designs`.
#[derive(Clone, Debug)]
pub struct MixGrid {
    /// Consolidation scenarios (each must assign `config.cores` cores).
    pub scenarios: Vec<ScenarioSpec>,
    /// Designs under evaluation.
    pub designs: Vec<DesignSpec>,
    /// Pod configuration shared by every point.
    pub config: SimConfig,
    /// Run sizing shared by every point.
    pub scale: RunScale,
    /// Base seed.
    pub base_seed: u64,
}

impl MixGrid {
    /// A grid at `scale` with the default pod config and seed.
    pub fn new(scenarios: Vec<ScenarioSpec>, designs: Vec<DesignSpec>, scale: RunScale) -> Self {
        Self {
            scenarios,
            designs,
            config: SimConfig::default(),
            scale,
            base_seed: SweepSpec::DEFAULT_SEED,
        }
    }

    /// Sets the pod configuration (builder-style).
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the base seed (builder-style).
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The fully specified points, scenario-major in grid order.
    pub fn points(&self) -> Vec<MixPoint> {
        self.scenarios
            .iter()
            .flat_map(|scenario| {
                self.designs.iter().map(move |design| MixPoint {
                    scenario: scenario.clone(),
                    design: *design,
                    config: self.config,
                    scale: self.scale,
                    base_seed: self.base_seed,
                })
            })
            .collect()
    }

    /// Number of mix points (scenarios × designs).
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.designs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The solo-baseline spec: every distinct workload of every
    /// scenario crossed with every design.
    pub fn solo_spec(&self) -> SweepSpec {
        let mut workloads: Vec<WorkloadKind> = Vec::new();
        for scenario in &self.scenarios {
            for w in scenario.workloads() {
                if !workloads.contains(&w) {
                    workloads.push(w);
                }
            }
        }
        SweepSpec::new(self.scale)
            .with_config(self.config)
            .with_seed(self.base_seed)
            .grid(&workloads, &self.designs)
            .dedup()
    }
}

/// One finished mix point.
#[derive(Clone, Debug)]
pub struct MixResult {
    /// The point that was run.
    pub point: MixPoint,
    /// The mix run's (possibly memoized) report, per-core counters
    /// included.
    pub report: Arc<SimReport>,
    /// Per-core solo-IPC baselines (core `i`'s phase-0 workload run
    /// homogeneously on the same design, read at core `i`).
    pub solo_ipc: Vec<f64>,
    /// Consolidation metrics derived from `report` and `solo_ipc`.
    pub consolidation: ConsolidationReport,
    /// Wall-clock seconds spent obtaining the mix report (near zero
    /// for memoized points). Timing only — never part of the result.
    pub sim_secs: f64,
    /// Whether the mix report came from the memo store.
    pub memoized: bool,
}

/// Runs a mix grid through `engine`: solo baselines first (parallel,
/// memoized), then every mix point (parallel, memoized under its own
/// key), returning results in grid order. Bit-identical for any
/// engine thread count.
///
/// # Panics
///
/// Panics if a scenario's core count differs from the grid's pod
/// configuration.
pub fn run_mix(grid: &MixGrid, engine: &SweepEngine) -> Vec<MixResult> {
    for scenario in &grid.scenarios {
        assert_eq!(
            scenario.cores(),
            grid.config.cores,
            "scenario `{}` assigns {} cores but the grid's pod has {}",
            scenario.name,
            scenario.cores(),
            grid.config.cores
        );
    }

    // Solo baselines through the shared engine (memoized across
    // scenarios, designs, and earlier grids).
    let solo_results = engine.run_spec(&grid.solo_spec());
    let solo_ipc = |point: &MixPoint, core: usize| -> f64 {
        let workload = point.scenario.workload_at(core as u8, 0);
        let solo = point.solo_point(workload);
        solo_results
            .iter()
            .find(|r| r.point == solo)
            .map(|r| r.report.per_core[core].ipc())
            .expect("solo spec covers every (workload, design) of the grid")
    };

    // One shared record stream per scenario: synthesized lazily by the
    // first worker that needs it, sized for the grid's longest run.
    let max_records: u64 = grid
        .points()
        .iter()
        .map(|p| p.warmup() + p.measured())
        .max()
        .unwrap_or(0);
    let traces: Vec<OnceLock<Arc<Vec<TraceRecord>>>> =
        grid.scenarios.iter().map(|_| OnceLock::new()).collect();

    let points = grid.points();
    let slots: Vec<OnceLock<(Arc<SimReport>, f64, bool)>> =
        points.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);

    let run_point = |index: usize| {
        let point = &points[index];
        let key = point.key();
        let memoized = engine.store().get(&key).is_some();
        let started = std::time::Instant::now();
        let report = engine.store().get_or_compute(&key, || {
            let scenario_index = index / grid.designs.len();
            let records = traces[scenario_index].get_or_init(|| {
                Arc::new(
                    ScenarioGenerator::new(&point.scenario, point.seed())
                        .take(max_records as usize)
                        .collect(),
                )
            });
            let warmup = point.warmup() as usize;
            let measured = point.measured() as usize;
            let mut sim = Simulation::new(point.config, point.design);
            let (warm, meas) = records[..warmup + measured].split_at(warmup);
            for r in warm {
                sim.step(r);
            }
            sim.drain();
            let snapshot = sim.snapshot();
            sim.run_records(meas.iter().cloned(), &snapshot)
        });
        (report, started.elapsed().as_secs_f64(), memoized)
    };

    let workers = engine.threads().clamp(1, points.len().max(1));
    if workers == 1 {
        for (index, slot) in slots.iter().enumerate() {
            slot.set(run_point(index)).expect("slot written once");
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= points.len() {
                        break;
                    }
                    slots[index]
                        .set(run_point(index))
                        .expect("slot written once");
                });
            }
        });
    }

    points
        .into_iter()
        .zip(slots)
        .map(|(point, slot)| {
            let (report, sim_secs, memoized) = slot.into_inner().expect("every point ran");
            let solo: Vec<f64> = (0..point.config.cores as usize)
                .map(|core| solo_ipc(&point, core))
                .collect();
            let consolidation = consolidation(&report, &solo);
            MixResult {
                point,
                report,
                solo_ipc: solo,
                consolidation,
                sim_secs,
                memoized,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_sim::resolve_scenarios;

    fn tiny_grid() -> MixGrid {
        MixGrid::new(
            vec![
                ScenarioSpec::split(WorkloadKind::DataServing, WorkloadKind::MapReduce, 4),
                ScenarioSpec::homogeneous(WorkloadKind::WebSearch, 4),
            ],
            vec![DesignSpec::baseline(), DesignSpec::footprint(64)],
            RunScale::tiny(),
        )
        .with_config(SimConfig::small())
    }

    #[test]
    fn mix_results_cover_the_grid_in_order() {
        let grid = tiny_grid();
        let results = run_mix(&grid, &SweepEngine::new().with_threads(2).quiet());
        assert_eq!(results.len(), grid.len());
        assert_eq!(results[0].point.scenario.name, "Data Serving+MapReduce");
        assert_eq!(results[0].point.design.label(), "Baseline");
        assert_eq!(results[3].point.design.label(), "Footprint 64MB");
        for r in &results {
            assert_eq!(r.report.per_core.len(), 4);
            assert!(r.report.per_core.iter().all(|c| c.insts > 0));
            assert_eq!(r.solo_ipc.len(), 4);
            assert!(r.consolidation.weighted_speedup > 0.0);
            assert!(r.consolidation.fairness > 0.0 && r.consolidation.fairness <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn mix_grid_is_thread_count_independent() {
        let grid = tiny_grid();
        let seq = run_mix(&grid, &SweepEngine::new().with_threads(1).quiet());
        let par = run_mix(&grid, &SweepEngine::new().with_threads(4).quiet());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.point, b.point);
            assert_eq!(*a.report, *b.report, "{} diverged", a.point.label());
            assert_eq!(a.solo_ipc, b.solo_ipc);
            assert_eq!(a.consolidation, b.consolidation);
        }
    }

    #[test]
    fn mix_points_are_memoized() {
        let grid = tiny_grid();
        let engine = SweepEngine::new().with_threads(2).quiet();
        let first = run_mix(&grid, &engine);
        let computed = engine.store().computed();
        let second = run_mix(&grid, &engine);
        assert_eq!(engine.store().computed(), computed, "no new simulations");
        assert!(second.iter().all(|r| r.memoized));
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(&a.report, &b.report));
        }
    }

    #[test]
    fn homogeneous_mix_speedup_is_near_unity() {
        // A homogeneous scenario through the mix path is its own solo
        // baseline (modulo address salting), so consolidation should
        // be roughly free and fair.
        let grid = MixGrid::new(
            vec![ScenarioSpec::homogeneous(WorkloadKind::WebSearch, 4)],
            vec![DesignSpec::footprint(64)],
            RunScale::tiny(),
        )
        .with_config(SimConfig::small());
        let results = run_mix(&grid, &SweepEngine::new().quiet());
        let c = &results[0].consolidation;
        assert!(
            (0.7..=1.3).contains(&c.weighted_speedup),
            "homogeneous weighted speedup {}",
            c.weighted_speedup
        );
        assert!(c.fairness > 0.9, "homogeneous fairness {}", c.fairness);
    }

    #[test]
    fn scenario_seed_is_design_independent() {
        let grid = tiny_grid();
        let points = grid.points();
        assert_eq!(points[0].seed(), points[1].seed(), "same scenario");
        assert_ne!(points[0].seed(), points[2].seed(), "different scenario");
    }

    #[test]
    fn registry_scenarios_run_through_the_grid() {
        let scenarios = resolve_scenarios("dsmr", 4).unwrap();
        let grid = MixGrid::new(scenarios, vec![DesignSpec::page(64)], RunScale::tiny())
            .with_config(SimConfig::small());
        let results = run_mix(&grid, &SweepEngine::new().quiet());
        assert_eq!(results.len(), 1);
    }

    #[test]
    #[should_panic(expected = "assigns 8 cores")]
    fn mismatched_scenario_cores_rejected() {
        let grid = MixGrid::new(
            vec![ScenarioSpec::all_different(8)],
            vec![DesignSpec::baseline()],
            RunScale::tiny(),
        )
        .with_config(SimConfig::small());
        run_mix(&grid, &SweepEngine::new().quiet());
    }
}
