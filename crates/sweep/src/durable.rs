//! On-disk backend for the memoized result store.
//!
//! # File layout
//!
//! A store directory holds:
//!
//! * `meta.json` — `{"version":1,"shards":N,"vnodes":V,"generation":G}`.
//!   `generation` increments whenever the store's contents change shape
//!   (a shard is quarantined, the ring is resized); artifacts record it
//!   in provenance so a result can be traced to the store state that
//!   produced it.
//! * `shard-0000.jsonl` … `shard-NNNN.jsonl` — append-only record
//!   files. Each line is `{"h":"<16-hex fnv1a>","k":"<canonical>",
//!   "v":{…}}`; `h` is redundant with `k` and serves as a per-record
//!   integrity check on load.
//! * `shard-XXXX.jsonl.corrupt-<gen>` — a quarantined shard file,
//!   renamed aside when a load finds an undecodable record. The good
//!   prefix is salvaged into a fresh shard file; the lost suffix is
//!   simply recomputed on demand.
//!
//! Keys are placed on shards by the consistent-hash
//! [`HashRing`](crate::ring::HashRing) over the *mixed* FNV point
//! hash, so growing the shard count relocates only ~K/n keys (see
//! `ring.rs`). Writes are appends (flushed per record); rewrites —
//! compaction of duplicate keys, salvage, resize — go through
//! [`fc_types::atomic_write`], so a reader or a kill mid-write never
//! observes a truncated file.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fc_obs::metrics;
use fc_sim::json::{escape, JsonValue};
use fc_sim::SimReport;
use fc_types::fnv1a;

use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::store::PointKey;

/// A value type the durable store can persist: a single-line JSON
/// encoding and its exact inverse. Implemented for [`SimReport`];
/// sampled reports stay in-memory for now (their grids are cheap to
/// recompute by design).
pub trait StoreValue: Sized {
    /// Encodes the value as one line of JSON (no embedded newlines).
    fn to_store_json(&self) -> String;
    /// Decodes a value previously produced by
    /// [`to_store_json`](Self::to_store_json). Must round-trip
    /// bit-identically, including every `f64`.
    fn from_store_json(v: &JsonValue) -> Result<Self, String>;
}

/// Version written to `meta.json`; bump on layout changes.
const STORE_VERSION: u64 = 1;

/// Default number of disk shards for a new store directory.
pub const DEFAULT_DISK_SHARDS: u32 = 8;

struct DiskShard {
    loaded: bool,
    writer: Option<File>,
}

/// The durable backend: a directory of ring-placed shard files plus
/// the decode/encode hooks captured at construction (kept as function
/// pointers so `ResultStore<T>`'s methods stay free of trait bounds).
pub struct Durable<T> {
    dir: PathBuf,
    ring: HashRing,
    generation: AtomicU64,
    disk: Vec<Mutex<DiskShard>>,
    encode: fn(&T) -> String,
    decode: fn(&JsonValue) -> Result<T, String>,
}

impl<T> Durable<T> {
    /// Opens (or creates) a store directory with `shards` disk shards.
    /// If the directory already exists with a different shard count,
    /// its contents are re-placed onto the new ring — the in-file move
    /// is wholesale (every shard file is rewritten atomically), but the
    /// *ring* guarantees future growth only relocates ~K/n keys, and
    /// generation is bumped so provenance records the migration.
    pub fn open(dir: &Path, shards: u32) -> Result<Self, String>
    where
        T: StoreValue,
    {
        assert!(shards > 0, "a durable store needs at least one shard");
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create store dir {}: {e}", dir.display()))?;
        let meta_path = dir.join("meta.json");
        let (on_disk_shards, mut generation) = match std::fs::read_to_string(&meta_path) {
            Ok(text) => {
                let meta = JsonValue::parse(&text)
                    .map_err(|e| format!("parse {}: {e}", meta_path.display()))?;
                let version = meta.field("version")?.as_u64()?;
                if version != STORE_VERSION {
                    return Err(format!(
                        "store {} is version {version}, this build reads version {STORE_VERSION}",
                        dir.display()
                    ));
                }
                (
                    meta.field("shards")?.as_u32()?,
                    meta.field("generation")?.as_u64()?,
                )
            }
            Err(_) => (shards, 0),
        };

        let store = Self {
            dir: dir.to_path_buf(),
            ring: HashRing::new(shards),
            generation: AtomicU64::new(generation),
            disk: (0..shards)
                .map(|_| {
                    Mutex::new(DiskShard {
                        loaded: false,
                        writer: None,
                    })
                })
                .collect(),
            encode: T::to_store_json,
            decode: T::from_store_json,
        };

        if on_disk_shards != shards && on_disk_shards > 0 {
            store.migrate_shard_count(on_disk_shards)?;
            generation = store.generation.load(Ordering::Relaxed);
        }
        // Gauges, not counters: re-opening a store reports its current
        // shape, it does not accumulate across opens.
        metrics::gauge("store.shards").set(shards as i64);
        metrics::gauge("store.generation").set(generation as i64);
        // (Re)write meta so a fresh directory is recognizable and a
        // migrated one records its new shape.
        store.write_meta(shards, generation)?;
        Ok(store)
    }

    /// Opens `dir` keeping its existing shard count, or creates it
    /// with [`DEFAULT_DISK_SHARDS`] — the right call when the caller
    /// has no opinion about the shard count (the CLI's `--store`).
    pub fn open_default(dir: &Path) -> Result<Self, String>
    where
        T: StoreValue,
    {
        let existing = std::fs::read_to_string(dir.join("meta.json"))
            .ok()
            .and_then(|text| JsonValue::parse(&text).ok())
            .and_then(|meta| meta.get("shards").and_then(|s| s.as_u32().ok()));
        Self::open(dir, existing.unwrap_or(DEFAULT_DISK_SHARDS))
    }

    fn write_meta(&self, shards: u32, generation: u64) -> Result<(), String> {
        let meta = format!(
            "{{\"version\":{STORE_VERSION},\"shards\":{shards},\"vnodes\":{DEFAULT_VNODES},\"generation\":{generation}}}\n"
        );
        fc_types::atomic_write(&self.dir.join("meta.json"), meta.as_bytes())
            .map_err(|e| format!("write store meta: {e}"))
    }

    fn shard_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard:04}.jsonl"))
    }

    /// The disk shard that owns `key` on the ring.
    pub fn shard_of(&self, key: &PointKey) -> u32 {
        self.ring.shard_for_hash(key.hash64())
    }

    /// The store generation (bumped on quarantine and resize).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    fn bump_generation(&self) -> u64 {
        let gen = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let _ = self.write_meta(self.ring.shards(), gen);
        gen
    }

    fn encode_record(&self, key: &PointKey, value: &T) -> String {
        format!(
            "{{\"h\":\"{:016x}\",\"k\":\"{}\",\"v\":{}}}\n",
            key.hash64(),
            escape(key.canonical()),
            (self.encode)(value)
        )
    }

    /// Parses one shard-file line into a key/value pair, verifying the
    /// embedded hash against the canonical key.
    fn decode_record(&self, line: &str) -> Result<(PointKey, T), String> {
        let v = JsonValue::parse(line)?;
        let hash = u64::from_str_radix(v.field("h")?.as_str()?, 16)
            .map_err(|e| format!("bad record hash: {e}"))?;
        let canonical = v.field("k")?.as_str()?.to_string();
        if fnv1a(canonical.as_bytes()) != hash {
            return Err("record hash does not match its key".to_string());
        }
        let value = (self.decode)(v.field("v")?)?;
        Ok((PointKey::from_canonical(canonical), value))
    }

    /// Loads a shard file on first access, feeding each decoded record
    /// to `sink` (duplicate keys keep the *last* record — appends win).
    /// A corrupt or truncated record quarantines the file: the good
    /// prefix is salvaged into a fresh shard file, the original moves
    /// aside as `…corrupt-<gen>`, and the lost suffix is recomputed on
    /// demand by callers that miss. Never panics on bad input.
    pub fn ensure_loaded(&self, shard: u32, mut sink: impl FnMut(PointKey, T)) {
        let mut disk = self.disk[shard as usize].lock().expect("disk shard lock");
        if disk.loaded {
            return;
        }
        disk.loaded = true;
        let path = self.shard_path(shard);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return, // no shard file yet: empty shard
        };
        metrics::counter("store.loads").add(1);
        metrics::counter("store.records_loaded")
            .add(text.lines().filter(|l| !l.is_empty()).count() as u64);

        let mut good_lines: Vec<&str> = Vec::new();
        let mut records: Vec<(PointKey, T)> = Vec::new();
        let mut corrupt: Option<String> = None;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match self.decode_record(line) {
                Ok(pair) => {
                    good_lines.push(line);
                    records.push(pair);
                }
                Err(e) => {
                    corrupt = Some(e);
                    break;
                }
            }
        }
        // A final line without a trailing newline is an interrupted
        // append even if it happens to decode; `lines()` already treats
        // it like any other line, and decode catches the torn case.

        if let Some(reason) = corrupt {
            metrics::counter("store.quarantined").add(1);
            let gen = self.bump_generation();
            let aside = path.with_extension(format!("jsonl.corrupt-{gen}"));
            eprintln!(
                "fc-sweep store: quarantining {} -> {} ({reason}); salvaged {} records",
                path.display(),
                aside.display(),
                records.len()
            );
            // Close any stale writer before moving the file aside.
            disk.writer = None;
            if std::fs::rename(&path, &aside).is_ok() {
                let mut salvaged = String::new();
                for line in &good_lines {
                    salvaged.push_str(line);
                    salvaged.push('\n');
                }
                if let Err(e) = fc_types::atomic_write(&path, salvaged.as_bytes()) {
                    eprintln!("fc-sweep store: salvage write failed: {e}");
                }
            }
        } else {
            // Clean file: compact away duplicate keys if appends have
            // piled up rewrites of the same points.
            let distinct = {
                let mut hashes: Vec<u64> = records.iter().map(|(k, _)| k.hash64()).collect();
                hashes.sort_unstable();
                hashes.dedup();
                hashes.len()
            };
            if distinct < records.len() {
                metrics::counter("store.compactions").add(1);
                let mut last: std::collections::HashMap<u64, &str> =
                    std::collections::HashMap::new();
                for ((k, _), line) in records.iter().zip(&good_lines) {
                    last.insert(k.hash64(), line);
                }
                let mut compacted = String::new();
                // Preserve first-seen order for determinism.
                let mut written = std::collections::HashSet::new();
                for ((k, _), _) in records.iter().zip(&good_lines) {
                    if written.insert(k.hash64()) {
                        compacted.push_str(last[&k.hash64()]);
                        compacted.push('\n');
                    }
                }
                disk.writer = None;
                if let Err(e) = fc_types::atomic_write(&path, compacted.as_bytes()) {
                    eprintln!("fc-sweep store: compaction write failed: {e}");
                }
            }
        }

        for (key, value) in records {
            sink(key, value);
        }
    }

    /// Appends one record to `key`'s shard file, flushing before
    /// returning. Append failures are reported and counted, never
    /// panicked on — the in-memory result is still valid.
    pub fn append(&self, key: &PointKey, value: &T) {
        let shard = self.shard_of(key);
        let line = self.encode_record(key, value);
        let mut disk = self.disk[shard as usize].lock().expect("disk shard lock");
        if disk.writer.is_none() {
            match OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.shard_path(shard))
            {
                Ok(f) => disk.writer = Some(f),
                Err(e) => {
                    metrics::counter("store.append_errors").add(1);
                    eprintln!("fc-sweep store: cannot open shard {shard} for append: {e}");
                    return;
                }
            }
        }
        let writer = disk.writer.as_mut().expect("writer just opened");
        if let Err(e) = writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.flush())
        {
            metrics::counter("store.append_errors").add(1);
            eprintln!("fc-sweep store: append to shard {shard} failed: {e}");
            disk.writer = None;
        }
    }

    /// Re-places every record onto a ring of the current size after the
    /// on-disk layout used `old_shards`. All shard files are rewritten
    /// atomically; generation is bumped once.
    fn migrate_shard_count(&self, old_shards: u32) -> Result<(), String> {
        let mut records: Vec<(PointKey, String)> = Vec::new();
        for s in 0..old_shards {
            let path = self.shard_path(s);
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            for line in text.lines().filter(|l| !l.is_empty()) {
                match self.decode_record(line) {
                    Ok((key, _)) => records.push((key, line.to_string())),
                    // Resize tolerates bad records the same way load
                    // does: drop them, they recompute on demand.
                    Err(e) => eprintln!("fc-sweep store: dropping record during resize: {e}"),
                }
            }
        }
        let new_shards = self.ring.shards();
        let mut buckets: Vec<String> = vec![String::new(); new_shards as usize];
        for (key, line) in &records {
            let s = self.ring.shard_for_hash(key.hash64());
            buckets[s as usize].push_str(line);
            buckets[s as usize].push('\n');
        }
        // Write the new layout first, then drop stale old files that no
        // longer exist in the new numbering.
        for (s, contents) in buckets.iter().enumerate() {
            let path = self.shard_path(s as u32);
            if contents.is_empty() {
                let _ = std::fs::remove_file(&path);
            } else {
                fc_types::atomic_write(&path, contents.as_bytes())
                    .map_err(|e| format!("resize write shard {s}: {e}"))?;
            }
        }
        for s in new_shards..old_shards {
            let _ = std::fs::remove_file(self.shard_path(s));
        }
        self.bump_generation();
        Ok(())
    }
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.field(key)?.as_u64()
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.field(key)?.as_f64()
}

fn dram_stats_json(d: &fc_dram::DramStats) -> String {
    let bins = d.queue_hist.bins();
    format!(
        "{{\"accesses\":{},\"activates\":{},\"row_hits\":{},\"row_misses\":{},\"read_blocks\":{},\"write_blocks\":{},\"compound_accesses\":{},\"busy_cycles\":{},\"queue_delay_cycles\":{},\"queue_hist\":[{}]}}",
        d.accesses,
        d.activates,
        d.row_hits,
        d.row_misses,
        d.read_blocks,
        d.write_blocks,
        d.compound_accesses,
        d.busy_cycles,
        d.queue_delay_cycles,
        bins.map(|b| b.to_string()).join(",")
    )
}

fn dram_stats_from_json(v: &JsonValue) -> Result<fc_dram::DramStats, String> {
    let bins_v = match v.field("queue_hist")? {
        JsonValue::Arr(items) => items,
        other => return Err(format!("expected queue_hist array, got {other:?}")),
    };
    let mut bins = [0u64; fc_dram::QueueDelayHist::BINS];
    if bins_v.len() != bins.len() {
        return Err(format!(
            "queue_hist has {} bins, expected {}",
            bins_v.len(),
            bins.len()
        ));
    }
    for (b, item) in bins.iter_mut().zip(bins_v) {
        *b = item.as_u64()?;
    }
    Ok(fc_dram::DramStats {
        accesses: u64_field(v, "accesses")?,
        activates: u64_field(v, "activates")?,
        row_hits: u64_field(v, "row_hits")?,
        row_misses: u64_field(v, "row_misses")?,
        read_blocks: u64_field(v, "read_blocks")?,
        write_blocks: u64_field(v, "write_blocks")?,
        compound_accesses: u64_field(v, "compound_accesses")?,
        busy_cycles: u64_field(v, "busy_cycles")?,
        queue_delay_cycles: u64_field(v, "queue_delay_cycles")?,
        queue_hist: fc_dram::QueueDelayHist::from_bins(bins),
    })
}

fn cache_stats_json(c: &fc_sim::DramCacheStats) -> String {
    format!(
        "{{\"accesses\":{},\"hits\":{},\"misses\":{},\"bypasses\":{},\"evictions\":{},\"dirty_evictions\":{},\"fill_blocks\":{},\"offchip_read_blocks\":{},\"offchip_write_blocks\":{},\"stacked_read_blocks\":{},\"stacked_write_blocks\":{},\"density\":[{}]}}",
        c.accesses,
        c.hits,
        c.misses,
        c.bypasses,
        c.evictions,
        c.dirty_evictions,
        c.fill_blocks,
        c.offchip_read_blocks,
        c.offchip_write_blocks,
        c.stacked_read_blocks,
        c.stacked_write_blocks,
        c.density.bins().map(|b| b.to_string()).join(",")
    )
}

fn cache_stats_from_json(v: &JsonValue) -> Result<fc_sim::DramCacheStats, String> {
    let bins_v = match v.field("density")? {
        JsonValue::Arr(items) => items,
        other => return Err(format!("expected density array, got {other:?}")),
    };
    let mut bins = [0u64; 6];
    if bins_v.len() != bins.len() {
        return Err(format!(
            "density has {} bins, expected {}",
            bins_v.len(),
            bins.len()
        ));
    }
    for (b, item) in bins.iter_mut().zip(bins_v) {
        *b = item.as_u64()?;
    }
    Ok(fc_sim::DramCacheStats {
        accesses: u64_field(v, "accesses")?,
        hits: u64_field(v, "hits")?,
        misses: u64_field(v, "misses")?,
        bypasses: u64_field(v, "bypasses")?,
        evictions: u64_field(v, "evictions")?,
        dirty_evictions: u64_field(v, "dirty_evictions")?,
        fill_blocks: u64_field(v, "fill_blocks")?,
        offchip_read_blocks: u64_field(v, "offchip_read_blocks")?,
        offchip_write_blocks: u64_field(v, "offchip_write_blocks")?,
        stacked_read_blocks: u64_field(v, "stacked_read_blocks")?,
        stacked_write_blocks: u64_field(v, "stacked_write_blocks")?,
        density: fc_sim::DensityHistogram::from_bins(bins),
    })
}

fn energy_json(e: &fc_sim::EnergyReport) -> String {
    // f64 via Display: Rust prints the shortest string that parses back
    // to the same bits, so the round trip is exact.
    format!(
        "{{\"act_pre_nj\":{},\"burst_nj\":{}}}",
        e.act_pre_nj, e.burst_nj
    )
}

fn energy_from_json(v: &JsonValue) -> Result<fc_sim::EnergyReport, String> {
    Ok(fc_sim::EnergyReport {
        act_pre_nj: f64_field(v, "act_pre_nj")?,
        burst_nj: f64_field(v, "burst_nj")?,
    })
}

impl StoreValue for SimReport {
    fn to_store_json(&self) -> String {
        let per_core: Vec<String> = self
            .per_core
            .iter()
            .map(|c| {
                format!(
                    "{{\"insts\":{},\"cycles\":{},\"l2_accesses\":{},\"l2_misses\":{}}}",
                    c.insts, c.cycles, c.l2_accesses, c.l2_misses
                )
            })
            .collect();
        let prediction = match &self.prediction {
            None => "null".to_string(),
            Some(p) => format!(
                "{{\"covered\":{},\"overpredicted\":{},\"underpredicted\":{},\"singleton_bypasses\":{},\"singleton_promotions\":{}}}",
                p.covered, p.overpredicted, p.underpredicted, p.singleton_bypasses, p.singleton_promotions
            ),
        };
        format!(
            "{{\"insts\":{},\"cycles\":{},\"per_core\":[{}],\"cache\":{},\"offchip\":{},\"stacked\":{},\"offchip_energy\":{},\"stacked_energy\":{},\"prediction\":{}}}",
            self.insts,
            self.cycles,
            per_core.join(","),
            cache_stats_json(&self.cache),
            dram_stats_json(&self.offchip),
            dram_stats_json(&self.stacked),
            energy_json(&self.offchip_energy),
            energy_json(&self.stacked_energy),
            prediction
        )
    }

    fn from_store_json(v: &JsonValue) -> Result<Self, String> {
        let per_core_v = match v.field("per_core")? {
            JsonValue::Arr(items) => items,
            other => return Err(format!("expected per_core array, got {other:?}")),
        };
        let per_core = per_core_v
            .iter()
            .map(|c| {
                Ok(fc_sim::CorePerf {
                    insts: u64_field(c, "insts")?,
                    cycles: u64_field(c, "cycles")?,
                    l2_accesses: u64_field(c, "l2_accesses")?,
                    l2_misses: u64_field(c, "l2_misses")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let prediction = match v.field("prediction")? {
            JsonValue::Null => None,
            p => Some(fc_sim::PredictionCounters {
                covered: u64_field(p, "covered")?,
                overpredicted: u64_field(p, "overpredicted")?,
                underpredicted: u64_field(p, "underpredicted")?,
                singleton_bypasses: u64_field(p, "singleton_bypasses")?,
                singleton_promotions: u64_field(p, "singleton_promotions")?,
            }),
        };
        Ok(SimReport {
            insts: u64_field(v, "insts")?,
            cycles: u64_field(v, "cycles")?,
            per_core,
            cache: cache_stats_from_json(v.field("cache")?)?,
            offchip: dram_stats_from_json(v.field("offchip")?)?,
            stacked: dram_stats_from_json(v.field("stacked")?)?,
            offchip_energy: energy_from_json(v.field("offchip_energy")?)?,
            stacked_energy: energy_from_json(v.field("stacked_energy")?)?,
            prediction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        let mut density = fc_sim::DensityHistogram::default();
        density.record(1);
        density.record(17);
        density.record(32);
        SimReport {
            insts: 123_456_789,
            cycles: 987_654_321,
            per_core: vec![
                fc_sim::CorePerf {
                    insts: 100,
                    cycles: 200,
                    l2_accesses: 50,
                    l2_misses: 5,
                },
                fc_sim::CorePerf {
                    insts: 300,
                    cycles: 400,
                    l2_accesses: 70,
                    l2_misses: 7,
                },
            ],
            cache: fc_sim::DramCacheStats {
                accesses: 1,
                hits: 2,
                misses: 3,
                bypasses: 4,
                evictions: 5,
                dirty_evictions: 6,
                fill_blocks: 7,
                offchip_read_blocks: 8,
                offchip_write_blocks: 9,
                stacked_read_blocks: 10,
                stacked_write_blocks: 11,
                density,
            },
            offchip: fc_dram::DramStats {
                accesses: 21,
                activates: 22,
                row_hits: 23,
                row_misses: 24,
                read_blocks: 25,
                write_blocks: 26,
                compound_accesses: 27,
                busy_cycles: 28,
                queue_delay_cycles: 29,
                queue_hist: fc_dram::QueueDelayHist::from_bins([1, 2, 3, 4, 5, 6, 7]),
            },
            stacked: fc_dram::DramStats::default(),
            offchip_energy: fc_sim::EnergyReport {
                act_pre_nj: 0.1 + 0.2, // deliberately non-representable
                burst_nj: 1.0 / 3.0,
            },
            stacked_energy: fc_sim::EnergyReport {
                act_pre_nj: 5e-324,
                burst_nj: 1.7e308,
            },
            prediction: Some(fc_sim::PredictionCounters {
                covered: 31,
                overpredicted: 32,
                underpredicted: 33,
                singleton_bypasses: 34,
                singleton_promotions: 35,
            }),
        }
    }

    #[test]
    fn sim_report_round_trips_bit_identically() {
        let report = sample_report();
        let line = report.to_store_json();
        assert!(!line.contains('\n'), "store encoding must be one line");
        let back = SimReport::from_store_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(report, back);
        // f64s specifically: exact bits, not approximate equality.
        assert_eq!(
            report.offchip_energy.act_pre_nj.to_bits(),
            back.offchip_energy.act_pre_nj.to_bits()
        );
        assert_eq!(
            report.stacked_energy.burst_nj.to_bits(),
            back.stacked_energy.burst_nj.to_bits()
        );
    }

    #[test]
    fn prediction_none_round_trips() {
        let mut report = sample_report();
        report.prediction = None;
        report.per_core.clear();
        let back = SimReport::from_store_json(&JsonValue::parse(&report.to_store_json()).unwrap())
            .unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn malformed_store_values_error_instead_of_panicking() {
        for bad in [
            "{}",
            r#"{"insts":1}"#,
            r#"{"insts":"x","cycles":1,"per_core":[],"cache":{},"offchip":{},"stacked":{},"offchip_energy":{},"stacked_energy":{},"prediction":null}"#,
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(SimReport::from_store_json(&v).is_err(), "input: {bad}");
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fc-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_load_recovers_records() {
        let dir = tmpdir("roundtrip");
        let durable: Durable<SimReport> = Durable::open(&dir, 4).unwrap();
        let report = sample_report();
        let keys: Vec<PointKey> = (0..20)
            .map(|i| PointKey::from_canonical(format!("point-{i}")))
            .collect();
        for k in &keys {
            durable.append(k, &report);
        }
        drop(durable);

        let durable: Durable<SimReport> = Durable::open(&dir, 4).unwrap();
        let mut seen = Vec::new();
        for s in 0..4 {
            durable.ensure_loaded(s, |k, v| {
                assert_eq!(v, report);
                seen.push(k);
            });
        }
        seen.sort_by(|a, b| a.canonical().cmp(b.canonical()));
        assert_eq!(seen.len(), keys.len());
        assert_eq!(durable.generation(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_record_quarantines_and_salvages_prefix() {
        let dir = tmpdir("quarantine");
        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let report = sample_report();
        for i in 0..5 {
            durable.append(&PointKey::from_canonical(format!("p{i}")), &report);
        }
        drop(durable);

        // Tear the last record in half, as a kill mid-append would.
        let path = dir.join("shard-0000.jsonl");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();

        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let mut recovered = 0;
        durable.ensure_loaded(0, |_, _| recovered += 1);
        assert_eq!(recovered, 4, "good prefix salvaged, torn record dropped");
        assert_eq!(durable.generation(), 1, "quarantine bumps generation");
        let corrupt_exists = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains("corrupt"));
        assert!(corrupt_exists, "original file moved aside");
        // The salvaged file is clean: a fresh open loads 4 records.
        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let mut again = 0;
        durable.ensure_loaded(0, |_, _| again += 1);
        assert_eq!(again, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_appends_compact_keep_last_on_load() {
        let dir = tmpdir("compact");
        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let key = PointKey::from_canonical("dup".into());
        let mut old = sample_report();
        old.insts = 1;
        let mut new = sample_report();
        new.insts = 2;
        durable.append(&key, &old);
        durable.append(&key, &new);
        drop(durable);

        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let mut loaded = Vec::new();
        durable.ensure_loaded(0, |_, v| loaded.push(v.insts));
        assert_eq!(loaded, vec![1, 2], "sink sees appends in order; last wins");
        // Compaction rewrote the file down to one record.
        let text = std::fs::read_to_string(dir.join("shard-0000.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"insts\":2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resize_re_places_existing_records() {
        let dir = tmpdir("resize");
        let durable: Durable<SimReport> = Durable::open(&dir, 2).unwrap();
        let report = sample_report();
        let keys: Vec<PointKey> = (0..30)
            .map(|i| PointKey::from_canonical(format!("resize-{i}")))
            .collect();
        for k in &keys {
            durable.append(k, &report);
        }
        drop(durable);

        let durable: Durable<SimReport> = Durable::open(&dir, 3).unwrap();
        assert!(durable.generation() >= 1, "resize bumps generation");
        let mut seen = 0;
        for s in 0..3 {
            durable.ensure_loaded(s, |k, _| {
                assert_eq!(durable.shard_of(&k), s, "record on its ring shard");
                seen += 1;
            });
        }
        assert_eq!(seen, keys.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unicode_canonical_keys_survive_persistence() {
        let dir = tmpdir("unicode");
        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let key = PointKey::from_canonical("wörk|😀|\"quoted\"|tab\t".into());
        durable.append(&key, &sample_report());
        drop(durable);
        let durable: Durable<SimReport> = Durable::open(&dir, 1).unwrap();
        let mut found = false;
        durable.ensure_loaded(0, |k, _| {
            assert_eq!(k.canonical(), "wörk|😀|\"quoted\"|tab\t");
            found = true;
        });
        assert!(found);
        std::fs::remove_dir_all(&dir).ok();
    }
}
