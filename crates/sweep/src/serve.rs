//! `fc_sweep serve` — sweep-as-a-service over JSONL, no network needed.
//!
//! A serve loop accepts *grid requests* (one JSON object per line, on
//! stdin or as files dropped into a spool directory), diffs each
//! request against the engine's result store — durable, when the CLI
//! passed `--store` — and schedules only the missing points on the
//! deterministic executor. Results stream back as JSONL: one `point`
//! record per sweep point (the same record shape as
//! [`emit::to_json`](crate::emit::to_json)) followed by one `summary`
//! record per request.
//!
//! # Request shape
//!
//! ```json
//! {"id": "nightly-1", "grid": "designspace", "capacities": [64, 128],
//!  "workloads": ["web search"], "scale": "tiny", "seed": 42}
//! ```
//!
//! Every field is optional: `designs` (comma list of registry
//! families) overrides `grid` (a preset name), `capacities` defaults
//! to the CLI's 64/128/256/512, `workloads` to all six, `scale` to
//! `quick`, `seed` to the default sweep seed, `id` to `""`.
//!
//! # Response shape
//!
//! ```json
//! {"type": "point", "id": "nightly-1", "fresh": false, "point": {…}}
//! {"type": "summary", "id": "nightly-1", "points": 12, "fresh": 0,
//!  "wall_secs": 0.01, "store_generation": 0}
//! {"type": "error", "id": "nightly-1", "error": "unknown scale `big`"}
//! ```

use std::io::{BufRead, Write};
use std::path::Path;

use fc_obs::{metrics, trace};
use fc_sim::json::{escape, JsonValue};
use fc_sim::registry::{resolve_designs, DESIGN_FAMILIES};
use fc_sim::DesignSpec;
use fc_trace::WorkloadKind;

use crate::emit;
use crate::executor::SweepEngine;
use crate::monitor::ServiceMonitor;
use crate::scale::RunScale;
use crate::spec::SweepSpec;

/// Bounds (milliseconds) of the request-latency histograms. Serve
/// requests span four orders of magnitude — memoized answers in
/// single-digit ms, cold full-scale grids in the tens of seconds — so
/// the buckets follow a 1-2-5 decade ladder.
const LATENCY_BOUNDS_MS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000,
];

/// Spool-mode knobs for [`serve_spool`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Milliseconds between spool-directory scans.
    pub poll_ms: u64,
    /// Process the requests currently in the spool, then return
    /// (instead of polling forever) — the CI-friendly mode.
    pub once: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            poll_ms: 200,
            once: false,
        }
    }
}

/// What a serve loop did, summed over every request it handled.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeTotals {
    /// Requests handled (including ones answered with an error).
    pub requests: u64,
    /// Requests that failed to parse or validate.
    pub errors: u64,
    /// Sweep points returned across all requests.
    pub points: u64,
    /// Points that required a fresh simulation.
    pub fresh: u64,
}

/// One parsed grid request.
struct ServeRequest {
    id: String,
    spec: SweepSpec,
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    WorkloadKind::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name.trim()))
        .ok_or_else(|| {
            format!(
                "unknown workload `{name}`; pick from: {}",
                WorkloadKind::ALL.map(|w| w.name()).join(", ")
            )
        })
}

fn parse_scale(name: &str) -> Result<RunScale, String> {
    match name {
        "quick" => Ok(RunScale::quick()),
        "full" => Ok(RunScale::full()),
        "tiny" => Ok(RunScale::tiny()),
        "long" => Ok(RunScale::long()),
        other => Err(format!("unknown scale `{other}`")),
    }
}

/// The design list a `grid` preset expands to (the serve-side mirror
/// of the CLI's presets; `designs` in the request overrides this).
fn preset_design_list(grid: &str) -> Result<String, String> {
    match grid {
        "fig4" => Ok("page".to_string()),
        "fig5" => Ok("baseline,page,footprint,block".to_string()),
        "fig67" => Ok("baseline,ideal,block,page,footprint".to_string()),
        "designspace" => Ok(DESIGN_FAMILIES
            .iter()
            .map(|f| f.name)
            .collect::<Vec<_>>()
            .join(",")),
        other => Err(format!(
            "unknown grid `{other}` (serve knows fig4 | fig5 | fig67 | designspace)"
        )),
    }
}

/// The request `id`, recovered on a best-effort basis so even a
/// malformed request gets an addressable error response.
fn request_id(v: &JsonValue) -> String {
    v.get("id")
        .and_then(|x| x.as_str().ok())
        .unwrap_or_default()
        .to_string()
}

fn parse_request(v: &JsonValue) -> Result<ServeRequest, String> {
    let id = request_id(v);

    let capacities: Vec<u64> = match v.get("capacities") {
        None => vec![64, 128, 256, 512],
        Some(JsonValue::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let mb = item.as_u64()?;
                if mb == 0 {
                    return Err("capacities must be at least 1 MB".to_string());
                }
                out.push(mb);
            }
            out
        }
        Some(other) => return Err(format!("expected capacities array, got {other:?}")),
    };

    let workloads: Vec<WorkloadKind> = match v.get("workloads") {
        None => WorkloadKind::ALL.to_vec(),
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|item| parse_workload(item.as_str()?))
            .collect::<Result<_, String>>()?,
        Some(other) => return Err(format!("expected workloads array, got {other:?}")),
    };

    let design_list = match (v.get("designs"), v.get("grid")) {
        (Some(list), _) => list.as_str()?.to_string(),
        (None, Some(grid)) => preset_design_list(grid.as_str()?)?,
        (None, None) => preset_design_list("designspace")?,
    };
    let designs: Vec<DesignSpec> = resolve_designs(&design_list, &capacities)?;

    let scale = match v.get("scale") {
        None => RunScale::quick(),
        Some(s) => parse_scale(s.as_str()?)?,
    };
    let seed = match v.get("seed") {
        None => SweepSpec::DEFAULT_SEED,
        Some(s) => s.as_u64()?,
    };

    let spec = SweepSpec::new(scale)
        .with_seed(seed)
        .grid(&workloads, &designs)
        .dedup();
    Ok(ServeRequest { id, spec })
}

/// The error taxonomy: what kind of failure a request line produced.
/// Each kind has its own counter (`serve.errors.<kind>`) next to the
/// undifferentiated `serve.errors` total, so a scrape distinguishes
/// garbage input (`parse`) from well-formed-but-invalid grids (`spec`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ErrorKind {
    /// The line was not valid JSON at all.
    Parse,
    /// The JSON parsed but the request failed validation.
    Spec,
}

impl ErrorKind {
    fn counter(self) -> &'static str {
        match self {
            ErrorKind::Parse => "serve.errors.parse",
            ErrorKind::Spec => "serve.errors.spec",
        }
    }
}

fn write_error(
    out: &mut impl Write,
    id: &str,
    kind: ErrorKind,
    error: &str,
    totals: &mut ServeTotals,
) -> std::io::Result<()> {
    metrics::counter("serve.errors").add(1);
    metrics::counter(kind.counter()).add(1);
    totals.errors += 1;
    writeln!(
        out,
        "{{\"type\": \"error\", \"id\": \"{}\", \"error\": \"{}\"}}",
        escape(id),
        escape(error)
    )
}

/// Handles one request line: parse, run the diffed grid, stream the
/// per-point records and the summary. With a [`ServiceMonitor`], also
/// feeds the heartbeat and (when armed) the slow-request capture.
fn handle_line(
    engine: &SweepEngine,
    line: &str,
    out: &mut impl Write,
    totals: &mut ServeTotals,
    obs: Option<&ServiceMonitor>,
) -> std::io::Result<()> {
    metrics::counter("serve.requests").add(1);
    totals.requests += 1;
    if let Some(m) = obs {
        m.note_request();
    }
    let mark = obs.and_then(|m| m.request_mark());
    let started = std::time::Instant::now();
    let result = answer_line(engine, line, out, totals);
    let elapsed_ms = started.elapsed().as_millis() as u64;
    // The request tag must not leak onto spans recorded between
    // requests (watcher ticks, spool scans).
    trace::set_request(None);
    if let Some(m) = obs {
        let id = result.as_ref().map(|id| id.as_str()).unwrap_or("");
        m.finish_request(id, elapsed_ms, mark);
    }
    result.map(|_| ())
}

/// The request-scoped body of [`handle_line`]; returns the request id
/// (best-effort, empty for unparseable lines).
fn answer_line(
    engine: &SweepEngine,
    line: &str,
    out: &mut impl Write,
    totals: &mut ServeTotals,
) -> std::io::Result<String> {
    let parsed = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => {
            write_error(
                out,
                "",
                ErrorKind::Parse,
                &format!("bad request JSON: {e}"),
                totals,
            )?;
            return Ok(String::new());
        }
    };
    let id = request_id(&parsed);
    let request = match parse_request(&parsed) {
        Ok(r) => r,
        Err(e) => {
            write_error(out, &id, ErrorKind::Spec, &e, totals)?;
            return Ok(id);
        }
    };

    // Tag every span the request produces — including executor and
    // store spans on worker threads — with the request id.
    trace::set_request(Some(&request.id));
    let _span = trace::span_with("serve-request", "serve", || {
        format!("{} ({} points)", request.id, request.spec.len())
    });
    let started = std::time::Instant::now();
    let results = engine.run_spec(&request.spec);
    let wall_secs = started.elapsed().as_secs_f64();

    let fresh = results.iter().filter(|r| !r.memoized).count();
    metrics::counter("serve.points").add(results.len() as u64);
    metrics::counter("serve.fresh_points").add(fresh as u64);
    // Fresh and fully-memoized requests live in different latency
    // regimes (simulation vs store lookups); mixing them in one
    // histogram would bury regressions in either.
    let latency = if fresh > 0 {
        metrics::histogram("serve.request_latency_ms.fresh", LATENCY_BOUNDS_MS)
    } else {
        metrics::histogram("serve.request_latency_ms.memoized", LATENCY_BOUNDS_MS)
    };
    latency.record((wall_secs * 1000.0) as u64);
    totals.points += results.len() as u64;
    totals.fresh += fresh as u64;

    for r in &results {
        writeln!(
            out,
            "{{\"type\": \"point\", \"id\": \"{}\", \"fresh\": {}, \"point\": {}}}",
            escape(&request.id),
            !r.memoized,
            emit::point_record_json(r)
        )?;
    }
    let generation = match engine.store().generation() {
        Some(g) => g.to_string(),
        None => "null".to_string(),
    };
    writeln!(
        out,
        "{{\"type\": \"summary\", \"id\": \"{}\", \"points\": {}, \"fresh\": {}, \
         \"wall_secs\": {}, \"store_generation\": {}}}",
        escape(&request.id),
        results.len(),
        fresh,
        wall_secs,
        generation
    )?;
    Ok(request.id)
}

/// Serves grid requests from `input` (one JSON object per line) until
/// EOF, streaming responses to `out`. This is `fc_sweep serve` reading
/// stdin; it is also directly testable with in-memory readers.
pub fn serve_jsonl<R: BufRead, W: Write>(
    engine: &SweepEngine,
    input: R,
    out: W,
) -> std::io::Result<ServeTotals> {
    serve_jsonl_observed(engine, input, out, None)
}

/// [`serve_jsonl`] with an optional [`ServiceMonitor`]: each request
/// feeds the heartbeat's liveness numbers and, when slow capture is
/// armed, its span buffer.
pub fn serve_jsonl_observed<R: BufRead, W: Write>(
    engine: &SweepEngine,
    input: R,
    mut out: W,
    obs: Option<&ServiceMonitor>,
) -> std::io::Result<ServeTotals> {
    let mut totals = ServeTotals::default();
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        handle_line(engine, trimmed, &mut out, &mut totals, obs)?;
        out.flush()?;
    }
    Ok(totals)
}

/// Serves grid requests from a spool directory: each `*.json` file in
/// `dir` holds one or more request lines; responses land atomically in
/// `dir/done/<name>.jsonl` and the request file is removed once
/// answered. With [`ServeOptions::once`] the current spool contents
/// are processed and the function returns; otherwise it polls forever.
pub fn serve_spool(
    engine: &SweepEngine,
    dir: &Path,
    opts: &ServeOptions,
) -> std::io::Result<ServeTotals> {
    serve_spool_observed(engine, dir, opts, None)
}

/// [`serve_spool`] with an optional [`ServiceMonitor`] (see
/// [`serve_jsonl_observed`]).
pub fn serve_spool_observed(
    engine: &SweepEngine,
    dir: &Path,
    opts: &ServeOptions,
    obs: Option<&ServiceMonitor>,
) -> std::io::Result<ServeTotals> {
    std::fs::create_dir_all(dir)?;
    let done = dir.join("done");
    std::fs::create_dir_all(&done)?;
    let mut totals = ServeTotals::default();
    loop {
        let mut pending: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
            .collect();
        // Deterministic service order regardless of directory order.
        pending.sort();
        for path in pending {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "request".to_string());
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[fc_sweep serve] cannot read {}: {e}", path.display());
                    continue;
                }
            };
            let mut buf: Vec<u8> = Vec::new();
            for line in text.lines() {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                handle_line(engine, trimmed, &mut buf, &mut totals, obs)?;
            }
            // Atomic: a reader of done/ never sees a half-written
            // response file, even if this process is killed.
            fc_types::atomic_write(&done.join(format!("{stem}.jsonl")), &buf)?;
            std::fs::remove_file(&path)?;
        }
        if opts.once {
            return Ok(totals);
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.poll_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn engine() -> SweepEngine {
        SweepEngine::new().with_threads(2).quiet()
    }

    fn request(id: &str) -> String {
        format!(
            "{{\"id\": \"{id}\", \"designs\": \"baseline,footprint\", \
             \"capacities\": [64], \"workloads\": [\"web search\"], \
             \"scale\": \"tiny\"}}"
        )
    }

    #[test]
    fn serves_points_and_summary() {
        let engine = engine();
        let mut out = Vec::new();
        let totals = serve_jsonl(&engine, Cursor::new(request("r1")), &mut out).unwrap();
        assert_eq!(totals.requests, 1);
        assert_eq!(totals.errors, 0);
        assert_eq!(totals.points, 2);
        assert_eq!(totals.fresh, 2);

        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 points + 1 summary: {text}");
        for line in &lines {
            JsonValue::parse(line).expect("every response line is valid JSON");
        }
        let summary = JsonValue::parse(lines[2]).unwrap();
        assert_eq!(summary.field("type").unwrap().as_str().unwrap(), "summary");
        assert_eq!(summary.field("id").unwrap().as_str().unwrap(), "r1");
        assert_eq!(summary.field("points").unwrap().as_u64().unwrap(), 2);
        assert_eq!(summary.field("fresh").unwrap().as_u64().unwrap(), 2);
        // In-memory store: no generation.
        assert_eq!(*summary.field("store_generation").unwrap(), JsonValue::Null);
    }

    #[test]
    fn second_request_is_all_memoized() {
        let engine = engine();
        let input = format!("{}\n{}\n", request("cold"), request("warm"));
        let mut out = Vec::new();
        let totals = serve_jsonl(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.points, 4);
        assert_eq!(totals.fresh, 2, "second request hits the memo store");

        let text = String::from_utf8(out).unwrap();
        let warm_points: Vec<JsonValue> = text
            .lines()
            .map(|l| JsonValue::parse(l).unwrap())
            .filter(|v| {
                v.field("id").unwrap().as_str().unwrap() == "warm"
                    && v.field("type").unwrap().as_str().unwrap() == "point"
            })
            .collect();
        assert_eq!(warm_points.len(), 2);
        assert!(warm_points
            .iter()
            .all(|p| !p.field("fresh").unwrap().as_bool().unwrap()));
    }

    #[test]
    fn bad_requests_get_error_responses_not_panics() {
        let engine = engine();
        let input = "not json at all\n\
                     {\"id\": \"x\", \"scale\": \"galactic\"}\n\
                     {\"id\": \"y\", \"workloads\": [\"no such workload\"]}\n\
                     {\"id\": \"z\", \"grid\": \"fig99\"}\n";
        let mut out = Vec::new();
        let totals = serve_jsonl(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(totals.requests, 4);
        assert_eq!(totals.errors, 4);
        assert_eq!(totals.points, 0);
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            let v = JsonValue::parse(line).unwrap();
            assert_eq!(v.field("type").unwrap().as_str().unwrap(), "error");
        }
        // Errors carry the request id when one was parseable.
        assert!(text.contains("\"id\": \"x\""));
    }

    #[test]
    fn error_taxonomy_splits_parse_from_spec() {
        let before = metrics::snapshot();
        let engine = engine();
        let input = "definitely not json\n{\"id\": \"s\", \"scale\": \"galactic\"}\n";
        let mut out = Vec::new();
        let totals = serve_jsonl(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(totals.errors, 2);
        // The registry is process-global and tests run in parallel, so
        // assert the delta floor, not an exact count.
        let delta = metrics::snapshot().delta(&before);
        assert!(delta.counter("serve.errors.parse").unwrap_or(0) >= 1);
        assert!(delta.counter("serve.errors.spec").unwrap_or(0) >= 1);
        assert!(delta.counter("serve.errors").unwrap_or(0) >= 2);
    }

    #[test]
    fn answered_requests_record_latency_observations() {
        let before = metrics::snapshot();
        let engine = engine();
        let input = format!("{}\n{}\n", request("lat-cold"), request("lat-warm"));
        let mut out = Vec::new();
        serve_jsonl(&engine, Cursor::new(input), &mut out).unwrap();
        let delta = metrics::snapshot().delta(&before);
        let fresh = delta
            .histograms
            .get("serve.request_latency_ms.fresh")
            .map(|h| h.count)
            .unwrap_or(0);
        let memoized = delta
            .histograms
            .get("serve.request_latency_ms.memoized")
            .map(|h| h.count)
            .unwrap_or(0);
        assert!(fresh >= 1, "cold request observes the fresh histogram");
        assert!(
            memoized >= 1,
            "warm request observes the memoized histogram"
        );
    }

    #[test]
    fn spool_mode_answers_and_clears_requests() {
        let dir = std::env::temp_dir().join(format!(
            "fc-serve-spool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("req-a.json"), request("a")).unwrap();

        let engine = engine();
        let totals = serve_spool(
            &engine,
            &dir,
            &ServeOptions {
                once: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(totals.requests, 1);
        assert_eq!(totals.points, 2);
        assert!(!dir.join("req-a.json").exists(), "request consumed");
        let answered = std::fs::read_to_string(dir.join("done/req-a.jsonl")).unwrap();
        assert_eq!(answered.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
