//! Shared synthesized traces.
//!
//! Within a sweep, every design evaluated on a workload replays the
//! same record stream (the point seed is a function of the workload
//! only — see [`SweepPoint::seed`](crate::SweepPoint::seed)). The lab
//! used to re-synthesize that stream for every (workload, design) pair;
//! this cache synthesizes it once per (workload, cores, seed) and hands
//! out shared slices, falling back to streaming synthesis for runs
//! whose record budget would not fit in memory.
//!
//! Memory is bounded twice: a per-entry budget (requests beyond it
//! stream instead of caching) and an aggregate budget across entries
//! (least-recently-used streams are evicted once the sweep moves on to
//! other workloads; in-flight readers keep their `Arc` until they
//! finish, so eviction never invalidates a running simulation).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fc_trace::{TraceGenerator, TraceRecord, WorkloadKind};

type EntryKey = (WorkloadKind, u8, u64);

/// One workload's cached stream: the generator persists alongside the
/// records so extending the prefix never re-synthesizes it.
struct CachedTrace {
    generator: TraceGenerator,
    records: Arc<Vec<TraceRecord>>,
}

/// Map-level bookkeeping, all guarded by one lock: the entries plus the
/// per-entry sizes and recency stamps eviction decides by (sizes are
/// mirrored here so eviction never needs an entry's own lock).
#[derive(Default)]
struct Index {
    entries: HashMap<EntryKey, Arc<Mutex<CachedTrace>>>,
    sizes: HashMap<EntryKey, usize>,
    last_use: HashMap<EntryKey, u64>,
    clock: u64,
}

/// A concurrent per-(workload, cores, seed) trace prefix cache.
pub struct TraceCache {
    budget_records: usize,
    aggregate_budget_records: usize,
    index: Mutex<Index>,
    synthesized: AtomicU64,
    shared: AtomicU64,
}

impl TraceCache {
    /// Default per-entry budget: ~4M records ≈ 100 MB — covers every
    /// quick-scale and test-scale run and the small-capacity full-scale
    /// runs; longer runs stream instead.
    pub const DEFAULT_BUDGET: usize = 4_000_000;

    /// Default aggregate budget across all entries (~3 workloads' worth
    /// of full entries); least-recently-used entries beyond it are
    /// evicted and re-synthesized if ever needed again.
    pub const DEFAULT_AGGREGATE_BUDGET: usize = 3 * Self::DEFAULT_BUDGET;

    /// A cache storing at most `budget_records` records per entry;
    /// longer requests return `None` (callers stream-synthesize).
    pub fn new(budget_records: usize) -> Self {
        Self::with_aggregate_budget(budget_records, budget_records.saturating_mul(3))
    }

    /// A cache with explicit per-entry and aggregate record budgets.
    pub fn with_aggregate_budget(budget_records: usize, aggregate_budget_records: usize) -> Self {
        Self {
            budget_records,
            aggregate_budget_records: aggregate_budget_records.max(budget_records),
            index: Mutex::new(Index::default()),
            synthesized: AtomicU64::new(0),
            shared: AtomicU64::new(0),
        }
    }

    /// The shared record prefix of length `len` for a workload stream,
    /// or `None` when `len` exceeds the cache budget.
    pub fn records(
        &self,
        workload: WorkloadKind,
        cores: u8,
        seed: u64,
        len: u64,
    ) -> Option<Arc<Vec<TraceRecord>>> {
        let len = usize::try_from(len).ok()?;
        if len > self.budget_records {
            return None;
        }
        let key: EntryKey = (workload, cores, seed);
        let entry = {
            let mut index = self.index.lock().expect("trace cache index");
            index.clock += 1;
            let stamp = index.clock;
            index.last_use.insert(key, stamp);
            Arc::clone(index.entries.entry(key).or_insert_with(|| {
                Arc::new(Mutex::new(CachedTrace {
                    generator: TraceGenerator::new(workload, cores, seed),
                    records: Arc::new(Vec::new()),
                }))
            }))
        };
        let mut cached = entry.lock().expect("trace cache entry");
        if cached.records.len() < len {
            let missing = len - cached.records.len();
            let _span = fc_obs::trace::span_with("synthesis", "sweep", || {
                format!("{workload:?} +{missing} records")
            });
            let CachedTrace { generator, records } = &mut *cached;
            // Readers holding earlier Arcs keep their (shorter) prefix;
            // `make_mut` clones only while such readers exist.
            let records = Arc::make_mut(records);
            records.reserve(missing);
            for _ in 0..missing {
                records.push(generator.next().expect("generator is infinite"));
            }
            self.synthesized
                .fetch_add(missing as u64, Ordering::Relaxed);
            let new_len = records.len();
            let shared = Arc::clone(&cached.records);
            drop(cached);
            self.note_size_and_evict(key, new_len);
            Some(shared)
        } else {
            self.shared.fetch_add(1, Ordering::Relaxed);
            Some(Arc::clone(&cached.records))
        }
    }

    /// Records `key`'s new size and evicts least-recently-used *other*
    /// entries while the aggregate exceeds the budget. Only the index
    /// lock is taken, so this cannot deadlock against entry locks; a
    /// removed entry's storage is freed when its last reader drops.
    fn note_size_and_evict(&self, key: EntryKey, new_len: usize) {
        let mut index = self.index.lock().expect("trace cache index");
        index.sizes.insert(key, new_len);
        let mut total: usize = index.sizes.values().sum();
        while total > self.aggregate_budget_records {
            let victim = index
                .entries
                .keys()
                .filter(|k| **k != key)
                .min_by_key(|k| index.last_use.get(*k).copied().unwrap_or(0))
                .copied();
            let Some(victim) = victim else {
                break; // only the in-use entry remains
            };
            index.entries.remove(&victim);
            index.last_use.remove(&victim);
            total -= index.sizes.remove(&victim).unwrap_or(0);
        }
    }

    /// Total records synthesized into the cache so far (re-synthesis
    /// after eviction counts again).
    pub fn records_synthesized(&self) -> u64 {
        self.synthesized.load(Ordering::Relaxed)
    }

    /// Requests fully served from already-synthesized records.
    pub fn shared_hits(&self) -> u64 {
        self.shared.load(Ordering::Relaxed)
    }

    /// Records currently resident across all entries.
    pub fn resident_records(&self) -> usize {
        self.index
            .lock()
            .expect("trace cache index")
            .sizes
            .values()
            .sum()
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::with_aggregate_budget(Self::DEFAULT_BUDGET, Self::DEFAULT_AGGREGATE_BUDGET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_is_stable_under_extension() {
        let cache = TraceCache::new(10_000);
        let short = cache
            .records(WorkloadKind::WebSearch, 4, 9, 100)
            .expect("within budget");
        let long = cache
            .records(WorkloadKind::WebSearch, 4, 9, 500)
            .expect("within budget");
        assert_eq!(&long[..100], &short[..]);
        assert_eq!(cache.records_synthesized(), 500);
    }

    #[test]
    fn repeated_requests_share_synthesis() {
        let cache = TraceCache::new(10_000);
        let a = cache.records(WorkloadKind::MapReduce, 4, 1, 300).unwrap();
        let b = cache.records(WorkloadKind::MapReduce, 4, 1, 300).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.records_synthesized(), 300);
        assert_eq!(cache.shared_hits(), 1);
    }

    #[test]
    fn matches_fresh_generator_stream() {
        let cache = TraceCache::new(10_000);
        let cached = cache.records(WorkloadKind::DataServing, 4, 7, 200).unwrap();
        let fresh: Vec<_> = TraceGenerator::new(WorkloadKind::DataServing, 4, 7)
            .take(200)
            .collect();
        assert_eq!(&cached[..], &fresh[..]);
    }

    #[test]
    fn over_budget_streams() {
        let cache = TraceCache::new(100);
        assert!(cache.records(WorkloadKind::WebSearch, 4, 9, 101).is_none());
        assert!(cache.records(WorkloadKind::WebSearch, 4, 9, 100).is_some());
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let cache = TraceCache::new(10_000);
        let a = cache.records(WorkloadKind::WebSearch, 4, 1, 50).unwrap();
        let b = cache.records(WorkloadKind::WebSearch, 4, 2, 50).unwrap();
        assert_ne!(&a[..], &b[..]);
    }

    #[test]
    fn aggregate_budget_evicts_least_recently_used() {
        // Per-entry 100, aggregate 150: the second workload's entry
        // pushes the first out.
        let cache = TraceCache::with_aggregate_budget(100, 150);
        cache.records(WorkloadKind::WebSearch, 4, 1, 100).unwrap();
        assert_eq!(cache.resident_records(), 100);
        cache.records(WorkloadKind::MapReduce, 4, 1, 100).unwrap();
        assert_eq!(cache.resident_records(), 100, "WebSearch evicted");

        // The evicted stream re-synthesizes identically on demand.
        let again = cache.records(WorkloadKind::WebSearch, 4, 1, 50).unwrap();
        let fresh: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 1)
            .take(50)
            .collect();
        assert_eq!(&again[..], &fresh[..]);
    }

    #[test]
    fn in_use_entry_is_never_evicted() {
        let cache = TraceCache::with_aggregate_budget(100, 100);
        let held = cache.records(WorkloadKind::WebSearch, 4, 1, 100).unwrap();
        // A second entry overflows the aggregate; the older entry is
        // evicted from the map, but our Arc stays valid.
        cache.records(WorkloadKind::MapReduce, 4, 1, 100).unwrap();
        assert_eq!(held.len(), 100);
        assert_eq!(cache.resident_records(), 100);
    }
}
