//! Service-side observability for `fc_sweep serve`.
//!
//! A [`ServiceMonitor`] owns everything a long-running serve loop
//! publishes about itself under one `--metrics-dir`:
//!
//! * `metrics.prom` — the registry's cumulative totals in Prometheus
//!   text format ([`fc_obs::expo::prometheus_text`]), rewritten
//!   atomically on every [`tick`](ServiceMonitor::tick).
//! * `health.json` — the heartbeat ([`fc_obs::Health`]): coarse state
//!   (starting/serving/degraded/draining), store generation, uptime,
//!   last-request age and request count.
//! * `events.jsonl` — append-only structured events: every health
//!   transition, every watchdog breach, every slow-request capture.
//! * `slow/` — ring-buffered Chrome traces of requests that exceeded
//!   the slow threshold (see
//!   [`with_slow_capture`](ServiceMonitor::with_slow_capture)).
//!
//! Ticks are driven either by a watcher thread ([`spawn_watcher`]) on
//! a wall-clock cadence, or manually in tests with a
//! [`ManualClock`](fc_types::ManualClock) — the monitor takes an
//! explicit [`Clock`] and never reads wall time itself, so every state
//! transition is deterministic under test.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fc_obs::expo::{self, Health, HealthState, EXPOSITION_FILE, HEALTH_FILE};
use fc_obs::{json_escape, metrics, trace, MetricsWindow, Watchdog};
use fc_types::Clock;

/// The append-only structured-event log inside a metrics directory.
pub const EVENTS_FILE: &str = "events.jsonl";

/// Subdirectory of the metrics directory holding slow-request traces.
pub const SLOW_DIR: &str = "slow";

/// Default rolling-window width the watchdog evaluates over.
pub const DEFAULT_WINDOW_MS: u64 = 60_000;

/// Default number of slow-request traces kept (oldest pruned first).
pub const DEFAULT_SLOW_KEEP: usize = 8;

/// The mutable half of the monitor, guarded by one lock: the rolling
/// window, the watchdog and the current health state always change
/// together (a tick reads the window, consults the watchdog, and may
/// flip the state).
struct MonitorInner {
    window: MetricsWindow,
    watchdog: Option<Watchdog>,
    state: HealthState,
    note: Option<String>,
}

/// The live status surface of one serve process. See the module docs
/// for the files it maintains.
pub struct ServiceMonitor {
    dir: PathBuf,
    clock: Arc<dyn Clock>,
    started_ms: u64,
    inner: Mutex<MonitorInner>,
    requests: AtomicU64,
    /// Clock reading of the last accepted request; `u64::MAX` = never.
    last_request_ms: AtomicU64,
    generation: Mutex<Option<u64>>,
    /// Requests slower than this dump their span buffer (None = off).
    slow_ms: Option<u64>,
    slow_keep: usize,
    slow_seq: AtomicU64,
}

impl ServiceMonitor {
    /// A monitor writing into `dir` (created if missing), timestamped
    /// by `clock`. The initial `health.json` (state `starting`) is
    /// written immediately, so a scraper sees the process the moment
    /// it is up — before the engine or store are ready.
    pub fn new(dir: &Path, clock: Arc<dyn Clock>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let started_ms = clock.now_ms();
        let window = MetricsWindow::new(DEFAULT_WINDOW_MS, Arc::clone(&clock));
        let monitor = Self {
            dir: dir.to_path_buf(),
            clock,
            started_ms,
            inner: Mutex::new(MonitorInner {
                window,
                watchdog: None,
                state: HealthState::Starting,
                note: None,
            }),
            requests: AtomicU64::new(0),
            last_request_ms: AtomicU64::new(u64::MAX),
            generation: Mutex::new(None),
            slow_ms: None,
            slow_keep: DEFAULT_SLOW_KEEP,
            slow_seq: AtomicU64::new(0),
        };
        monitor.write_health()?;
        Ok(monitor)
    }

    /// Arms the throughput watchdog with `watchdog` (build one from a
    /// [`FloorSpec`](fc_obs::FloorSpec) parsed out of
    /// `bench_floor.json`). Sustained below-floor windows flip the
    /// health state to `degraded`.
    pub fn with_watchdog(self, watchdog: Watchdog) -> Self {
        self.inner.lock().expect("monitor poisoned").watchdog = Some(watchdog);
        self
    }

    /// Enables slow-request capture: tracing is switched on, and any
    /// request slower than `slow_ms` milliseconds retroactively dumps
    /// its span buffer as a standalone Chrome trace under
    /// `<dir>/slow/`, keeping at most `keep` traces (oldest pruned).
    ///
    /// Capture *consumes* the span stream per request (that is what
    /// keeps the trace sink bounded in a long-running serve), so it
    /// composes poorly with `--trace-out`'s whole-run timeline.
    pub fn with_slow_capture(mut self, slow_ms: u64, keep: usize) -> Self {
        trace::enable();
        self.slow_ms = Some(slow_ms);
        self.slow_keep = keep.max(1);
        self
    }

    /// Records the durable-store generation reported in `health.json`.
    pub fn set_generation(&self, generation: Option<u64>) {
        *self.generation.lock().expect("monitor poisoned") = generation;
    }

    /// Transitions `starting` → `serving` (engine and store are ready).
    pub fn mark_serving(&self) {
        self.transition(HealthState::Serving, None);
    }

    /// Transitions into `draining` (clean shutdown under way).
    pub fn mark_draining(&self) {
        self.transition(HealthState::Draining, None);
    }

    /// Notes one accepted request (heartbeat liveness numbers).
    pub fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.last_request_ms
            .store(self.clock.now_ms(), Ordering::Relaxed);
    }

    /// A trace-sink mark opening a request's capture window, when slow
    /// capture is armed. Pass it back to [`finish_request`](Self::finish_request).
    pub fn request_mark(&self) -> Option<usize> {
        if self.slow_ms.is_some() && trace::enabled() {
            Some(trace::mark())
        } else {
            None
        }
    }

    /// Closes a request's capture window: slower-than-threshold
    /// requests dump their span buffer under `slow/`; fast ones just
    /// drain it (the sink must not grow for the lifetime of the
    /// service). A no-op when `mark` is `None`.
    pub fn finish_request(&self, id: &str, elapsed_ms: u64, mark: Option<usize>) {
        let Some(mark) = mark else {
            return;
        };
        let (events, lanes) = trace::take_since(mark);
        let Some(slow_ms) = self.slow_ms else {
            return;
        };
        if elapsed_ms < slow_ms {
            return;
        }
        metrics::counter("serve.slow_requests").inc();
        let seq = self.slow_seq.fetch_add(1, Ordering::Relaxed);
        let slow_dir = self.dir.join(SLOW_DIR);
        if std::fs::create_dir_all(&slow_dir).is_err() {
            return;
        }
        let name = format!("slow-{seq:06}-{}.trace.json", sanitize_stem(id));
        let json = trace::render_chrome_trace(&events, &lanes);
        if expo::write_atomic(&slow_dir.join(&name), &json).is_ok() {
            self.append_event(&format!(
                "{{\"event\": \"slow-request\", \"id\": \"{}\", \
                 \"elapsed_ms\": {elapsed_ms}, \"trace\": \"{SLOW_DIR}/{name}\"}}",
                json_escape(id)
            ));
        }
        self.prune_slow(&slow_dir);
    }

    /// One monitoring beat: rotates the rolling window, runs the
    /// watchdog, applies `serving` ⇄ `degraded` transitions, and
    /// rewrites the exposition and heartbeat atomically.
    pub fn tick(&self) {
        let mut inner = self.inner.lock().expect("monitor poisoned");
        let MonitorInner {
            window, watchdog, ..
        } = &mut *inner;
        window.tick();
        if let Some(dog) = watchdog.as_mut() {
            let verdict = dog.evaluate(window);
            for b in &verdict.breaches {
                self.append_event(&format!(
                    "{{\"event\": \"watchdog-breach\", \"design\": \"{}\", \
                     \"observed_per_sec\": {:.3}, \"floor_per_sec\": {:.3}, \
                     \"consecutive\": {}}}",
                    json_escape(&b.design),
                    b.observed,
                    b.floor,
                    verdict.consecutive_breaches
                ));
            }
            match inner.state {
                HealthState::Serving if verdict.degraded => {
                    let worst = verdict
                        .breaches
                        .first()
                        .map(|b| {
                            format!(
                                "{}: {:.1} pts/s below floor {:.1} for {} windows",
                                b.design, b.observed, b.floor, verdict.consecutive_breaches
                            )
                        })
                        .unwrap_or_else(|| "below floor".to_string());
                    self.transition_locked(&mut inner, HealthState::Degraded, Some(worst));
                }
                HealthState::Degraded if !verdict.degraded => {
                    self.transition_locked(&mut inner, HealthState::Serving, None);
                }
                _ => {}
            }
        }
        let snap = metrics::snapshot();
        let _ = expo::write_atomic(
            &self.dir.join(EXPOSITION_FILE),
            &expo::prometheus_text(&snap),
        );
        let _ = self.write_health_locked(&inner);
    }

    /// The current heartbeat (what `health.json` holds).
    pub fn health(&self) -> Health {
        let inner = self.inner.lock().expect("monitor poisoned");
        self.health_locked(&inner)
    }

    /// The metrics directory this monitor writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn health_locked(&self, inner: &MonitorInner) -> Health {
        let now = self.clock.now_ms();
        let last = self.last_request_ms.load(Ordering::Relaxed);
        Health {
            state: inner.state,
            generation: *self.generation.lock().expect("monitor poisoned"),
            uptime_secs: now.saturating_sub(self.started_ms) as f64 / 1000.0,
            last_request_age_secs: (last != u64::MAX)
                .then(|| now.saturating_sub(last) as f64 / 1000.0),
            requests: self.requests.load(Ordering::Relaxed),
            note: inner.note.clone(),
        }
    }

    fn write_health(&self) -> std::io::Result<()> {
        let inner = self.inner.lock().expect("monitor poisoned");
        self.write_health_locked(&inner)
    }

    fn write_health_locked(&self, inner: &MonitorInner) -> std::io::Result<()> {
        expo::write_atomic(
            &self.dir.join(HEALTH_FILE),
            &self.health_locked(inner).to_json(),
        )
    }

    fn transition(&self, to: HealthState, note: Option<String>) {
        let mut inner = self.inner.lock().expect("monitor poisoned");
        self.transition_locked(&mut inner, to, note);
    }

    fn transition_locked(&self, inner: &mut MonitorInner, to: HealthState, note: Option<String>) {
        if inner.state == to {
            return;
        }
        let from = inner.state;
        inner.state = to;
        inner.note = note;
        self.append_event(&format!(
            "{{\"event\": \"health\", \"from\": \"{from}\", \"to\": \"{to}\", \
             \"uptime_secs\": {:.3}}}",
            self.clock.now_ms().saturating_sub(self.started_ms) as f64 / 1000.0
        ));
        let _ = self.write_health_locked(inner);
    }

    /// Appends one JSON line to `events.jsonl` (best-effort: the event
    /// log must never take the serve loop down).
    fn append_event(&self, line: &str) {
        let path = self.dir.join(EVENTS_FILE);
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Keeps the newest `slow_keep` traces; the sequence number in the
    /// file name makes lexical order chronological.
    fn prune_slow(&self, slow_dir: &Path) {
        let Ok(entries) = std::fs::read_dir(slow_dir) else {
            return;
        };
        let mut names: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        names.sort();
        while names.len() > self.slow_keep {
            let _ = std::fs::remove_file(names.remove(0));
        }
    }
}

/// Maps a request id onto a file-name-safe stem.
fn sanitize_stem(id: &str) -> String {
    let mut out: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .take(48)
        .collect();
    if out.is_empty() {
        out.push_str("request");
    }
    out
}

/// Handle to the background watcher thread: call
/// [`stop`](MonitorWatcher::stop) for a clean join before marking the
/// service draining.
pub struct MonitorWatcher {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl MonitorWatcher {
    /// Signals the watcher to exit and joins it. The monitor ticks one
    /// final time on the way out, so the last window of activity is
    /// on disk.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Spawns the watcher thread: every `cadence_ms` of wall time it ticks
/// `monitor` (window rotation, watchdog, exposition + heartbeat
/// rewrite) until [`MonitorWatcher::stop`] is called.
pub fn spawn_watcher(monitor: Arc<ServiceMonitor>, cadence_ms: u64) -> MonitorWatcher {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let cadence = std::time::Duration::from_millis(cadence_ms.max(10));
    let handle = std::thread::Builder::new()
        .name("fc-monitor".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(cadence);
                monitor.tick();
            }
            monitor.tick();
        })
        .expect("spawn monitor watcher");
    MonitorWatcher { stop, handle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::ManualClock;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fc-monitor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_starting_health_immediately_and_transitions() {
        let dir = tmp_dir("health");
        let clock = Arc::new(ManualClock::at(0));
        let m = ServiceMonitor::new(&dir, Arc::clone(&clock) as Arc<dyn Clock>).unwrap();
        let text = std::fs::read_to_string(dir.join(HEALTH_FILE)).unwrap();
        assert!(text.contains("\"state\": \"starting\""), "{text}");

        clock.advance_ms(2_500);
        m.mark_serving();
        let text = std::fs::read_to_string(dir.join(HEALTH_FILE)).unwrap();
        assert!(text.contains("\"state\": \"serving\""), "{text}");
        assert!(text.contains("\"uptime_secs\": 2.500"), "{text}");

        m.mark_draining();
        assert_eq!(m.health().state, HealthState::Draining);
        let events = std::fs::read_to_string(dir.join(EVENTS_FILE)).unwrap();
        assert!(events.contains("\"from\": \"starting\", \"to\": \"serving\""));
        assert!(events.contains("\"from\": \"serving\", \"to\": \"draining\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tick_writes_exposition_matching_the_registry() {
        let dir = tmp_dir("expo");
        let clock = Arc::new(ManualClock::at(0));
        let m = ServiceMonitor::new(&dir, Arc::clone(&clock) as Arc<dyn Clock>).unwrap();
        metrics::counter("test.monitor.beat").add(3);
        clock.advance_ms(1_000);
        m.tick();
        let on_disk = std::fs::read_to_string(dir.join(EXPOSITION_FILE)).unwrap();
        assert!(on_disk.contains("test_monitor_beat"), "{on_disk}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_liveness_feeds_the_heartbeat() {
        let dir = tmp_dir("live");
        let clock = Arc::new(ManualClock::at(0));
        let m = ServiceMonitor::new(&dir, Arc::clone(&clock) as Arc<dyn Clock>).unwrap();
        assert_eq!(m.health().last_request_age_secs, None);
        clock.advance_ms(1_000);
        m.note_request();
        clock.advance_ms(500);
        let h = m.health();
        assert_eq!(h.requests, 1);
        assert_eq!(h.last_request_age_secs, Some(0.5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_stem_is_file_safe() {
        assert_eq!(sanitize_stem("nightly-1"), "nightly-1");
        assert_eq!(sanitize_stem("../../etc"), "______etc");
        assert_eq!(sanitize_stem(""), "request");
    }
}
