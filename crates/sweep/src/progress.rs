//! Sweep progress reporting.
//!
//! Small grids get the classic line per finished point. Grids larger
//! than [`Progress::SUMMARY_THRESHOLD`] points switch to a rate-limited
//! summary line (points/sec, memo-hit rate, ETA) at most once per
//! [`Progress::SUMMARY_INTERVAL_SECS`], so a long sweep no longer
//! drowns stderr in thousands of per-point lines. Either mode can
//! additionally stream one JSON object per event to a
//! `--progress-jsonl` file for tooling.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fc_sim::json::escape;

/// A shared handle to a `--progress-jsonl` event stream.
pub type ProgressSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// Thread-safe progress counter for one sweep: workers report
/// completions; stderr gets per-point lines (small grids) or
/// rate-limited summaries (large grids), and an optional JSONL sink
/// gets one structured event per point plus a final summary.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    memo: AtomicUsize,
    started: Instant,
    verbose: bool,
    /// Last summary-line emission time (summary mode only).
    last_summary: Mutex<Instant>,
    jsonl: Option<ProgressSink>,
}

impl Progress {
    /// Grids with more points than this report via periodic summary
    /// lines instead of one line per point.
    pub const SUMMARY_THRESHOLD: usize = 200;

    /// Minimum seconds between summary lines.
    pub const SUMMARY_INTERVAL_SECS: f64 = 1.0;

    /// A tracker for `total` points.
    pub fn new(total: usize, verbose: bool) -> Self {
        Self {
            total,
            done: AtomicUsize::new(0),
            memo: AtomicUsize::new(0),
            started: Instant::now(),
            verbose,
            last_summary: Mutex::new(Instant::now()),
            jsonl: None,
        }
    }

    /// Attaches a JSONL event sink (builder-style).
    pub fn with_jsonl(mut self, sink: Option<ProgressSink>) -> Self {
        self.jsonl = sink;
        self
    }

    /// Whether this tracker reports via periodic summaries instead of
    /// per-point lines.
    pub fn summarizes(&self) -> bool {
        self.total > Self::SUMMARY_THRESHOLD
    }

    /// Records one finished point (labelled for the log line).
    pub fn finish_point(&self, label: &str, memoized: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let memo = self.memo.fetch_add(memoized as usize, Ordering::Relaxed) + memoized as usize;
        let elapsed = self.started.elapsed().as_secs_f64();

        if let Some(sink) = &self.jsonl {
            let line = format!(
                "{{\"event\": \"point\", \"done\": {done}, \"total\": {}, \
                 \"label\": \"{}\", \"memoized\": {memoized}, \"secs\": {elapsed:.3}}}\n",
                self.total,
                escape(label)
            );
            if let Ok(mut w) = sink.lock() {
                let _ = w.write_all(line.as_bytes());
            }
        }

        if !self.verbose {
            return;
        }
        if !self.summarizes() {
            let eta = if done > 0 && done < self.total {
                let remaining = elapsed / done as f64 * (self.total - done) as f64;
                format!(", ~{remaining:.0}s left")
            } else {
                String::new()
            };
            let memo = if memoized { " [memo]" } else { "" };
            eprintln!(
                "[sweep] {done}/{} {label}{memo} ({elapsed:.1}s{eta})",
                self.total
            );
            return;
        }

        // Summary mode: the final point always reports; earlier points
        // report at most once per interval. try_lock keeps workers from
        // queueing on the rate-limit clock.
        if done == self.total {
            eprintln!("[sweep] {}", self.summary_line(done, memo, elapsed));
            return;
        }
        if let Ok(mut last) = self.last_summary.try_lock() {
            if last.elapsed().as_secs_f64() >= Self::SUMMARY_INTERVAL_SECS {
                *last = Instant::now();
                eprintln!("[sweep] {}", self.summary_line(done, memo, elapsed));
            }
        }
    }

    /// Writes the final JSONL summary event (a no-op without a sink).
    /// Called once by the executor after every point has finished.
    pub fn finish_run(&self) {
        let Some(sink) = &self.jsonl else {
            return;
        };
        let done = self.done();
        let memo = self.memo_hits();
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let line = format!(
            "{{\"event\": \"summary\", \"total\": {}, \"done\": {done}, \
             \"memo_hits\": {memo}, \"secs\": {elapsed:.3}, \
             \"points_per_sec\": {rate:.3}}}\n",
            self.total
        );
        if let Ok(mut w) = sink.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
    }

    fn summary_line(&self, done: usize, memo: usize, elapsed: f64) -> String {
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let memo_pct = if done > 0 {
            memo as f64 * 100.0 / done as f64
        } else {
            0.0
        };
        let eta = if done > 0 && done < self.total {
            let remaining = elapsed / done as f64 * (self.total - done) as f64;
            format!(", ~{remaining:.0}s left")
        } else {
            String::new()
        };
        format!(
            "{done}/{} ({rate:.1} pts/s, {memo_pct:.0}% memo, {elapsed:.1}s{eta})",
            self.total
        )
    }

    /// Points finished so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Memoized completions so far.
    pub fn memo_hits(&self) -> usize {
        self.memo.load(Ordering::Relaxed)
    }

    /// Points in the sweep.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Seconds since the tracker was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Drop for Progress {
    /// Flushes the JSONL sink: point events are written unflushed for
    /// throughput, and a run that ends without reaching `finish_run`
    /// (an early return, a panic unwinding the engine) must not lose
    /// the buffered tail of its event stream.
    fn drop(&mut self) {
        if let Some(sink) = &self.jsonl {
            if let Ok(mut w) = sink.lock() {
                let _ = w.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_completions() {
        let p = Progress::new(3, false);
        assert_eq!(p.done(), 0);
        p.finish_point("a", false);
        p.finish_point("b", true);
        assert_eq!(p.done(), 2);
        assert_eq!(p.memo_hits(), 1);
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn summary_mode_kicks_in_above_threshold() {
        assert!(!Progress::new(Progress::SUMMARY_THRESHOLD, true).summarizes());
        assert!(Progress::new(Progress::SUMMARY_THRESHOLD + 1, true).summarizes());
    }

    #[test]
    fn summary_line_reports_rate_memo_and_eta() {
        let p = Progress::new(1000, true);
        let line = p.summary_line(500, 250, 10.0);
        assert!(line.contains("500/1000"), "{line}");
        assert!(line.contains("50.0 pts/s"), "{line}");
        assert!(line.contains("50% memo"), "{line}");
        assert!(line.contains("left"), "{line}");
        // The final point drops the ETA.
        assert!(!p.summary_line(1000, 0, 10.0).contains("left"));
    }

    #[test]
    fn jsonl_sink_receives_point_and_summary_events() {
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let sink: ProgressSink = Arc::new(Mutex::new(Box::new(buf.clone())));
        let p = Progress::new(2, false).with_jsonl(Some(sink));
        p.finish_point("ws/fc-3.0", false);
        p.finish_point("ws/page", true);
        p.finish_run();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\": \"point\""));
        assert!(lines[0].contains("\"label\": \"ws/fc-3.0\""));
        assert!(lines[1].contains("\"memoized\": true"));
        assert!(lines[2].contains("\"event\": \"summary\""));
        assert!(lines[2].contains("\"memo_hits\": 1"));
        // Every line parses as standalone JSON.
        for line in lines {
            fc_sim::json::JsonValue::parse(line).expect("valid JSONL");
        }
    }
}
