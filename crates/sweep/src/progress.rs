//! Sweep progress reporting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Thread-safe progress counter for one sweep: workers report
/// completions, and (when verbose) a line per finished point shows
/// position, wall clock and a simple remaining-time estimate.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    started: Instant,
    verbose: bool,
}

impl Progress {
    /// A tracker for `total` points.
    pub fn new(total: usize, verbose: bool) -> Self {
        Self {
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
            verbose,
        }
    }

    /// Records one finished point (labelled for the log line).
    pub fn finish_point(&self, label: &str, memoized: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.verbose {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < self.total {
            let remaining = elapsed / done as f64 * (self.total - done) as f64;
            format!(", ~{remaining:.0}s left")
        } else {
            String::new()
        };
        let memo = if memoized { " [memo]" } else { "" };
        eprintln!(
            "[sweep] {done}/{} {label}{memo} ({elapsed:.1}s{eta})",
            self.total
        );
    }

    /// Points finished so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Points in the sweep.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Seconds since the tracker was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_completions() {
        let p = Progress::new(3, false);
        assert_eq!(p.done(), 0);
        p.finish_point("a", false);
        p.finish_point("b", true);
        assert_eq!(p.done(), 2);
        assert_eq!(p.total(), 3);
    }
}
