//! `fc-sweep` — a declarative, parallel experiment-orchestration engine.
//!
//! The paper's evaluation (Figures 1, 4–9, 12, the ablations and the
//! energy tables) is one large grid of *independent* (design × workload
//! × scale) simulations. This crate turns that observation into the
//! reproduction's scaling substrate:
//!
//! * [`SweepSpec`] — a declarative description of a grid of sweep
//!   points: cross products of [`DesignSpec`]s and [`WorkloadKind`]s at
//!   a [`RunScale`], with per-point [`SimConfig`] overrides.
//! * [`SweepEngine`] — a self-balancing parallel executor: worker
//!   threads claim points from a shared cursor and run each as an independent
//!   [`Simulation`](fc_sim::Simulation). Every point's seed is a pure
//!   function of the point itself, so results are **bit-identical
//!   regardless of thread count or completion order**.
//! * [`ResultStore`] — a sharded, concurrent, memoized result store
//!   keyed by a stable hash of the full point configuration; a point is
//!   simulated at most once per engine, and repeated submissions return
//!   the cached [`SimReport`](fc_sim::SimReport).
//! * [`TraceCache`] — synthesized traces are shared per (workload,
//!   cores, seed): every design replaying the same workload replays the
//!   *same* record stream without re-synthesizing it.
//! * [`durable`] — an on-disk backend for the result store: records
//!   are placed on a consistent-hash ring of shard files
//!   ([`HashRing`]), so results outlive the process and growing the
//!   shard count relocates only ~K/n keys.
//! * [`serve`] — `fc_sweep serve`: a long-running loop that accepts
//!   grid requests as JSONL (stdin or a spool directory), diffs them
//!   against the durable store, and simulates only what's missing.
//! * [`monitor`] / [`status`] — service-grade observability for the
//!   serve loop: Prometheus-style exposition and a `health.json`
//!   heartbeat under `--metrics-dir`, a throughput watchdog against
//!   `bench_floor.json`, slow-request trace capture, and the
//!   `fc_sweep status` one-screen renderer.
//! * [`emit`] — JSON and CSV emitters for result sets, plus the
//!   `fc_sweep` CLI binary that runs grids from the command line.
//!
//! `fc-bench`'s `Lab` and every `experiments::fig*` module build their
//! grids as `SweepSpec`s and submit them here; future scaling work
//! (sharding, multi-backend dispatch, trace services) plugs into the
//! same interfaces.
//!
//! # Examples
//!
//! ```
//! use fc_sim::DesignSpec;
//! use fc_sweep::{RunScale, SweepEngine, SweepSpec};
//! use fc_trace::WorkloadKind;
//!
//! let spec = SweepSpec::new(RunScale::tiny()).grid(
//!     &[WorkloadKind::WebSearch],
//!     &[DesignSpec::baseline(), DesignSpec::footprint(64)],
//! );
//! let engine = SweepEngine::new().with_threads(2).quiet();
//! let results = engine.run_spec(&spec);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.report.insts > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod emit;
mod executor;
pub mod loaded;
pub mod mix;
pub mod monitor;
mod progress;
mod ring;
pub mod sampled;
mod scale;
pub mod serve;
mod spec;
pub mod status;
mod store;
mod trace_cache;

pub use durable::{Durable, StoreValue, DEFAULT_DISK_SHARDS};
pub use executor::{SweepEngine, SweepResult};
pub use loaded::{run_loaded, LoadedGrid, LoadedResult};
pub use mix::{run_mix, MixGrid, MixPoint, MixResult};
pub use monitor::{spawn_watcher, MonitorWatcher, ServiceMonitor};
pub use progress::{Progress, ProgressSink};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use sampled::{
    run_sampled_grid, run_sampled_grid_pit, SampledGrid, SampledPoint, SampledResult,
};
pub use scale::RunScale;
pub use serve::{
    serve_jsonl, serve_jsonl_observed, serve_spool, serve_spool_observed, ServeOptions,
};
pub use spec::{SweepPoint, SweepSpec};
pub use store::{PointKey, ResultStore};
pub use trace_cache::TraceCache;

// Re-exported so sweep callers can describe grids without extra deps.
pub use fc_sample::{Estimate, SamplePlan, SampledReport};
pub use fc_sim::{DesignSpec, ScenarioSpec, SimConfig};
pub use fc_trace::WorkloadKind;
