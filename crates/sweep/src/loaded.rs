//! The loaded-latency sweep: designs × injection rates, in parallel.
//!
//! Each `(design, interval)` point builds a fresh memory system from
//! the spec and injects the same fixed-seed request stream, so —
//! exactly like [`SweepEngine`](crate::SweepEngine) — results are
//! bit-identical for any worker-thread count; only scheduling varies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use fc_sim::loaded::{self, LoadedConfig, LoadedPoint, STANDARD_INTERVALS};
use fc_sim::DesignSpec;

/// Maps a trace-replay [`RunScale`](crate::RunScale) onto the matching
/// loaded-run sizing — the single mapping shared by `fc_sweep --grid
/// loaded` and the bench harness's loaded-latency experiment.
pub fn config_for_scale(scale: crate::RunScale) -> LoadedConfig {
    if scale == crate::RunScale::tiny() {
        LoadedConfig::tiny()
    } else if scale == crate::RunScale::full() {
        LoadedConfig::full()
    } else {
        LoadedConfig::quick()
    }
}

/// A loaded-latency grid: every design measured at every interval.
#[derive(Clone, Debug)]
pub struct LoadedGrid {
    /// Designs under test.
    pub designs: Vec<DesignSpec>,
    /// Injection intervals in core cycles (descending = rising load).
    pub intervals: Vec<u64>,
    /// Shared run sizing (workload, seed, request counts).
    pub config: LoadedConfig,
}

impl LoadedGrid {
    /// The standard curve for `designs` at `config`'s sizing.
    pub fn standard(designs: Vec<DesignSpec>, config: LoadedConfig) -> Self {
        Self {
            designs,
            intervals: STANDARD_INTERVALS.to_vec(),
            config,
        }
    }

    /// Number of points (designs × intervals).
    pub fn len(&self) -> usize {
        self.designs.len() * self.intervals.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One finished loaded-latency point.
#[derive(Clone, Debug)]
pub struct LoadedResult {
    /// The design measured.
    pub design: DesignSpec,
    /// The measured point.
    pub point: LoadedPoint,
}

/// Runs the grid on `threads` workers; results come back grouped by
/// design in grid order (each design's curve ascending in load), and
/// are bit-identical for any thread count.
pub fn run_loaded(grid: &LoadedGrid, threads: usize) -> Vec<LoadedResult> {
    let points: Vec<(usize, u64)> = grid
        .designs
        .iter()
        .enumerate()
        .flat_map(|(d, _)| grid.intervals.iter().map(move |&i| (d, i)))
        .collect();
    let slots: Vec<OnceLock<LoadedPoint>> = points.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);

    let workers = threads.clamp(1, points.len().max(1));
    if workers == 1 {
        for (&(d, interval), slot) in points.iter().zip(&slots) {
            let p = loaded::measure(&grid.designs[d], interval, &grid.config);
            slot.set(p).expect("slot written once");
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(d, interval)) = points.get(index) else {
                        break;
                    };
                    let p = loaded::measure(&grid.designs[d], interval, &grid.config);
                    slots[index].set(p).expect("slot written once");
                });
            }
        });
    }

    points
        .iter()
        .zip(slots)
        .map(|(&(d, _), slot)| LoadedResult {
            design: grid.designs[d],
            point: slot.into_inner().expect("every point ran"),
        })
        .collect()
}

/// Groups results into per-design curves, preserving grid order.
pub fn curves(results: &[LoadedResult]) -> Vec<(DesignSpec, Vec<LoadedPoint>)> {
    let mut out: Vec<(DesignSpec, Vec<LoadedPoint>)> = Vec::new();
    for r in results {
        match out.last_mut() {
            Some((d, pts)) if *d == r.design => pts.push(r.point),
            _ => out.push((r.design, vec![r.point])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> LoadedGrid {
        LoadedGrid {
            designs: vec![DesignSpec::baseline(), DesignSpec::footprint(64)],
            intervals: vec![96, 8],
            config: LoadedConfig {
                warmup: 500,
                requests: 500,
                ..LoadedConfig::tiny()
            },
        }
    }

    #[test]
    fn parallel_loaded_equals_sequential() {
        let grid = tiny_grid();
        let seq = run_loaded(&grid, 1);
        let par = run_loaded(&grid, 4);
        assert_eq!(seq.len(), grid.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.design, b.design);
            assert_eq!(a.point, b.point, "{} diverged", a.design.label());
        }
    }

    #[test]
    fn curves_group_by_design_in_order() {
        let results = run_loaded(&tiny_grid(), 2);
        let grouped = curves(&results);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0.label(), "Baseline");
        assert_eq!(grouped[0].1.len(), 2);
        assert_eq!(grouped[1].1.len(), 2);
    }
}
