//! Run sizing: how much simulated work each sweep point performs.

use serde::{Deserialize, Serialize};

/// How much simulated work each run performs. Warmup and measurement
/// budgets grow with the design's stacked capacity, mirroring the
/// paper's use of half of each trace for warm-up (Section 5.4) — larger
/// caches need longer residency before evictions reach steady state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunScale {
    /// Warmup records per run for a 64 MB-class design (scaled up with
    /// capacity; the paper uses half of each trace for warmup).
    pub warmup_base: u64,
    /// Extra warmup records per MB of cache capacity.
    pub warmup_per_mb: u64,
    /// Measured records base.
    pub measured_base: u64,
    /// Extra measured records per MB.
    pub measured_per_mb: u64,
}

impl RunScale {
    /// Run-sizing capacity (in MB) for capacity-independent designs
    /// (baseline, ideal): the smallest capacity the paper evaluates, so
    /// sweeps give those designs run lengths comparable with the
    /// smallest cached configuration instead of an arbitrary budget.
    /// This is a *sizing* default only — it never reaches the designs
    /// themselves (they have no capacity to configure).
    pub const COMPARABLE_CAPACITY_MB: u64 = 64;

    /// The capacity used for run sizing: the design's own capacity, or
    /// [`COMPARABLE_CAPACITY_MB`](Self::COMPARABLE_CAPACITY_MB) for
    /// capacity-independent designs.
    pub fn sizing_capacity(capacity_mb: Option<u64>) -> u64 {
        capacity_mb.unwrap_or(Self::COMPARABLE_CAPACITY_MB)
    }

    /// The scale used for the checked-in experiment outputs.
    pub fn full() -> Self {
        Self {
            warmup_base: 1_500_000,
            warmup_per_mb: 15_000,
            measured_base: 1_000_000,
            measured_per_mb: 6_000,
        }
    }

    /// A fast scale for smoke tests (about 20x cheaper).
    pub fn quick() -> Self {
        Self {
            warmup_base: 100_000,
            warmup_per_mb: 600,
            measured_base: 80_000,
            measured_per_mb: 300,
        }
    }

    /// The long-trace scale sampled simulation exists for: traces many
    /// times longer than the capacity-scaled warm windows, so the
    /// sampled executor's fixed warming cost amortizes and full
    /// detailed replay is what actually hurts. `fc_sweep --grid
    /// sampled` defaults to this scale; running it *unsampled* is the
    /// honest speedup baseline.
    pub fn long() -> Self {
        Self {
            warmup_base: 200_000,
            warmup_per_mb: 25_000,
            measured_base: 2_000_000,
            measured_per_mb: 250_000,
        }
    }

    /// A minimal scale for unit tests: fixed-size runs, no capacity
    /// scaling — large enough to exercise every pipeline stage, small
    /// enough to run whole grids in milliseconds.
    pub fn tiny() -> Self {
        Self {
            warmup_base: 2_000,
            warmup_per_mb: 0,
            measured_base: 2_000,
            measured_per_mb: 0,
        }
    }

    /// Warmup records for a design of `capacity_mb`.
    pub fn warmup(&self, capacity_mb: u64) -> u64 {
        self.warmup_base + self.warmup_per_mb * capacity_mb
    }

    /// Measured records for a design of `capacity_mb`.
    pub fn measured(&self, capacity_mb: u64) -> u64 {
        self.measured_base + self.measured_per_mb * capacity_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_grow_with_capacity() {
        let s = RunScale::full();
        assert!(s.warmup(512) > s.warmup(64));
        assert!(s.measured(512) > s.measured(64));
    }

    #[test]
    fn tiny_is_capacity_independent() {
        let s = RunScale::tiny();
        assert_eq!(s.warmup(64), s.warmup(512));
        assert_eq!(s.measured(64), s.measured(512));
    }

    #[test]
    fn sizing_defaults_capacity_less_designs_to_the_smallest_evaluated() {
        assert_eq!(RunScale::sizing_capacity(None), 64);
        assert_eq!(RunScale::sizing_capacity(Some(256)), 256);
    }
}
