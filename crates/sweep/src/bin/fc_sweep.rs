//! `fc_sweep` — run experiment grids from the command line, in parallel.
//!
//! ```sh
//! fc_sweep --grid fig4                      # Figure 4 grid, quick scale, all cores
//! fc_sweep --grid designspace --threads 8   # the whole design registry x capacity x workload
//! fc_sweep --grid fig4 --speedup            # parallel run + sequential rerun, verified identical
//! fc_sweep --list-designs                   # print the design-family catalogue
//! fc_sweep --designs page,footprint,alloy --capacities 64,256 --workloads "web search" \
//!          --csv out.csv --json out.json --bench BENCH.json
//! ```

use std::io::Write;
use std::time::Instant;

use fc_sim::loaded::LoadedConfig;
use fc_sim::registry::{resolve_designs, DESIGN_FAMILIES};
use fc_sim::{resolve_scenarios, ScenarioSpec, SimConfig, SCENARIO_FAMILIES};
use fc_sweep::{
    emit, DesignSpec, LoadedGrid, MixGrid, RunScale, SweepEngine, SweepResult, SweepSpec,
    WorkloadKind,
};

const USAGE: &str = "\
usage: fc_sweep [options]
  --grid NAME        preset grid: fig4 | fig5 | fig67 | designspace | loaded
                     | mix (default fig4; `loaded` sweeps latency vs
                     injected bandwidth, `mix` sweeps consolidation
                     scenarios with per-core workloads)
  --designs LIST     comma list of design families from the registry
                     (see --list-designs); overrides the preset's designs
  --capacities LIST  comma list of MB values (default 64,128,256,512)
  --workloads LIST   comma list of workload names (default: all six)
  --scenarios LIST   comma list of scenario families for --grid mix
                     (see --list-scenarios; default: all of them)
  --scale NAME       quick | full | tiny (default quick)
  --threads N        worker threads (default: all cores)
  --seed N           base seed (default 42)
  --speedup          rerun the grid sequentially, report speedup, verify
                     the parallel and sequential results are identical
  --json PATH        write results as JSON
  --csv PATH         write results as CSV
  --bench PATH       write a benchmark summary (per-design points/sec,
                     speedup) as JSON, e.g. BENCH_designspace.json
  --list             print the grid points and exit
  --list-designs     print the design-family catalogue and exit
  --list-scenarios   print the scenario-family catalogue and exit
  --quiet            suppress per-point progress lines
  --help             this text";

fn fail(msg: &str) -> ! {
    eprintln!("fc_sweep: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_workloads(list: &str) -> Vec<WorkloadKind> {
    list.split(',')
        .map(|name| {
            let name = name.trim();
            WorkloadKind::ALL
                .into_iter()
                .find(|w| w.name().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    fail(&format!(
                        "unknown workload `{name}`; pick from: {}",
                        WorkloadKind::ALL.map(|w| w.name()).join(", ")
                    ))
                })
        })
        .collect()
}

/// Expands design family names against the capacity list, through the
/// design registry.
fn parse_designs(list: &str, capacities: &[u64]) -> Vec<DesignSpec> {
    resolve_designs(list, capacities).unwrap_or_else(|e| fail(&e))
}

fn preset_designs(grid: &str, capacities: &[u64]) -> Vec<DesignSpec> {
    match grid {
        // Figure 4 measures page access density on the page-based cache
        // across capacities.
        "fig4" => parse_designs("page", capacities),
        // Figure 5: miss ratio + off-chip traffic for page, footprint,
        // block, against the baseline.
        "fig5" => parse_designs("baseline,page,footprint,block", capacities),
        // Figures 6/7: performance improvement incl. the ideal bound.
        "fig67" => parse_designs("baseline,ideal,block,page,footprint", capacities),
        // The whole registry: every family the reproduction knows.
        "designspace" => {
            let names: Vec<&str> = DESIGN_FAMILIES.iter().map(|f| f.name).collect();
            parse_designs(&names.join(","), capacities)
        }
        other => fail(&format!("unknown grid `{other}`")),
    }
}

fn print_design_catalogue() {
    println!("{:<12} {:<9} summary", "family", "capacity");
    for f in DESIGN_FAMILIES {
        println!(
            "{:<12} {:<9} {}",
            f.name,
            if f.scales_with_capacity {
                "scaled"
            } else {
                "fixed"
            },
            f.summary
        );
    }
}

fn print_scenario_catalogue() {
    println!("{:<12} summary", "scenario");
    for f in SCENARIO_FAMILIES {
        println!("{:<12} {}", f.name, f.summary);
    }
}

fn write_file(path: &str, contents: &str) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
    f.write_all(contents.as_bytes())
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    eprintln!("[fc_sweep] wrote {path}");
}

fn print_summary(results: &[SweepResult]) {
    println!(
        "{:<16} {:<28} {:>8} {:>10} {:>12} {:>12}",
        "workload", "design", "miss %", "IPC/pod", "offchip B/i", "stacked B/i"
    );
    for r in results {
        let stacked_bpi = if r.report.insts > 0 {
            r.report.stacked.bytes() as f64 / r.report.insts as f64
        } else {
            0.0
        };
        println!(
            "{:<16} {:<28} {:>7.1}% {:>10.2} {:>12.3} {:>12.3}",
            r.point.workload.to_string(),
            r.point.design.label(),
            r.report.cache.miss_ratio() * 100.0,
            r.report.throughput(),
            r.report.offchip_bytes_per_inst(),
            stacked_bpi,
        );
    }
}

/// Default design families of the loaded-latency curve: every family
/// with a bandwidth story, including the related-work designs.
const LOADED_DESIGNS: &str = "block,page,footprint,alloy,banshee,gemini";

/// Runs `--grid loaded`: latency-vs-injected-bandwidth curves per
/// design, emitted with the loaded emitters (`BENCH_bandwidth.json`).
#[allow(clippy::too_many_arguments)]
fn run_loaded_grid(
    designs_arg: &Option<String>,
    capacities: &[u64],
    workloads: &[WorkloadKind],
    scale: RunScale,
    threads: Option<usize>,
    seed: u64,
    speedup: bool,
    json_path: &Option<String>,
    csv_path: &Option<String>,
    bench_path: &Option<String>,
    list_only: bool,
) {
    let designs = parse_designs(designs_arg.as_deref().unwrap_or(LOADED_DESIGNS), capacities);
    if speedup {
        eprintln!(
            "[fc_sweep] note: --speedup applies to trace-replay grids only; \
             the loaded grid's 1-vs-N-thread bit-equality is covered by \
             tests/sweep_determinism.rs"
        );
    }
    if workloads.len() > 1 {
        eprintln!(
            "[fc_sweep] note: the loaded grid injects one workload per run; \
             using `{}` and ignoring the other {} (pass --workloads NAME to pick)",
            workloads[0],
            workloads.len() - 1
        );
    }
    let config = LoadedConfig {
        workload: workloads[0],
        seed,
        ..fc_sweep::loaded::config_for_scale(scale)
    };
    let grid = LoadedGrid::standard(designs, config);

    if list_only {
        for d in &grid.designs {
            for &interval in &grid.intervals {
                println!(
                    "{} @ {:.1} GB/s (interval {interval})",
                    d.label(),
                    fc_sim::loaded::interval_to_gbs(interval)
                );
            }
        }
        eprintln!("[fc_sweep] {} points", grid.len());
        return;
    }

    let workers = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    eprintln!(
        "[fc_sweep] grid loaded: {} points ({} designs x {} rates) on {} thread(s), workload {}",
        grid.len(),
        grid.designs.len(),
        grid.intervals.len(),
        workers,
        config.workload,
    );
    let started = Instant::now();
    let results = fc_sweep::run_loaded(&grid, workers);
    let wall_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} loaded points in {wall_secs:.2}s",
        results.len()
    );

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "design", "inject", "achieve", "avg latency", "stack util", "off util"
    );
    for r in &results {
        let p = &r.point;
        println!(
            "{:<28} {:>9.1}G {:>9.1}G {:>12.1} {:>9.1}% {:>9.1}%",
            r.design.label(),
            p.injected_gbs,
            p.achieved_gbs,
            p.avg_latency,
            p.stacked_util() * 100.0,
            p.offchip_util() * 100.0,
        );
    }

    let workload = config.workload.to_string();
    if let Some(path) = json_path {
        write_file(path, &emit::to_loaded_json(&results, &workload));
    }
    if let Some(path) = csv_path {
        write_file(path, &emit::to_loaded_csv(&results, &workload));
    }
    if let Some(path) = bench_path {
        write_file(
            path,
            &emit::to_bandwidth_bench_json(&results, &workload, wall_secs),
        );
    }
}

/// Default design families of the mix grid: the paper's design plus
/// the granularity extremes it competes against.
const MIX_DESIGNS: &str = "baseline,page,footprint,banshee";

/// Runs `--grid mix`: consolidation scenarios × designs with per-core
/// accounting, weighted speedup vs solo runs, and a fairness index
/// (`BENCH_mix.json`).
#[allow(clippy::too_many_arguments)]
fn run_mix_grid(
    designs_arg: &Option<String>,
    scenarios_arg: &Option<String>,
    capacities: &[u64],
    scale: RunScale,
    threads: Option<usize>,
    seed: u64,
    speedup: bool,
    json_path: &Option<String>,
    csv_path: &Option<String>,
    bench_path: &Option<String>,
    list_only: bool,
    quiet: bool,
) {
    let config = SimConfig::default();
    let designs = parse_designs(designs_arg.as_deref().unwrap_or(MIX_DESIGNS), capacities);
    let scenarios: Vec<ScenarioSpec> = match scenarios_arg {
        Some(list) => resolve_scenarios(list, config.cores).unwrap_or_else(|e| fail(&e)),
        None => SCENARIO_FAMILIES
            .iter()
            .map(|f| f.build(config.cores))
            .collect(),
    };
    let grid = MixGrid::new(scenarios, designs, scale)
        .with_config(config)
        .with_seed(seed);

    if list_only {
        for p in grid.points() {
            println!(
                "{}  (warmup {}, measured {})",
                p.label(),
                p.warmup(),
                p.measured()
            );
        }
        eprintln!("[fc_sweep] {} mix points", grid.len());
        return;
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }
    if quiet {
        engine = engine.quiet();
    }
    let workers = engine.threads();
    eprintln!(
        "[fc_sweep] grid mix: {} points ({} scenarios x {} designs) + solo \
         baselines on {} thread(s)",
        grid.len(),
        grid.scenarios.len(),
        grid.designs.len(),
        workers,
    );
    let started = Instant::now();
    let results = fc_sweep::run_mix(&grid, &engine);
    let parallel_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} simulations in {parallel_secs:.2}s ({} memo hits)",
        engine.store().computed(),
        engine.store().memo_hits()
    );

    println!(
        "{:<26} {:<22} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "scenario", "design", "IPC/pod", "wtd spdup", "fairness", "min core", "max core"
    );
    for r in &results {
        let min = r
            .consolidation
            .per_core_speedup
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = r
            .consolidation
            .per_core_speedup
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        println!(
            "{:<26} {:<22} {:>10.2} {:>10.3} {:>9.3} {:>9.3} {:>9.3}",
            r.point.scenario.name,
            r.point.design.label(),
            r.report.throughput(),
            r.consolidation.weighted_speedup,
            r.consolidation.fairness,
            min,
            max,
        );
    }

    if speedup {
        // Fresh engine, fresh store: a true sequential baseline.
        let started = Instant::now();
        let seq = fc_sweep::run_mix(&grid, &SweepEngine::new().with_threads(1).quiet());
        let seq_secs = started.elapsed().as_secs_f64();
        let identical = results
            .iter()
            .zip(&seq)
            .all(|(a, b)| *a.report == *b.report && a.consolidation == b.consolidation);
        println!();
        println!(
            "speedup: sequential {seq_secs:.2}s / parallel {parallel_secs:.2}s = {:.2}x on {} threads; results identical: {}",
            seq_secs / parallel_secs.max(1e-9),
            workers,
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
    }

    if let Some(path) = json_path {
        write_file(path, &emit::to_mix_json(&results));
    }
    if let Some(path) = csv_path {
        write_file(path, &emit::to_mix_csv(&results));
    }
    if let Some(path) = bench_path {
        write_file(path, &emit::to_mix_bench_json(&results, parallel_secs));
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut grid = "fig4".to_string();
    let mut designs_arg: Option<String> = None;
    let mut scenarios_arg: Option<String> = None;
    let mut capacities: Vec<u64> = vec![64, 128, 256, 512];
    let mut workloads: Vec<WorkloadKind> = WorkloadKind::ALL.to_vec();
    let mut scale = RunScale::quick();
    let mut threads: Option<usize> = None;
    let mut seed: u64 = SweepSpec::DEFAULT_SEED;
    let mut speedup = false;
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut list_only = false;
    let mut list_designs = false;
    let mut list_scenarios = false;
    let mut quiet = false;

    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grid" => grid = value(&mut args, "--grid"),
            "--designs" => designs_arg = Some(value(&mut args, "--designs")),
            "--capacities" => {
                capacities = value(&mut args, "--capacities")
                    .split(',')
                    .map(|s| {
                        let mb: u64 = s
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("bad capacity `{s}`")));
                        if mb == 0 {
                            fail("capacities must be at least 1 MB");
                        }
                        mb
                    })
                    .collect();
            }
            "--workloads" => workloads = parse_workloads(&value(&mut args, "--workloads")),
            "--scenarios" => scenarios_arg = Some(value(&mut args, "--scenarios")),
            "--scale" => {
                scale = match value(&mut args, "--scale").as_str() {
                    "quick" => RunScale::quick(),
                    "full" => RunScale::full(),
                    "tiny" => RunScale::tiny(),
                    other => fail(&format!("unknown scale `{other}`")),
                }
            }
            "--threads" => {
                threads = Some(
                    value(&mut args, "--threads")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --threads value")),
                )
            }
            "--seed" => {
                seed = value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed value"))
            }
            "--speedup" => speedup = true,
            "--json" => json_path = Some(value(&mut args, "--json")),
            "--csv" => csv_path = Some(value(&mut args, "--csv")),
            "--bench" => bench_path = Some(value(&mut args, "--bench")),
            "--list" => list_only = true,
            "--list-designs" => list_designs = true,
            "--list-scenarios" => list_scenarios = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    if list_designs {
        print_design_catalogue();
        return;
    }
    if list_scenarios {
        print_scenario_catalogue();
        return;
    }

    if grid == "mix" {
        run_mix_grid(
            &designs_arg,
            &scenarios_arg,
            &capacities,
            scale,
            threads,
            seed,
            speedup,
            &json_path,
            &csv_path,
            &bench_path,
            list_only,
            quiet,
        );
        return;
    }

    if grid == "loaded" {
        run_loaded_grid(
            &designs_arg,
            &capacities,
            &workloads,
            scale,
            threads,
            seed,
            speedup,
            &json_path,
            &csv_path,
            &bench_path,
            list_only,
        );
        return;
    }

    let designs = match &designs_arg {
        Some(list) => {
            grid = format!("custom({list})");
            parse_designs(list, &capacities)
        }
        None => preset_designs(&grid, &capacities),
    };
    let spec = SweepSpec::new(scale)
        .with_seed(seed)
        .grid(&workloads, &designs)
        .dedup();

    if list_only {
        for p in spec.points() {
            println!(
                "{}  (warmup {}, measured {})",
                p.label(),
                p.warmup(),
                p.measured()
            );
        }
        eprintln!("[fc_sweep] {} points", spec.len());
        return;
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }
    if quiet {
        engine = engine.quiet();
    }
    let workers = engine.threads();

    eprintln!(
        "[fc_sweep] grid {}: {} points on {} thread(s)",
        grid,
        spec.len(),
        workers
    );
    let started = Instant::now();
    let results = engine.run_spec(&spec);
    let parallel_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} simulations in {parallel_secs:.2}s ({} memo hits)",
        engine.store().computed(),
        engine.store().memo_hits()
    );

    print_summary(&results);

    let mut speedup_summary: Option<emit::SpeedupSummary> = None;
    if speedup {
        // Fresh engine, fresh store: a true sequential baseline.
        let seq_engine = SweepEngine::new().with_threads(1).quiet();
        let started = Instant::now();
        let seq_results = seq_engine.run_spec(&spec);
        let seq_secs = started.elapsed().as_secs_f64();
        let identical = results
            .iter()
            .zip(&seq_results)
            .all(|(a, b)| *a.report == *b.report);
        println!();
        println!(
            "speedup: sequential {seq_secs:.2}s / parallel {parallel_secs:.2}s = {:.2}x on {} threads; results identical: {}",
            seq_secs / parallel_secs.max(1e-9),
            workers,
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
        speedup_summary = Some(emit::SpeedupSummary {
            sequential_secs: seq_secs,
            parallel_secs,
            threads: workers,
        });
    }

    if let Some(path) = &json_path {
        write_file(path, &emit::to_json(&results));
    }
    if let Some(path) = &csv_path {
        write_file(path, &emit::to_csv(&results));
    }
    if let Some(path) = &bench_path {
        write_file(
            path,
            &emit::to_bench_json(&grid, &results, parallel_secs, speedup_summary),
        );
    }
}
