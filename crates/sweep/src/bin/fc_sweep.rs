//! `fc_sweep` — run experiment grids from the command line, in parallel.
//!
//! ```sh
//! fc_sweep --grid fig4                      # Figure 4 grid, quick scale, all cores
//! fc_sweep --grid designspace --threads 8   # the whole design registry x capacity x workload
//! fc_sweep --grid fig4 --speedup            # parallel run + sequential rerun, verified identical
//! fc_sweep --list-designs                   # print the design-family catalogue
//! fc_sweep --designs page,footprint,alloy --capacities 64,256 --workloads "web search" \
//!          --csv out.csv --json out.json --bench BENCH.json
//! ```

use std::io::Write;
use std::time::Instant;

use fc_sim::loaded::LoadedConfig;
use fc_sim::registry::{resolve_designs, DESIGN_FAMILIES};
use fc_sim::{resolve_scenarios, ScenarioSpec, SimConfig, SCENARIO_FAMILIES};
use fc_sweep::{
    emit, run_sampled_grid, run_sampled_grid_pit, DesignSpec, LoadedGrid, MixGrid, RunScale,
    SamplePlan, SampledGrid, SweepEngine, SweepResult, SweepSpec, WorkloadKind,
};

const USAGE: &str = "\
usage: fc_sweep [serve|status] [options]

serve mode (long-running, no network):
  serve              read grid requests as JSONL from stdin (or a spool
                     directory with --spool), diff each against the
                     result store, simulate only what's missing, and
                     stream point + summary responses as JSONL on stdout
  --spool DIR        serve requests from DIR/*.json instead of stdin;
                     responses land atomically in DIR/done/<name>.jsonl
  --serve-once       with --spool: answer the requests currently in the
                     spool, then exit (instead of polling forever)
  --metrics-dir DIR  maintain a live status surface in DIR: metrics.prom
                     (Prometheus text exposition), health.json
                     (starting/serving/degraded/draining heartbeat) and
                     events.jsonl (health transitions, watchdog
                     breaches), rewritten atomically on a cadence
  --metrics-cadence-ms N  milliseconds between metrics-dir rewrites
                     (default 2000)
  --floor PATH       arm the serve watchdog with the per-design
                     points/sec floors in PATH (bench_floor.json shape):
                     sustained below-floor fresh throughput flips
                     health.json to `degraded`
  --slow-ms N        capture requests slower than N ms as standalone
                     Chrome traces under DIR/slow/ (ring-buffered;
                     requires --metrics-dir)

status mode:
  status             render a one-screen summary of a serve process's
                     --metrics-dir (health, error taxonomy, latency
                     quantiles, watchdog state) and exit; pass the same
                     --metrics-dir DIR the serve process uses

options:
  --store DIR        back the result store with durable shard files in
                     DIR (consistent-hash ring; results persist across
                     runs, and previously computed points are recalled
                     instead of re-simulated)
  --grid NAME        preset grid (see --list-grids): fig4 | fig5 | fig67
                     | designspace | loaded | mix | sampled (default
                     fig4; `sampled` is the designspace grid run through
                     the interval sampler at the long-trace scale)
  --designs LIST     comma list of design families from the registry
                     (see --list-designs); overrides the preset's designs
  --capacities LIST  comma list of MB values (default 64,128,256,512)
  --workloads LIST   comma list of workload names (default: all six)
  --scenarios LIST   comma list of scenario families for --grid mix
                     (see --list-scenarios; default: all of them)
  --scale NAME       quick | full | tiny | long (default quick; `long`
                     is the long-trace scale sampling exists for)
  --threads N        worker threads (default: all cores)
  --seed N           base seed (default 42)
  --sampled          run the trace-replay grid through the fc-sample
                     interval sampler (auto per-point plans: functional
                     warmup windows scaled to each design's capacity and
                     state memory) instead of full detailed replay
  --sample-period N  override the sampling period (records per measured
                     interval); implies --sampled. The other plan knobs
                     derive from the period (interval = period/8, detail
                     warmup = interval/2, rest functional, no skip)
  --sample-strata N  round-robin strata for the estimates (default 1)
  --pit-workers N    parallel-in-time: dispatch each sampled point's
                     measurement intervals to N workers restoring a
                     shared base checkpoint (implies --sampled; default:
                     the thread count at the long scale, off otherwise).
                     Results are bit-identical at any worker count
  --no-pit           force sequential interval execution even at the
                     long scale
  --verify-pit       also run the grid sequentially and through a
                     2-worker parallel-in-time engine (both fresh) and
                     verify the reports are bit-identical; exit 1 if not
  --bench-pit PATH   time fresh sequential-sampled vs parallel-in-time
                     runs of the grid and write the points/sec + speedup
                     report, e.g. BENCH_pit.json (implies --sampled;
                     wall-clock speedup tracks the physical core count)
  --speedup          rerun the grid sequentially, report speedup, verify
                     the parallel and sequential results are identical
  --json PATH        write results as JSON
  --csv PATH         write results as CSV
  --bench PATH       write a benchmark summary as JSON, e.g.
                     BENCH_designspace.json (with --sampled: also runs
                     the full grid and writes the speedup-vs-error
                     report, e.g. BENCH_sample.json)
  --trace-out PATH   write a Chrome trace-event JSON timeline of the run
                     (open in Perfetto / chrome://tracing): synthesis,
                     warmup, detailed simulation and memo activity on
                     per-worker lanes
  --metrics-out PATH write this run's metrics-registry delta (plus any
                     detailed-stats time series) as provenance-stamped
                     JSON
  --progress-jsonl PATH  stream one JSON object per finished point plus
                     a final summary (machine-readable progress)
  --list             print the grid points and exit
  --list-grids       print the grid catalogue and exit
  --list-designs     print the design-family catalogue and exit
  --list-scenarios   print the scenario-family catalogue and exit
  --quiet            suppress per-point progress lines
  --help             this text";

/// The grid catalogue (`--list-grids`): every preset the CLI knows.
const GRIDS: [(&str, &str); 7] = [
    (
        "fig4",
        "page access density across capacities (page-based cache)",
    ),
    (
        "fig5",
        "miss ratio + off-chip traffic: baseline/page/footprint/block",
    ),
    ("fig67", "performance improvement incl. the ideal bound"),
    ("designspace", "every design family in the registry"),
    (
        "loaded",
        "latency vs injected bandwidth per design (queued engine)",
    ),
    ("mix", "consolidation scenarios with per-core workloads"),
    (
        "sampled",
        "designspace through the interval sampler (long-trace scale)",
    ),
];

fn print_grid_catalogue() {
    println!("{:<12} summary", "grid");
    for (name, summary) in GRIDS {
        println!("{name:<12} {summary}");
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("fc_sweep: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_workloads(list: &str) -> Vec<WorkloadKind> {
    list.split(',')
        .map(|name| {
            let name = name.trim();
            WorkloadKind::ALL
                .into_iter()
                .find(|w| w.name().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    fail(&format!(
                        "unknown workload `{name}`; pick from: {}",
                        WorkloadKind::ALL.map(|w| w.name()).join(", ")
                    ))
                })
        })
        .collect()
}

/// Expands design family names against the capacity list, through the
/// design registry.
fn parse_designs(list: &str, capacities: &[u64]) -> Vec<DesignSpec> {
    resolve_designs(list, capacities).unwrap_or_else(|e| fail(&e))
}

fn preset_designs(grid: &str, capacities: &[u64]) -> Vec<DesignSpec> {
    match grid {
        // Figure 4 measures page access density on the page-based cache
        // across capacities.
        "fig4" => parse_designs("page", capacities),
        // Figure 5: miss ratio + off-chip traffic for page, footprint,
        // block, against the baseline.
        "fig5" => parse_designs("baseline,page,footprint,block", capacities),
        // Figures 6/7: performance improvement incl. the ideal bound.
        "fig67" => parse_designs("baseline,ideal,block,page,footprint", capacities),
        // The whole registry: every family the reproduction knows.
        "designspace" | "sampled" => {
            let names: Vec<&str> = DESIGN_FAMILIES.iter().map(|f| f.name).collect();
            parse_designs(&names.join(","), capacities)
        }
        other => fail(&format!(
            "unknown grid `{other}` (run --list-grids for the catalogue)"
        )),
    }
}

fn print_design_catalogue() {
    println!("{:<12} {:<9} summary", "family", "capacity");
    for f in DESIGN_FAMILIES {
        println!(
            "{:<12} {:<9} {}",
            f.name,
            if f.scales_with_capacity {
                "scaled"
            } else {
                "fixed"
            },
            f.summary
        );
    }
}

fn print_scenario_catalogue() {
    println!("{:<12} summary", "scenario");
    for f in SCENARIO_FAMILIES {
        println!("{:<12} {}", f.name, f.summary);
    }
}

fn write_file(path: &str, contents: &str) {
    // Atomic (temp + rename): a kill mid-write never leaves a
    // truncated artifact where a previous good one stood.
    fc_types::atomic_write(std::path::Path::new(path), contents.as_bytes())
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    eprintln!("[fc_sweep] wrote {path}");
}

/// `--trace-out` / `--metrics-out` state for the whole run. The
/// metrics baseline is snapshotted before the grid starts, so the
/// emitted artifact is this run's delta, not process-lifetime totals;
/// tracing is switched on only when a trace is requested (otherwise
/// every span is a single relaxed atomic load).
struct ObsOut {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    metrics_base: fc_obs::metrics::MetricsSnapshot,
}

impl ObsOut {
    fn new(trace_out: Option<String>, metrics_out: Option<String>) -> Self {
        if trace_out.is_some() {
            fc_obs::trace::enable();
        }
        Self {
            trace_out,
            metrics_out,
            metrics_base: fc_obs::metrics::snapshot(),
        }
    }

    /// Writes the trace and metrics artifacts (a no-op without flags).
    fn finish(&self, prov: &fc_obs::Provenance) {
        if let Some(path) = &self.trace_out {
            fc_obs::trace::flush_thread();
            write_file(path, &fc_obs::trace::chrome_trace_json());
        }
        if let Some(path) = &self.metrics_out {
            let delta = fc_obs::metrics::snapshot().delta(&self.metrics_base);
            write_file(path, &emit::to_metrics_json(&delta, prov));
        }
    }
}

/// The run-provenance stamp every artifact of this invocation carries.
#[allow(clippy::too_many_arguments)]
fn provenance(
    grid: &str,
    scale_name: &str,
    seed: u64,
    threads: usize,
    points: usize,
    workloads: Vec<String>,
    designs: Vec<String>,
    wall_secs: f64,
) -> fc_obs::Provenance {
    let mut p = fc_obs::Provenance::for_tool("fc_sweep");
    p.grid = Some(grid.to_string());
    p.scale = Some(scale_name.to_string());
    p.seed = Some(seed);
    p.threads = Some(threads);
    p.points = Some(points);
    p.workloads = workloads;
    p.designs = designs;
    p.wall_secs = Some(wall_secs);
    p
}

/// Opens the `--progress-jsonl` sink (buffered; flushed by the
/// engine's final summary event).
fn progress_sink(path: &Option<String>) -> Option<fc_sweep::ProgressSink> {
    path.as_ref().map(|p| {
        let f =
            std::fs::File::create(p).unwrap_or_else(|e| fail(&format!("cannot create {p}: {e}")));
        let w: Box<dyn Write + Send> = Box::new(std::io::BufWriter::new(f));
        std::sync::Arc::new(std::sync::Mutex::new(w)) as fc_sweep::ProgressSink
    })
}

/// De-duplicated design labels, in first-seen order.
fn design_labels(designs: &[DesignSpec]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for d in designs {
        let label = d.label();
        if !out.contains(&label) {
            out.push(label);
        }
    }
    out
}

fn print_summary(results: &[SweepResult]) {
    println!(
        "{:<16} {:<28} {:>8} {:>10} {:>12} {:>12}",
        "workload", "design", "miss %", "IPC/pod", "offchip B/i", "stacked B/i"
    );
    for r in results {
        let stacked_bpi = if r.report.insts > 0 {
            r.report.stacked.bytes() as f64 / r.report.insts as f64
        } else {
            0.0
        };
        println!(
            "{:<16} {:<28} {:>7.1}% {:>10.2} {:>12.3} {:>12.3}",
            r.point.workload.to_string(),
            r.point.design.label(),
            r.report.cache.miss_ratio() * 100.0,
            r.report.throughput(),
            r.report.offchip_bytes_per_inst(),
            stacked_bpi,
        );
    }
}

/// Default design families of the loaded-latency curve: every family
/// with a bandwidth story, including the related-work designs.
const LOADED_DESIGNS: &str = "block,page,footprint,alloy,banshee,gemini";

/// Runs `--grid loaded`: latency-vs-injected-bandwidth curves per
/// design, emitted with the loaded emitters (`BENCH_bandwidth.json`).
#[allow(clippy::too_many_arguments)]
fn run_loaded_grid(
    designs_arg: &Option<String>,
    capacities: &[u64],
    workloads: &[WorkloadKind],
    scale: RunScale,
    scale_name: &str,
    threads: Option<usize>,
    seed: u64,
    speedup: bool,
    json_path: &Option<String>,
    csv_path: &Option<String>,
    bench_path: &Option<String>,
    obs: &ObsOut,
    list_only: bool,
) {
    let designs = parse_designs(designs_arg.as_deref().unwrap_or(LOADED_DESIGNS), capacities);
    if speedup {
        eprintln!(
            "[fc_sweep] note: --speedup applies to trace-replay grids only; \
             the loaded grid's 1-vs-N-thread bit-equality is covered by \
             tests/sweep_determinism.rs"
        );
    }
    if workloads.len() > 1 {
        eprintln!(
            "[fc_sweep] note: the loaded grid injects one workload per run; \
             using `{}` and ignoring the other {} (pass --workloads NAME to pick)",
            workloads[0],
            workloads.len() - 1
        );
    }
    let config = LoadedConfig {
        workload: workloads[0],
        seed,
        ..fc_sweep::loaded::config_for_scale(scale)
    };
    let grid = LoadedGrid::standard(designs, config);

    if list_only {
        for d in &grid.designs {
            for &interval in &grid.intervals {
                println!(
                    "{} @ {:.1} GB/s (interval {interval})",
                    d.label(),
                    fc_sim::loaded::interval_to_gbs(interval)
                );
            }
        }
        eprintln!("[fc_sweep] {} points", grid.len());
        return;
    }

    let workers = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    eprintln!(
        "[fc_sweep] grid loaded: {} points ({} designs x {} rates) on {} thread(s), workload {}",
        grid.len(),
        grid.designs.len(),
        grid.intervals.len(),
        workers,
        config.workload,
    );
    let started = Instant::now();
    let results = fc_sweep::run_loaded(&grid, workers);
    let wall_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} loaded points in {wall_secs:.2}s",
        results.len()
    );

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "design", "inject", "achieve", "avg latency", "stack util", "off util"
    );
    for r in &results {
        let p = &r.point;
        println!(
            "{:<28} {:>9.1}G {:>9.1}G {:>12.1} {:>9.1}% {:>9.1}%",
            r.design.label(),
            p.injected_gbs,
            p.achieved_gbs,
            p.avg_latency,
            p.stacked_util() * 100.0,
            p.offchip_util() * 100.0,
        );
    }

    let workload = config.workload.to_string();
    let prov = provenance(
        "loaded",
        scale_name,
        seed,
        workers,
        grid.len(),
        vec![workload.clone()],
        design_labels(&grid.designs),
        wall_secs,
    );
    if let Some(path) = json_path {
        write_file(
            path,
            &emit::with_provenance(&emit::to_loaded_json(&results, &workload), &prov),
        );
    }
    if let Some(path) = csv_path {
        write_file(
            path,
            &emit::csv_with_provenance(&emit::to_loaded_csv(&results, &workload), &prov),
        );
    }
    if let Some(path) = bench_path {
        write_file(
            path,
            &emit::with_provenance(
                &emit::to_bandwidth_bench_json(&results, &workload, wall_secs),
                &prov,
            ),
        );
    }
    obs.finish(&prov);
}

/// Default design families of the mix grid: the paper's design plus
/// the granularity extremes it competes against.
const MIX_DESIGNS: &str = "baseline,page,footprint,banshee";

/// Runs `--grid mix`: consolidation scenarios × designs with per-core
/// accounting, weighted speedup vs solo runs, and a fairness index
/// (`BENCH_mix.json`).
#[allow(clippy::too_many_arguments)]
fn run_mix_grid(
    designs_arg: &Option<String>,
    scenarios_arg: &Option<String>,
    capacities: &[u64],
    scale: RunScale,
    scale_name: &str,
    threads: Option<usize>,
    seed: u64,
    speedup: bool,
    json_path: &Option<String>,
    csv_path: &Option<String>,
    bench_path: &Option<String>,
    jsonl: Option<fc_sweep::ProgressSink>,
    obs: &ObsOut,
    list_only: bool,
    quiet: bool,
) {
    let config = SimConfig::default();
    let designs = parse_designs(designs_arg.as_deref().unwrap_or(MIX_DESIGNS), capacities);
    let scenarios: Vec<ScenarioSpec> = match scenarios_arg {
        Some(list) => resolve_scenarios(list, config.cores).unwrap_or_else(|e| fail(&e)),
        None => SCENARIO_FAMILIES
            .iter()
            .map(|f| f.build(config.cores))
            .collect(),
    };
    let grid = MixGrid::new(scenarios, designs, scale)
        .with_config(config)
        .with_seed(seed);

    if list_only {
        for p in grid.points() {
            println!(
                "{}  (warmup {}, measured {})",
                p.label(),
                p.warmup(),
                p.measured()
            );
        }
        eprintln!("[fc_sweep] {} mix points", grid.len());
        return;
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }
    if quiet {
        engine = engine.quiet();
    }
    if let Some(sink) = jsonl {
        engine = engine.with_progress_jsonl(sink);
    }
    let workers = engine.threads();
    eprintln!(
        "[fc_sweep] grid mix: {} points ({} scenarios x {} designs) + solo \
         baselines on {} thread(s)",
        grid.len(),
        grid.scenarios.len(),
        grid.designs.len(),
        workers,
    );
    let started = Instant::now();
    let results = fc_sweep::run_mix(&grid, &engine);
    let parallel_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} simulations in {parallel_secs:.2}s ({} memo hits)",
        engine.store().computed(),
        engine.store().memo_hits()
    );

    println!(
        "{:<26} {:<22} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "scenario", "design", "IPC/pod", "wtd spdup", "fairness", "min core", "max core"
    );
    for r in &results {
        let min = r
            .consolidation
            .per_core_speedup
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = r
            .consolidation
            .per_core_speedup
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        println!(
            "{:<26} {:<22} {:>10.2} {:>10.3} {:>9.3} {:>9.3} {:>9.3}",
            r.point.scenario.name,
            r.point.design.label(),
            r.report.throughput(),
            r.consolidation.weighted_speedup,
            r.consolidation.fairness,
            min,
            max,
        );
    }

    if speedup {
        // Fresh engine, fresh store: a true sequential baseline.
        let started = Instant::now();
        let seq = fc_sweep::run_mix(&grid, &SweepEngine::new().with_threads(1).quiet());
        let seq_secs = started.elapsed().as_secs_f64();
        let identical = results
            .iter()
            .zip(&seq)
            .all(|(a, b)| *a.report == *b.report && a.consolidation == b.consolidation);
        println!();
        println!(
            "speedup: sequential {seq_secs:.2}s / parallel {parallel_secs:.2}s = {:.2}x on {} threads; results identical: {}",
            seq_secs / parallel_secs.max(1e-9),
            workers,
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
    }

    let prov = provenance(
        "mix",
        scale_name,
        seed,
        workers,
        grid.len(),
        grid.scenarios.iter().map(|s| s.name.clone()).collect(),
        design_labels(&grid.designs),
        parallel_secs,
    );
    if let Some(path) = json_path {
        write_file(
            path,
            &emit::with_provenance(&emit::to_mix_json(&results), &prov),
        );
    }
    if let Some(path) = csv_path {
        write_file(
            path,
            &emit::csv_with_provenance(&emit::to_mix_csv(&results), &prov),
        );
    }
    if let Some(path) = bench_path {
        write_file(
            path,
            &emit::with_provenance(&emit::to_mix_bench_json(&results, parallel_secs), &prov),
        );
    }
    obs.finish(&prov);
}

/// The `--pit-workers` / `--no-pit` / `--verify-pit` / `--bench-pit`
/// bundle: how parallel-in-time interval dispatch applies to a sampled
/// run.
struct PitMode {
    /// Explicit `--pit-workers N` (implies PIT on).
    workers: Option<usize>,
    /// `--no-pit`: force sequential interval execution.
    disabled: bool,
    /// `--verify-pit`: fresh sequential vs fresh 2-worker PIT runs,
    /// bit-equality checked.
    verify: bool,
    /// `--bench-pit PATH`: timed sequential-vs-PIT report.
    bench_path: Option<String>,
}

impl PitMode {
    /// The worker count the main run dispatches intervals to, `None`
    /// for sequential execution. PIT defaults on at the long-trace
    /// scale — the scale sampling (and its parallelization) exists
    /// for — at the engine's thread count, with no floor: forcing
    /// extra workers onto fewer cores just time-slices and inflates
    /// per-point busy time.
    fn resolve(&self, scale_name: &str, engine_threads: usize) -> Option<usize> {
        if self.disabled {
            return None;
        }
        self.workers
            .or_else(|| (scale_name == "long").then_some(engine_threads))
    }
}

/// Runs a trace-replay spec through the interval sampler
/// (`--sampled` / `--grid sampled`): auto or period-derived plans,
/// estimate table with confidence intervals, sampled emitters, and —
/// with `--bench` — the full-grid twin run and the speedup-vs-error
/// report (`BENCH_sample.json`).
#[allow(clippy::too_many_arguments)]
fn run_sampled_mode(
    spec: &SweepSpec,
    grid_name: &str,
    scale_name: &str,
    seed: u64,
    sample_period: Option<u64>,
    sample_strata: u32,
    pit: PitMode,
    threads: Option<usize>,
    speedup: bool,
    json_path: &Option<String>,
    csv_path: &Option<String>,
    bench_path: &Option<String>,
    jsonl: Option<fc_sweep::ProgressSink>,
    obs: &ObsOut,
    list_only: bool,
    quiet: bool,
) {
    let grid = match sample_period {
        Some(period) => {
            if period == 0 {
                fail("--sample-period must be at least 1 record");
            }
            if let Some(short) = spec.points().iter().find(|p| p.measured() < period) {
                fail(&format!(
                    "--sample-period {period} exceeds the measured region \
                     ({} records) of {}; no interval would be measured",
                    short.measured(),
                    short.label()
                ));
            }
            let interval = (period / 8).max(1);
            let detail_warmup = (interval / 2).min(period - interval);
            SampledGrid::with_plan(
                spec,
                SamplePlan::exhaustive(period, detail_warmup, interval),
            )
        }
        None => SampledGrid::auto(spec),
    }
    .with_strata(sample_strata);

    if list_only {
        for sp in grid.points() {
            println!(
                "{}  (plan: period {} = skip {} + functional {} + detailed {} + measured {}, \
                 warmup window {})",
                sp.label(),
                sp.plan.period,
                sp.plan.skip(),
                sp.plan.functional_warmup,
                sp.plan.detail_warmup,
                sp.plan.interval,
                if sp.plan.warmup_window == u64::MAX {
                    "all".to_string()
                } else {
                    sp.plan.warmup_window.to_string()
                },
            );
        }
        eprintln!("[fc_sweep] {} sampled points", grid.len());
        return;
    }

    // The fast path skips by slice arithmetic: make sure the shared
    // trace cache can hold the grid's longest run (capped so a huge
    // grid cannot ask for unbounded memory — longer runs stream).
    let budget = grid
        .max_records()
        .min(20_000_000)
        .max(fc_sweep::TraceCache::DEFAULT_BUDGET as u64) as usize;
    let mut engine = SweepEngine::new().with_trace_budget(budget);
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }
    if quiet {
        engine = engine.quiet();
    }
    if let Some(sink) = jsonl {
        engine = engine.with_progress_jsonl(sink);
    }
    let workers = engine.threads();
    let pit_workers = pit.resolve(scale_name, workers);
    eprintln!(
        "[fc_sweep] grid {grid_name} [sampled]: {} points on {} thread(s)",
        grid.len(),
        workers
    );
    if let Some(w) = pit_workers {
        eprintln!("[fc_sweep] parallel-in-time dispatch: {w} interval worker(s)");
    }
    // Synthesize the shared traces up front: both the sampled grid and
    // its full detailed twin replay the same cached streams, so
    // neither timing should be charged for the synthesis they share.
    let started = Instant::now();
    grid.prefetch_traces(&engine);
    let synth_secs = started.elapsed().as_secs_f64();
    if synth_secs > 0.01 {
        eprintln!(
            "[fc_sweep] synthesized {} shared trace records in {synth_secs:.2}s",
            engine.trace_cache().records_synthesized()
        );
    }
    let started = Instant::now();
    let results = match pit_workers {
        Some(w) => run_sampled_grid_pit(&grid, &engine, w),
        None => run_sampled_grid(&grid, &engine),
    };
    let sampled_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} sampled simulations in {sampled_secs:.2}s",
        engine.sampled_store().computed(),
    );

    println!(
        "{:<16} {:<28} {:>16} {:>18} {:>5} {:>9} {:>9}",
        "workload", "design", "IPC (95% CI)", "hit ratio (CI)", "n", "meas %", "replay %"
    );
    for r in &results {
        let rep = &r.report;
        println!(
            "{:<16} {:<28} {:>9.3}±{:<6.3} {:>11.4}±{:<6.4} {:>5} {:>8.2}% {:>8.1}%",
            r.point.point.workload.to_string(),
            r.point.point.design.label(),
            rep.ipc.mean,
            rep.ipc.ci_half,
            rep.hit_ratio.mean,
            rep.hit_ratio.ci_half,
            rep.intervals.len(),
            rep.measured_fraction() * 100.0,
            rep.replayed_fraction() * 100.0,
        );
    }

    if speedup {
        // Fresh engine, fresh stores: a true sequential baseline.
        let seq_engine = SweepEngine::new()
            .with_trace_budget(budget)
            .with_threads(1)
            .quiet();
        // Same shared-synthesis discipline as the parallel run, so the
        // reported factor measures thread scaling, not trace synthesis.
        grid.prefetch_traces(&seq_engine);
        let started = Instant::now();
        let seq = run_sampled_grid(&grid, &seq_engine);
        let seq_secs = started.elapsed().as_secs_f64();
        let identical = results
            .iter()
            .zip(&seq)
            .all(|(a, b)| *a.report == *b.report);
        println!();
        println!(
            "speedup: sequential {seq_secs:.2}s / parallel {sampled_secs:.2}s = {:.2}x on {} threads; results identical: {}",
            seq_secs / sampled_secs.max(1e-9),
            workers,
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
    }

    if pit.verify {
        // Both runs on fresh engines (fresh memo stores), so each
        // actually simulates: sequential interval execution vs
        // 2-worker interval dispatch must agree bit-for-bit.
        let seq_engine = SweepEngine::new()
            .with_trace_budget(budget)
            .with_threads(1)
            .quiet();
        grid.prefetch_traces(&seq_engine);
        let seq = run_sampled_grid(&grid, &seq_engine);
        let pit_engine = SweepEngine::new()
            .with_trace_budget(budget)
            .with_threads(1)
            .quiet();
        grid.prefetch_traces(&pit_engine);
        let pit_results = run_sampled_grid_pit(&grid, &pit_engine, 2);
        let identical = seq
            .iter()
            .zip(&pit_results)
            .all(|(a, b)| *a.report == *b.report);
        println!(
            "verify-pit: sequential vs 2-worker parallel-in-time identical: {}",
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
    }

    let grid_label = if grid_name == "sampled" {
        grid_name.to_string()
    } else {
        format!("{grid_name}[sampled]")
    };
    let mut prov = provenance(
        &grid_label,
        scale_name,
        seed,
        workers,
        grid.len(),
        spec.points()
            .iter()
            .map(|p| p.workload.to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect(),
        design_labels(&spec.points().iter().map(|p| p.design).collect::<Vec<_>>()),
        sampled_secs,
    );
    prov.pit_workers = pit_workers;
    if let Some(path) = json_path {
        write_file(
            path,
            &emit::with_provenance(&emit::to_sampled_json(&results), &prov),
        );
    }
    if let Some(path) = csv_path {
        write_file(
            path,
            &emit::csv_with_provenance(&emit::to_sampled_csv(&results), &prov),
        );
    }
    if let Some(path) = bench_path {
        // The speedup-vs-error report needs the full detailed twin of
        // every point, run through the same engine (same trace cache).
        eprintln!(
            "[fc_sweep] running the full detailed twin grid for {path} \
             ({} points)",
            spec.len()
        );
        let started = Instant::now();
        let full = engine.run_spec(spec);
        let full_secs = started.elapsed().as_secs_f64();
        let report = emit::to_sample_bench_json(&results, &full, sampled_secs, full_secs);
        write_file(path, &emit::with_provenance(&report, &prov));
        eprintln!(
            "[fc_sweep] full twin in {full_secs:.2}s vs sampled {sampled_secs:.2}s \
             ({:.1}x wall)",
            full_secs / sampled_secs.max(1e-9)
        );
    }
    if let Some(path) = &pit.bench_path {
        // Two fresh engines so memoization cannot contaminate either
        // timing: sequential interval execution vs parallel-in-time
        // dispatch of the same grid. Both share pre-synthesized
        // traces; the wall-clock ratio tracks the physical core
        // count, not the worker count.
        let bench_workers = pit_workers.unwrap_or_else(|| workers.max(2));
        eprintln!(
            "[fc_sweep] timing sequential vs {bench_workers}-worker \
             parallel-in-time runs for {path}"
        );
        let seq_engine = SweepEngine::new()
            .with_trace_budget(budget)
            .with_threads(1)
            .quiet();
        grid.prefetch_traces(&seq_engine);
        let started = Instant::now();
        let seq = run_sampled_grid(&grid, &seq_engine);
        let seq_secs = started.elapsed().as_secs_f64();
        let pit_engine = SweepEngine::new()
            .with_trace_budget(budget)
            .with_threads(1)
            .quiet();
        grid.prefetch_traces(&pit_engine);
        let started = Instant::now();
        let pit_results = run_sampled_grid_pit(&grid, &pit_engine, bench_workers);
        let pit_secs = started.elapsed().as_secs_f64();
        let report = emit::to_pit_bench_json(&seq, &pit_results, seq_secs, pit_secs, bench_workers);
        let identical = seq
            .iter()
            .zip(&pit_results)
            .all(|(a, b)| *a.report == *b.report);
        write_file(path, &emit::with_provenance(&report, &prov));
        eprintln!(
            "[fc_sweep] pit bench: sequential {seq_secs:.2}s vs parallel {pit_secs:.2}s \
             ({:.2}x wall on {bench_workers} workers); identical: {}",
            seq_secs / pit_secs.max(1e-9),
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
    }
    obs.finish(&prov);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut serve_mode = false;
    let mut status_mode = false;
    let mut store_dir: Option<String> = None;
    let mut spool_dir: Option<String> = None;
    let mut serve_once = false;
    let mut metrics_dir: Option<String> = None;
    let mut metrics_cadence_ms: u64 = 2_000;
    let mut floor_path: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut grid = "fig4".to_string();
    let mut designs_arg: Option<String> = None;
    let mut scenarios_arg: Option<String> = None;
    let mut capacities: Option<Vec<u64>> = None;
    let mut workloads: Vec<WorkloadKind> = WorkloadKind::ALL.to_vec();
    let mut scale: Option<RunScale> = None;
    let mut threads: Option<usize> = None;
    let mut seed: u64 = SweepSpec::DEFAULT_SEED;
    let mut sampled = false;
    let mut sample_period: Option<u64> = None;
    let mut sample_strata: u32 = 1;
    let mut pit_workers: Option<usize> = None;
    let mut no_pit = false;
    let mut verify_pit = false;
    let mut bench_pit_path: Option<String> = None;
    let mut speedup = false;
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut progress_jsonl: Option<String> = None;
    let mut scale_name: Option<String> = None;
    let mut list_only = false;
    let mut list_grids = false;
    let mut list_designs = false;
    let mut list_scenarios = false;
    let mut quiet = false;

    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "serve" | "--serve" => serve_mode = true,
            "status" | "--status" => status_mode = true,
            "--store" => store_dir = Some(value(&mut args, "--store")),
            "--spool" => spool_dir = Some(value(&mut args, "--spool")),
            "--serve-once" => serve_once = true,
            "--metrics-dir" => metrics_dir = Some(value(&mut args, "--metrics-dir")),
            "--metrics-cadence-ms" => {
                metrics_cadence_ms = value(&mut args, "--metrics-cadence-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --metrics-cadence-ms value"));
                if metrics_cadence_ms == 0 {
                    fail("--metrics-cadence-ms must be at least 1");
                }
            }
            "--floor" => floor_path = Some(value(&mut args, "--floor")),
            "--slow-ms" => {
                slow_ms = Some(
                    value(&mut args, "--slow-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --slow-ms value")),
                )
            }
            "--grid" => grid = value(&mut args, "--grid"),
            "--designs" => designs_arg = Some(value(&mut args, "--designs")),
            "--capacities" => {
                capacities = Some(
                    value(&mut args, "--capacities")
                        .split(',')
                        .map(|s| {
                            let mb: u64 = s
                                .trim()
                                .parse()
                                .unwrap_or_else(|_| fail(&format!("bad capacity `{s}`")));
                            if mb == 0 {
                                fail("capacities must be at least 1 MB");
                            }
                            mb
                        })
                        .collect(),
                );
            }
            "--workloads" => workloads = parse_workloads(&value(&mut args, "--workloads")),
            "--scenarios" => scenarios_arg = Some(value(&mut args, "--scenarios")),
            "--scale" => {
                let name = value(&mut args, "--scale");
                scale = Some(match name.as_str() {
                    "quick" => RunScale::quick(),
                    "full" => RunScale::full(),
                    "tiny" => RunScale::tiny(),
                    "long" => RunScale::long(),
                    other => fail(&format!("unknown scale `{other}`")),
                });
                scale_name = Some(name);
            }
            "--sampled" => sampled = true,
            "--sample-period" => {
                sampled = true;
                sample_period = Some(
                    value(&mut args, "--sample-period")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --sample-period value")),
                );
            }
            "--sample-strata" => {
                sample_strata = value(&mut args, "--sample-strata")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --sample-strata value"));
                if sample_strata == 0 {
                    fail("--sample-strata must be at least 1");
                }
            }
            "--threads" => {
                threads = Some(
                    value(&mut args, "--threads")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --threads value")),
                )
            }
            "--seed" => {
                seed = value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed value"))
            }
            "--pit-workers" => {
                sampled = true;
                let n: usize = value(&mut args, "--pit-workers")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --pit-workers value"));
                if n == 0 {
                    fail("--pit-workers must be at least 1");
                }
                pit_workers = Some(n);
            }
            "--no-pit" => no_pit = true,
            "--verify-pit" => {
                sampled = true;
                verify_pit = true;
            }
            "--bench-pit" => {
                sampled = true;
                bench_pit_path = Some(value(&mut args, "--bench-pit"));
            }
            "--speedup" => speedup = true,
            "--json" => json_path = Some(value(&mut args, "--json")),
            "--csv" => csv_path = Some(value(&mut args, "--csv")),
            "--bench" => bench_path = Some(value(&mut args, "--bench")),
            "--trace-out" => trace_out = Some(value(&mut args, "--trace-out")),
            "--metrics-out" => metrics_out = Some(value(&mut args, "--metrics-out")),
            "--progress-jsonl" => progress_jsonl = Some(value(&mut args, "--progress-jsonl")),
            "--list" => list_only = true,
            "--list-grids" => list_grids = true,
            "--list-designs" => list_designs = true,
            "--list-scenarios" => list_scenarios = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    if status_mode {
        let dir =
            metrics_dir.unwrap_or_else(|| fail("status needs --metrics-dir DIR to read from"));
        print!(
            "{}",
            fc_sweep::status::status_from_dir(std::path::Path::new(&dir))
        );
        return;
    }

    if list_grids {
        print_grid_catalogue();
        return;
    }
    if list_designs {
        print_design_catalogue();
        return;
    }
    if list_scenarios {
        print_scenario_catalogue();
        return;
    }

    // `--grid sampled` is the designspace grid through the sampler at
    // the long-trace scale, on a small capacity by default (sampling
    // warms proportionally to capacity, so the speedup story needs
    // trace length >> warm windows; pass --capacities to override).
    if grid == "sampled" {
        sampled = true;
    }
    let sampled_preset = grid == "sampled";
    let scale = scale.unwrap_or_else(|| {
        if sampled_preset {
            RunScale::long()
        } else {
            RunScale::quick()
        }
    });
    let capacities = capacities.unwrap_or_else(|| {
        if sampled_preset {
            vec![8]
        } else {
            vec![64, 128, 256, 512]
        }
    });
    let scale_name =
        scale_name.unwrap_or_else(|| if sampled_preset { "long" } else { "quick" }.to_string());
    let obs = ObsOut::new(trace_out, metrics_out);
    let jsonl = progress_sink(&progress_jsonl);

    if serve_mode {
        if serve_once && spool_dir.is_none() {
            fail("--serve-once requires --spool");
        }
        if slow_ms.is_some() && metrics_dir.is_none() {
            fail("--slow-ms requires --metrics-dir (slow traces land under DIR/slow/)");
        }
        if floor_path.is_some() && metrics_dir.is_none() {
            fail("--floor requires --metrics-dir (the watchdog reports through health.json)");
        }
        // The monitor goes up before the engine: a scraper sees
        // `starting` while the durable store loads.
        let monitor = metrics_dir.as_ref().map(|dir| {
            let clock: std::sync::Arc<dyn fc_types::Clock> =
                std::sync::Arc::new(fc_types::WallClock::default());
            let mut m = fc_sweep::ServiceMonitor::new(std::path::Path::new(dir), clock)
                .unwrap_or_else(|e| fail(&format!("cannot create metrics dir `{dir}`: {e}")));
            if let Some(path) = &floor_path {
                let floor = fc_obs::FloorSpec::from_file(std::path::Path::new(path))
                    .unwrap_or_else(|e| fail(&e));
                m = m.with_watchdog(fc_obs::Watchdog::new(floor));
            }
            if let Some(ms) = slow_ms {
                m = m.with_slow_capture(ms, fc_sweep::monitor::DEFAULT_SLOW_KEEP);
            }
            std::sync::Arc::new(m)
        });
        // Responses stream on stdout, so the engine must not print
        // per-point progress there.
        let mut engine = SweepEngine::new().quiet();
        if let Some(n) = threads {
            engine = engine.with_threads(n);
        }
        if let Some(dir) = &store_dir {
            engine = engine
                .with_durable_store(std::path::Path::new(dir))
                .unwrap_or_else(|e| fail(&format!("cannot open store `{dir}`: {e}")));
        }
        let watcher = monitor.as_ref().map(|m| {
            m.set_generation(engine.store().generation());
            m.mark_serving();
            fc_sweep::spawn_watcher(std::sync::Arc::clone(m), metrics_cadence_ms)
        });
        let started = Instant::now();
        let observed = monitor.as_deref();
        let totals = match &spool_dir {
            Some(dir) => fc_sweep::serve_spool_observed(
                &engine,
                std::path::Path::new(dir),
                &fc_sweep::ServeOptions {
                    once: serve_once,
                    ..Default::default()
                },
                observed,
            ),
            None => {
                let stdin = std::io::stdin();
                let stdout = std::io::stdout();
                fc_sweep::serve_jsonl_observed(&engine, stdin.lock(), stdout.lock(), observed)
            }
        }
        .unwrap_or_else(|e| fail(&format!("serve loop failed: {e}")));
        if let Some(w) = watcher {
            w.stop();
        }
        if let Some(m) = &monitor {
            m.set_generation(engine.store().generation());
            m.mark_draining();
            m.tick();
        }
        eprintln!(
            "[fc_sweep] serve: {} request(s), {} point(s) ({} fresh), {} error(s)",
            totals.requests, totals.points, totals.fresh, totals.errors
        );
        let mut prov = provenance(
            "serve",
            &scale_name,
            seed,
            engine.threads(),
            totals.points as usize,
            Vec::new(),
            Vec::new(),
            started.elapsed().as_secs_f64(),
        );
        prov.store_generation = engine.store().generation();
        obs.finish(&prov);
        return;
    }

    if metrics_dir.is_some() || floor_path.is_some() || slow_ms.is_some() {
        eprintln!(
            "[fc_sweep] note: --metrics-dir/--floor/--slow-ms apply to serve and \
             status modes; batch runs export via --metrics-out / --trace-out"
        );
    }
    if sampled && (grid == "mix" || grid == "loaded") {
        fail("--sampled applies to trace-replay grids (fig4/fig5/fig67/designspace/sampled)");
    }
    if no_pit && pit_workers.is_some() {
        fail("--no-pit conflicts with --pit-workers");
    }
    if store_dir.is_some() && (sampled || grid == "mix" || grid == "loaded") {
        eprintln!(
            "[fc_sweep] note: --store backs the detailed trace-replay store; \
             sampled/mix/loaded grids run in-memory"
        );
    }

    if grid == "mix" {
        run_mix_grid(
            &designs_arg,
            &scenarios_arg,
            &capacities,
            scale,
            &scale_name,
            threads,
            seed,
            speedup,
            &json_path,
            &csv_path,
            &bench_path,
            jsonl,
            &obs,
            list_only,
            quiet,
        );
        return;
    }

    if grid == "loaded" {
        if jsonl.is_some() {
            eprintln!(
                "[fc_sweep] note: --progress-jsonl applies to engine-driven \
                 grids; the loaded grid reports on stderr only"
            );
        }
        run_loaded_grid(
            &designs_arg,
            &capacities,
            &workloads,
            scale,
            &scale_name,
            threads,
            seed,
            speedup,
            &json_path,
            &csv_path,
            &bench_path,
            &obs,
            list_only,
        );
        return;
    }

    let designs = match &designs_arg {
        Some(list) => {
            grid = format!("custom({list})");
            parse_designs(list, &capacities)
        }
        None => preset_designs(&grid, &capacities),
    };
    let spec = SweepSpec::new(scale)
        .with_seed(seed)
        .grid(&workloads, &designs)
        .dedup();

    if sampled {
        run_sampled_mode(
            &spec,
            &grid,
            &scale_name,
            seed,
            sample_period,
            sample_strata,
            PitMode {
                workers: pit_workers,
                disabled: no_pit,
                verify: verify_pit,
                bench_path: bench_pit_path,
            },
            threads,
            speedup,
            &json_path,
            &csv_path,
            &bench_path,
            jsonl,
            &obs,
            list_only,
            quiet,
        );
        return;
    }

    if list_only {
        for p in spec.points() {
            println!(
                "{}  (warmup {}, measured {})",
                p.label(),
                p.warmup(),
                p.measured()
            );
        }
        eprintln!("[fc_sweep] {} points", spec.len());
        return;
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }
    if let Some(dir) = &store_dir {
        engine = engine
            .with_durable_store(std::path::Path::new(dir))
            .unwrap_or_else(|e| fail(&format!("cannot open store `{dir}`: {e}")));
    }
    if quiet {
        engine = engine.quiet();
    }
    if let Some(sink) = jsonl {
        engine = engine.with_progress_jsonl(sink);
    }
    let workers = engine.threads();

    eprintln!(
        "[fc_sweep] grid {}: {} points on {} thread(s)",
        grid,
        spec.len(),
        workers
    );
    let started = Instant::now();
    let results = engine.run_spec(&spec);
    let parallel_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fc_sweep] {} simulations in {parallel_secs:.2}s ({} memo hits)",
        engine.store().computed(),
        engine.store().memo_hits()
    );

    print_summary(&results);

    let mut speedup_summary: Option<emit::SpeedupSummary> = None;
    if speedup {
        // Fresh engine, fresh store: a true sequential baseline.
        let seq_engine = SweepEngine::new().with_threads(1).quiet();
        let started = Instant::now();
        let seq_results = seq_engine.run_spec(&spec);
        let seq_secs = started.elapsed().as_secs_f64();
        let identical = results
            .iter()
            .zip(&seq_results)
            .all(|(a, b)| *a.report == *b.report);
        println!();
        println!(
            "speedup: sequential {seq_secs:.2}s / parallel {parallel_secs:.2}s = {:.2}x on {} threads; results identical: {}",
            seq_secs / parallel_secs.max(1e-9),
            workers,
            if identical { "yes" } else { "NO (BUG)" }
        );
        if !identical {
            std::process::exit(1);
        }
        speedup_summary = Some(emit::SpeedupSummary {
            sequential_secs: seq_secs,
            parallel_secs,
            threads: workers,
        });
    }

    let mut prov = provenance(
        &grid,
        &scale_name,
        seed,
        workers,
        spec.len(),
        workloads.iter().map(|w| w.to_string()).collect(),
        design_labels(&designs),
        parallel_secs,
    );
    prov.store_generation = engine.store().generation();
    if let Some(path) = &json_path {
        write_file(
            path,
            &emit::with_provenance(&emit::to_json(&results), &prov),
        );
    }
    if let Some(path) = &csv_path {
        write_file(
            path,
            &emit::csv_with_provenance(&emit::to_csv(&results), &prov),
        );
    }
    if let Some(path) = &bench_path {
        write_file(
            path,
            &emit::with_provenance(
                &emit::to_bench_json(&grid, &results, parallel_secs, speedup_summary),
                &prov,
            ),
        );
    }
    obs.finish(&prov);
}
