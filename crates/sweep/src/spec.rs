//! Declarative sweep descriptions: points and grids.

use fc_sim::{DesignSpec, SimConfig};
use fc_trace::WorkloadKind;

use crate::scale::RunScale;
use crate::store::PointKey;

/// One experiment in a sweep: a fully specified, independently runnable
/// simulation. Two points with equal configuration have equal
/// [`keys`](SweepPoint::key) and always produce equal reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Workload replayed through the pod.
    pub workload: WorkloadKind,
    /// Memory-system design under evaluation.
    pub design: DesignSpec,
    /// Pod configuration (cores, L2, MLP model).
    pub config: SimConfig,
    /// Run sizing.
    pub scale: RunScale,
    /// Base seed the per-point seed is derived from.
    pub base_seed: u64,
}

impl SweepPoint {
    /// The trace seed: a pure function of the point (never of thread
    /// count or submission order), and of the *workload* only within a
    /// sweep — so every design evaluated on a workload replays the same
    /// record stream and [`TraceCache`](crate::TraceCache) can share it.
    pub fn seed(&self) -> u64 {
        self.base_seed ^ (self.workload as u64) << 8
    }

    /// Stacked capacity in MB used for run sizing. Capacity-independent
    /// designs (baseline, ideal) size their runs with
    /// [`RunScale::COMPARABLE_CAPACITY_MB`].
    pub fn capacity_mb(&self) -> u64 {
        RunScale::sizing_capacity(self.design.capacity_mb())
    }

    /// Warmup records for this point.
    pub fn warmup(&self) -> u64 {
        self.scale.warmup(self.capacity_mb())
    }

    /// Measured records for this point.
    pub fn measured(&self) -> u64 {
        self.scale.measured(self.capacity_mb())
    }

    /// Human-readable label (progress lines, result emitters).
    pub fn label(&self) -> String {
        format!("{} / {}", self.workload, self.design.label())
    }

    /// The canonical text encoding of everything that influences this
    /// point's result. The design contributes its canonical JSON spec
    /// (every cache parameter and DRAM override); the `Debug` forms
    /// cover the pod config and the scale. Distinct configurations
    /// never alias.
    pub fn canonical(&self) -> String {
        format!(
            "{:?}|{}|{:?}|{:?}|{}",
            self.workload,
            self.design.to_json(),
            self.config,
            self.scale,
            self.base_seed
        )
    }

    /// Stable memoization key for this point.
    pub fn key(&self) -> PointKey {
        PointKey::from_canonical(self.canonical())
    }
}

/// A declarative grid of sweep points.
///
/// Build one with the fluent methods, then hand it to
/// [`SweepEngine::run_spec`](crate::SweepEngine::run_spec):
///
/// ```
/// use fc_sim::DesignSpec;
/// use fc_sweep::{RunScale, SweepSpec};
/// use fc_trace::WorkloadKind;
///
/// let spec = SweepSpec::new(RunScale::quick())
///     .grid(
///         &WorkloadKind::ALL,
///         &[DesignSpec::page(64), DesignSpec::page(128)],
///     )
///     .point(WorkloadKind::WebSearch, DesignSpec::baseline());
/// assert_eq!(spec.len(), 13);
/// ```
#[derive(Clone, Debug)]
pub struct SweepSpec {
    scale: RunScale,
    config: SimConfig,
    base_seed: u64,
    points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// Default base seed; matches the harness's historical seeding so
    /// sweep results are comparable with earlier sequential runs.
    pub const DEFAULT_SEED: u64 = 42;

    /// An empty spec at `scale` with the default pod config and seed.
    pub fn new(scale: RunScale) -> Self {
        Self {
            scale,
            config: SimConfig::default(),
            base_seed: Self::DEFAULT_SEED,
            points: Vec::new(),
        }
    }

    /// Sets the pod configuration for points added *after* this call.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the base seed for points added *after* this call.
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Appends the full cross product `workloads × designs`.
    pub fn grid(mut self, workloads: &[WorkloadKind], designs: &[DesignSpec]) -> Self {
        for &workload in workloads {
            for &design in designs {
                self = self.point(workload, design);
            }
        }
        self
    }

    /// Appends a single point.
    pub fn point(mut self, workload: WorkloadKind, design: DesignSpec) -> Self {
        self.points.push(SweepPoint {
            workload,
            design,
            config: self.config,
            scale: self.scale,
            base_seed: self.base_seed,
        });
        self
    }

    /// Removes duplicate points (same key), keeping first occurrences.
    /// Submitting duplicates is harmless — the result store memoizes —
    /// but deduping first gives accurate progress totals.
    pub fn dedup(mut self) -> Self {
        let mut seen = std::collections::HashSet::new();
        self.points.retain(|p| seen.insert(p.key()));
        self
    }

    /// The points, in insertion order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the spec has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_cross_product() {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch, WorkloadKind::MapReduce],
            &[
                DesignSpec::baseline(),
                DesignSpec::footprint(64),
                DesignSpec::footprint(128),
            ],
        );
        assert_eq!(spec.len(), 6);
    }

    #[test]
    fn equal_points_share_keys_distinct_points_do_not() {
        let spec = SweepSpec::new(RunScale::tiny())
            .point(WorkloadKind::WebSearch, DesignSpec::footprint(64))
            .point(WorkloadKind::WebSearch, DesignSpec::footprint(64))
            .point(WorkloadKind::WebSearch, DesignSpec::footprint(128));
        let keys: Vec<_> = spec.points().iter().map(|p| p.key()).collect();
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn dedup_preserves_order() {
        let spec = SweepSpec::new(RunScale::tiny())
            .point(WorkloadKind::WebSearch, DesignSpec::baseline())
            .point(WorkloadKind::MapReduce, DesignSpec::baseline())
            .point(WorkloadKind::WebSearch, DesignSpec::baseline())
            .dedup();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.points()[0].workload, WorkloadKind::WebSearch);
        assert_eq!(spec.points()[1].workload, WorkloadKind::MapReduce);
    }

    #[test]
    fn seed_matches_historical_lab_seeding() {
        let spec =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::baseline());
        let p = &spec.points()[0];
        assert_eq!(p.seed(), 42 ^ (WorkloadKind::WebSearch as u64) << 8);
    }

    #[test]
    fn custom_config_changes_key() {
        let small = SweepSpec::new(RunScale::tiny())
            .with_config(SimConfig::small())
            .point(WorkloadKind::WebSearch, DesignSpec::baseline());
        let default =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::baseline());
        assert_ne!(small.points()[0].key(), default.points()[0].key());
    }
}
