//! Consistent-hash ring for durable store shard placement.
//!
//! Chang et al.'s resizable DRAM cache (PAPERS.md) avoids mass
//! remapping on a size change by placing cache groups on a hash ring;
//! we apply the same mechanism to the durable result store's disk
//! shards. Each shard owns [`DEFAULT_VNODES`] virtual nodes scattered
//! around a 64-bit ring, a key lands on the first vnode clockwise from
//! its (mixed) hash, and growing from `n` to `n+1` shards relocates
//! only the keys that fall into the new shard's vnode arcs — about
//! `K/(n+1)` of them, never the wholesale reshuffle a bare
//! `hash % n` causes.

use fc_types::{fnv1a, mix64};

/// Virtual nodes per shard. Enough that per-shard load spread stays
/// within a few percent of uniform at our shard counts, cheap enough
/// that building a ring is microseconds.
pub const DEFAULT_VNODES: u32 = 64;

/// A consistent-hash ring mapping 64-bit key hashes to shard indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(position, shard)` pairs sorted by position. Positions are
    /// effectively unique (64-bit mixed hashes); ties break by shard
    /// index via the sort, keeping placement deterministic regardless.
    points: Vec<(u64, u32)>,
    shards: u32,
}

impl HashRing {
    /// A ring over `shards` shards with [`DEFAULT_VNODES`] virtual
    /// nodes each. Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count per shard.
    pub fn with_vnodes(shards: u32, vnodes: u32) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity((shards * vnodes) as usize);
        for s in 0..shards {
            for v in 0..vnodes {
                // Vnode positions come from the same stable hash family
                // as the keys, finalized so they spread uniformly.
                let pos = mix64(fnv1a(format!("shard-{s}/vnode-{v}").as_bytes()));
                points.push((pos, s));
            }
        }
        points.sort_unstable();
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `raw_hash` (a raw FNV key hash; the ring mixes
    /// it internally, so callers pass `PointKey::hash64()` directly).
    pub fn shard_for_hash(&self, raw_hash: u64) -> u32 {
        let key = mix64(raw_hash);
        // First vnode at or after the key, wrapping past the top.
        let idx = self.points.partition_point(|&(pos, _)| pos < key);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| fnv1a(format!("workload-{}|design|cap={i}", i % 7).as_bytes()))
            .collect()
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let ring = HashRing::new(5);
        let again = HashRing::new(5);
        for k in keys(500) {
            let s = ring.shard_for_hash(k);
            assert!(s < 5);
            assert_eq!(s, again.shard_for_hash(k));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1);
        for k in keys(100) {
            assert_eq!(ring.shard_for_hash(k), 0);
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let ring = HashRing::new(8);
        let mut counts = [0u64; 8];
        let ks = keys(4000);
        for &k in &ks {
            counts[ring.shard_for_hash(k) as usize] += 1;
        }
        let expected = ks.len() as f64 / 8.0;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.7,
                "shard {s} holds {c} of {} keys (expected ~{expected:.0})",
                ks.len()
            );
        }
    }

    /// The resize property from the issue: growing n -> n+1 relocates
    /// at most 2·K/n keys. Exercised across every shard count we would
    /// plausibly deploy (property test over n).
    #[test]
    fn resize_relocates_few_keys() {
        let ks = keys(2000);
        for n in 1u32..12 {
            let before = HashRing::new(n);
            let after = HashRing::new(n + 1);
            let moved = ks
                .iter()
                .filter(|&&k| before.shard_for_hash(k) != after.shard_for_hash(k))
                .count();
            let bound = 2 * ks.len() / n as usize;
            assert!(
                moved <= bound,
                "resize {n}->{} moved {moved} of {} keys (bound {bound})",
                n + 1,
                ks.len()
            );
            // And every moved key must land on the *new* shard: existing
            // shards only ever lose keys during a grow.
            for &k in &ks {
                let (b, a) = (before.shard_for_hash(k), after.shard_for_hash(k));
                if b != a {
                    assert_eq!(a, n, "grow moved a key to an old shard");
                }
            }
        }
    }
}
