//! The parallel sweep executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use fc_obs::{metrics, trace};
use fc_sim::{SimReport, Simulation};

use crate::progress::{Progress, ProgressSink};
use crate::spec::{SweepPoint, SweepSpec};
use crate::store::ResultStore;
use crate::trace_cache::TraceCache;

/// One finished sweep point.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The point that was run.
    pub point: SweepPoint,
    /// Its (possibly memoized) report.
    pub report: Arc<SimReport>,
    /// Wall-clock seconds this worker spent obtaining the report
    /// (near zero for memoized points). Timing only — never part of
    /// the deterministic result.
    pub sim_secs: f64,
    /// Whether the report came from the memo store.
    pub memoized: bool,
}

/// The self-balancing parallel executor (a shared work queue, not
/// per-worker deques: nothing is ever stolen, the cursor hands each
/// idle worker the next unclaimed point).
///
/// A thread that draws a short run immediately claims the next
/// unclaimed point, so
/// heterogeneous grids (64 MB next to 512 MB runs) stay load-balanced
/// without any up-front partitioning.
///
/// **Determinism:** each point is simulated by a fresh
/// [`Simulation`] seeded purely from the point
/// ([`SweepPoint::seed`]), so the report for a point is bit-identical
/// whatever the thread count or claim order; only scheduling varies.
/// Results are additionally memoized in a [`ResultStore`] keyed by the
/// point's stable configuration hash, so resubmitting a point — within
/// one spec or across specs — never re-simulates it.
pub struct SweepEngine {
    store: Arc<ResultStore>,
    sampled: Arc<ResultStore<fc_sample::SampledReport>>,
    traces: Arc<TraceCache>,
    threads: usize,
    verbose: bool,
    jsonl: Option<ProgressSink>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine using every available core, a fresh result store and
    /// the default trace-cache budget.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            store: Arc::new(ResultStore::new()),
            sampled: Arc::new(ResultStore::new()),
            traces: Arc::new(TraceCache::default()),
            threads,
            verbose: true,
            jsonl: None,
        }
    }

    /// Sets the worker-thread count (1 = fully sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Backs the engine's result store with the durable shard
    /// directory at `dir`: results computed by this engine persist,
    /// and previously persisted points are recalled instead of
    /// re-simulated. The sampled store stays in-memory (sampled grids
    /// are cheap to recompute by design).
    pub fn with_durable_store(mut self, dir: &std::path::Path) -> Result<Self, String> {
        self.store = Arc::new(ResultStore::durable(dir)?);
        Ok(self)
    }

    /// Caps the per-workload trace cache at `budget_records` records.
    pub fn with_trace_budget(mut self, budget_records: usize) -> Self {
        self.traces = Arc::new(TraceCache::new(budget_records));
        self
    }

    /// Silences per-point progress lines.
    pub fn quiet(mut self) -> Self {
        self.verbose = false;
        self
    }

    /// Streams structured progress events (one JSON object per point,
    /// plus a final summary) into `sink` — the `--progress-jsonl`
    /// plumbing.
    pub fn with_progress_jsonl(mut self, sink: ProgressSink) -> Self {
        self.jsonl = Some(sink);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The memoized result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The memoized sampled-result store (keys carry the sample plan;
    /// see [`run_sampled_grid`](crate::run_sampled_grid)).
    pub fn sampled_store(&self) -> &ResultStore<fc_sample::SampledReport> {
        &self.sampled
    }

    /// The shared trace cache.
    pub fn trace_cache(&self) -> &TraceCache {
        &self.traces
    }

    /// A progress tracker for `total` points wired to this engine's
    /// verbosity and `--progress-jsonl` sink (shared with the sampled
    /// runner, which drives its own point loop).
    pub(crate) fn progress_for(&self, total: usize) -> Progress {
        Progress::new(total, self.verbose).with_jsonl(self.jsonl.clone())
    }

    /// Runs every point of `spec` (in parallel when the engine has >1
    /// thread), returning results in spec order.
    pub fn run_spec(&self, spec: &SweepSpec) -> Vec<SweepResult> {
        let points = spec.points();
        let progress = self.progress_for(points.len());
        let slots: Vec<OnceLock<(Arc<SimReport>, f64, bool)>> =
            points.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);

        let workers = self.threads.min(points.len()).max(1);
        if workers == 1 {
            trace::set_lane_name("main");
            for (point, slot) in points.iter().zip(&slots) {
                let outcome = self.run_point_tracked(point, &progress);
                slot.set(outcome).expect("slot written once");
            }
        } else {
            std::thread::scope(|scope| {
                let (cursor, points, slots, progress) = (&cursor, &points, &slots, &progress);
                for worker in 0..workers {
                    scope.spawn(move || {
                        trace::set_lane_name(&format!("worker-{worker}"));
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(point) = points.get(index) else {
                                break;
                            };
                            let outcome = self.run_point_tracked(point, progress);
                            slots[index].set(outcome).expect("slot written once");
                        }
                        // Explicit: a scoped join may land before TLS
                        // destructors run, so the buffer drains here.
                        trace::flush_thread();
                    });
                }
            });
        }
        progress.finish_run();
        metrics::counter("sweep.points").add(points.len() as u64);
        metrics::counter("sweep.memo_hits").add(progress.memo_hits() as u64);

        points
            .iter()
            .zip(slots)
            .map(|(point, slot)| {
                let (report, sim_secs, memoized) = slot.into_inner().expect("every point ran");
                SweepResult {
                    point: *point,
                    report,
                    sim_secs,
                    memoized,
                }
            })
            .collect()
    }

    /// Runs (or recalls) a single point.
    pub fn run_point(&self, point: &SweepPoint) -> Arc<SimReport> {
        self.store
            .get_or_compute(&point.key(), || self.simulate(point))
    }

    fn run_point_tracked(
        &self,
        point: &SweepPoint,
        progress: &Progress,
    ) -> (Arc<SimReport>, f64, bool) {
        let _point_span = trace::span_with("point", "sweep", || point.label());
        let key = point.key();
        let memoized = {
            let _span = trace::span("memo-lookup", "sweep");
            self.store.get(&key).is_some()
        };
        if memoized {
            trace::instant("memo-hit", "sweep", || point.label());
        }
        let started = std::time::Instant::now();
        let report = self.store.get_or_compute(&key, || self.simulate(point));
        let sim_secs = started.elapsed().as_secs_f64();
        if !memoized {
            // Fresh simulations (not memo recalls) feed the registry,
            // so counters reflect work actually performed. The
            // per-design counter is what the serve watchdog compares
            // against `bench_floor.json` (same label on both sides).
            report.publish_metrics();
            metrics::counter_named(&format!(
                "{}{}",
                fc_obs::watchdog::FRESH_COUNTER_PREFIX,
                point.design.label()
            ))
            .inc();
        }
        progress.finish_point(&point.label(), memoized);
        (report, sim_secs, memoized)
    }

    /// Simulates one point from scratch. Replays the shared cached
    /// trace when the run fits the trace-cache budget; otherwise
    /// streams records from a fresh generator. Both paths replay the
    /// identical record sequence.
    fn simulate(&self, point: &SweepPoint) -> SimReport {
        let warmup = point.warmup();
        let measured = point.measured();
        let mut sim = Simulation::new(point.config, point.design);
        let report = match self.traces.records(
            point.workload,
            point.config.cores,
            point.seed(),
            warmup + measured,
        ) {
            Some(records) => {
                let (warm, meas) =
                    records[..(warmup + measured) as usize].split_at(warmup as usize);
                {
                    let _span = trace::span("detailed-warmup", "sweep");
                    sim.step_slice(warm);
                    sim.drain();
                }
                let snapshot = sim.snapshot();
                sim.run_records(meas.iter().cloned(), &snapshot)
            }
            None => sim.run_workload(point.workload, point.seed(), warmup, measured),
        };
        metrics::counter("sweep.simulations").inc();
        if fc_obs::series::enabled() {
            sim.memsys().publish_timelines(&point.label());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RunScale;
    use fc_sim::DesignSpec;
    use fc_trace::WorkloadKind;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        )
    }

    #[test]
    fn parallel_equals_sequential() {
        let spec = tiny_spec();
        let seq = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);
        let par = SweepEngine::new().with_threads(4).quiet().run_spec(&spec);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.point, b.point);
            assert_eq!(*a.report, *b.report, "{} diverged", a.point.label());
        }
    }

    #[test]
    fn resubmission_is_memoized() {
        let spec = tiny_spec();
        let engine = SweepEngine::new().with_threads(2).quiet();
        let first = engine.run_spec(&spec);
        let computed = engine.store().computed();
        assert_eq!(computed, spec.len() as u64);
        let second = engine.run_spec(&spec);
        assert_eq!(engine.store().computed(), computed, "no new simulations");
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(&a.report, &b.report), "cached Arc reused");
        }
    }

    #[test]
    fn cached_trace_path_equals_streaming_path() {
        let spec =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::MapReduce, DesignSpec::page(64));
        // Budget of zero forces the streaming fallback.
        let streamed = SweepEngine::new()
            .with_threads(1)
            .with_trace_budget(0)
            .quiet()
            .run_spec(&spec);
        let cached = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);
        assert_eq!(*streamed[0].report, *cached[0].report);
    }

    #[test]
    fn trace_synthesis_is_shared_across_designs() {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[
                DesignSpec::baseline(),
                DesignSpec::page(64),
                DesignSpec::footprint(64),
            ],
        );
        let engine = SweepEngine::new().with_threads(1).quiet();
        engine.run_spec(&spec);
        let per_run = RunScale::tiny().warmup(64) + RunScale::tiny().measured(64);
        // One synthesis for three designs, not three.
        assert_eq!(engine.trace_cache().records_synthesized(), per_run);
    }
}
