//! `fc_sweep status` — a one-screen human summary of a serve
//! process's metrics directory.
//!
//! Reads the artifacts a [`ServiceMonitor`](crate::ServiceMonitor)
//! maintains (`health.json` and `metrics.prom`) and renders the
//! numbers an operator asks first: is it up, is it keeping up, and
//! what are request latencies doing. Rendering is split from file I/O
//! ([`render_status`] takes plain strings) so the formatter is unit
//! testable without a live service.

use std::collections::BTreeMap;
use std::path::Path;

use fc_obs::expo::{EXPOSITION_FILE, HEALTH_FILE};
use fc_sim::json::JsonValue;

/// A minimal scrape of Prometheus exposition text: plain samples and
/// cumulative histogram buckets, keyed by sanitized metric name.
#[derive(Default)]
struct PromScrape {
    samples: BTreeMap<String, f64>,
    /// Base name → `(le, cumulative count)` pairs in file order.
    buckets: BTreeMap<String, Vec<(f64, u64)>>,
}

fn parse_prometheus(text: &str) -> PromScrape {
    let mut scrape = PromScrape::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Some((base, labels)) = name_part.split_once('{') {
            let Some(base) = base.strip_suffix("_bucket") else {
                continue;
            };
            let Some(le) = labels
                .strip_prefix("le=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
            else {
                continue;
            };
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap_or(f64::INFINITY)
            };
            if let Ok(count) = value_part.parse::<u64>() {
                scrape
                    .buckets
                    .entry(base.to_string())
                    .or_default()
                    .push((bound, count));
            }
        } else if let Ok(v) = value_part.parse::<f64>() {
            scrape.samples.insert(name_part.to_string(), v);
        }
    }
    scrape
}

impl PromScrape {
    fn counter(&self, name: &str) -> u64 {
        self.samples.get(name).copied().unwrap_or(0.0) as u64
    }

    /// The smallest bucket bound covering quantile `q` of the
    /// histogram's samples (the standard upper-bound estimate from
    /// cumulative buckets). `None` for an absent or empty histogram.
    fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let buckets = self.buckets.get(name)?;
        let total = buckets.last().map(|(_, c)| *c)?;
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        buckets
            .iter()
            .find(|(_, c)| *c >= target)
            .map(|(le, _)| *le)
    }
}

fn fmt_quantiles(scrape: &PromScrape, name: &str) -> String {
    let count = scrape.counter(&format!("{name}_count"));
    if count == 0 {
        return "no samples".to_string();
    }
    let q = |q: f64| match scrape.quantile(name, q) {
        Some(le) if le.is_finite() => format!("≤{le:.0}ms"),
        Some(_) => "overflow".to_string(),
        None => "-".to_string(),
    };
    format!(
        "p50 {}  p90 {}  p99 {}  (n={count})",
        q(0.50),
        q(0.90),
        q(0.99)
    )
}

/// Renders the one-screen status summary from the raw artifact texts
/// (`None` when the corresponding file is missing).
pub fn render_status(health_json: Option<&str>, metrics_text: Option<&str>) -> String {
    let mut out = String::new();

    match health_json.and_then(|t| JsonValue::parse(t).ok()) {
        Some(h) => {
            let field_str = |name: &str| {
                h.get(name)
                    .and_then(|v| v.as_str().ok())
                    .unwrap_or("?")
                    .to_string()
            };
            let field_f64 = |name: &str| h.get(name).and_then(|v| v.as_f64().ok());
            let state = field_str("state");
            let uptime = field_f64("uptime_secs").unwrap_or(0.0);
            let requests = field_f64("requests").unwrap_or(0.0) as u64;
            let generation = match h.get("generation").and_then(|v| v.as_u64().ok()) {
                Some(g) => format!(", store generation {g}"),
                None => String::new(),
            };
            let last = match field_f64("last_request_age_secs") {
                Some(age) => format!("last request {age:.1}s ago"),
                None => "no requests yet".to_string(),
            };
            out.push_str(&format!(
                "fc_sweep serve — {state} (up {uptime:.1}s, {requests} request(s), \
                 {last}{generation})\n"
            ));
            if let Some(note) = h.get("note").and_then(|v| v.as_str().ok()) {
                out.push_str(&format!("  note:     {note}\n"));
            }
        }
        None => out.push_str("fc_sweep serve — no health.json (service not running here?)\n"),
    }

    let Some(scrape) = metrics_text.map(parse_prometheus) else {
        out.push_str("  (no metrics.prom exposition found)\n");
        return out;
    };
    out.push_str(&format!(
        "  requests: {} handled, {} error(s) ({} parse / {} spec)\n",
        scrape.counter("serve_requests"),
        scrape.counter("serve_errors"),
        scrape.counter("serve_errors_parse"),
        scrape.counter("serve_errors_spec"),
    ));
    out.push_str(&format!(
        "  points:   {} served, {} fresh\n",
        scrape.counter("serve_points"),
        scrape.counter("serve_fresh_points"),
    ));
    out.push_str(&format!(
        "  store:    {} hit(s) / {} miss(es)\n",
        scrape.counter("store_hits"),
        scrape.counter("store_misses"),
    ));
    out.push_str(&format!(
        "  latency (fresh):    {}\n",
        fmt_quantiles(&scrape, "serve_request_latency_ms_fresh")
    ));
    out.push_str(&format!(
        "  latency (memoized): {}\n",
        fmt_quantiles(&scrape, "serve_request_latency_ms_memoized")
    ));
    out.push_str(&format!(
        "  watchdog: {} breach(es), {} degraded window(s), {} slow request(s) captured\n",
        scrape.counter("watchdog_breaches"),
        scrape.counter("watchdog_degraded_windows"),
        scrape.counter("serve_slow_requests"),
    ));
    out
}

/// Reads a metrics directory and renders its status summary. Missing
/// files render as explicit "missing" lines rather than errors — a
/// half-written directory is a state worth reporting, not a crash.
pub fn status_from_dir(dir: &Path) -> String {
    let health = std::fs::read_to_string(dir.join(HEALTH_FILE)).ok();
    let metrics = std::fs::read_to_string(dir.join(EXPOSITION_FILE)).ok();
    render_status(health.as_deref(), metrics.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEALTH: &str = r#"{"state": "serving", "generation": 3,
        "uptime_secs": 42.500, "last_request_age_secs": 1.250,
        "requests": 7, "note": null}"#;

    const METRICS: &str = "\
# TYPE serve_requests counter
serve_requests 7
# TYPE serve_errors counter
serve_errors 2
# TYPE serve_errors_parse counter
serve_errors_parse 1
# TYPE serve_errors_spec counter
serve_errors_spec 1
# TYPE serve_points counter
serve_points 40
# TYPE serve_fresh_points counter
serve_fresh_points 12
# TYPE store_hits counter
store_hits 28
# TYPE store_misses counter
store_misses 12
# TYPE serve_request_latency_ms_fresh histogram
serve_request_latency_ms_fresh_bucket{le=\"10\"} 1
serve_request_latency_ms_fresh_bucket{le=\"100\"} 4
serve_request_latency_ms_fresh_bucket{le=\"+Inf\"} 5
serve_request_latency_ms_fresh_sum 260
serve_request_latency_ms_fresh_count 5
";

    #[test]
    fn renders_health_and_counters() {
        let out = render_status(Some(HEALTH), Some(METRICS));
        assert!(out.contains("serving"), "{out}");
        assert!(out.contains("up 42.5s"), "{out}");
        assert!(out.contains("7 request(s)"), "{out}");
        assert!(out.contains("store generation 3"), "{out}");
        assert!(
            out.contains("7 handled, 2 error(s) (1 parse / 1 spec)"),
            "{out}"
        );
        assert!(out.contains("40 served, 12 fresh"), "{out}");
        assert!(out.contains("28 hit(s) / 12 miss(es)"), "{out}");
    }

    #[test]
    fn quantiles_come_from_cumulative_buckets() {
        let out = render_status(Some(HEALTH), Some(METRICS));
        // 5 samples: p50 → 3rd sample → le=100; p90/p99 → 5th → +Inf.
        assert!(out.contains("p50 ≤100ms"), "{out}");
        assert!(out.contains("p90 overflow"), "{out}");
        assert!(out.contains("(n=5)"), "{out}");
        assert!(out.contains("latency (memoized): no samples"), "{out}");
    }

    #[test]
    fn missing_artifacts_render_not_crash() {
        let out = render_status(None, None);
        assert!(out.contains("no health.json"), "{out}");
        assert!(out.contains("no metrics.prom"), "{out}");
    }
}
