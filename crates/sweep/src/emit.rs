//! Result emitters: JSON and CSV.
//!
//! Hand-rolled (the container has no serialization crates), emitting
//! the metrics every experiment in the harness derives its tables from.
//! One record per sweep point, in submission order.

use crate::executor::SweepResult;

/// Escapes a string for a JSON value position.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON-safe number literal.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders results as a JSON array (one object per point).
pub fn to_json(results: &[SweepResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let p = &r.point;
        let rep = &r.report;
        let prediction = match &rep.prediction {
            Some(pred) => format!(
                "{{\"covered\": {}, \"overpredicted\": {}, \"underpredicted\": {}, \
                 \"singleton_bypasses\": {}, \"singleton_promotions\": {}}}",
                pred.covered,
                pred.overpredicted,
                pred.underpredicted,
                pred.singleton_bypasses,
                pred.singleton_promotions
            ),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"workload\": \"{workload}\", \"design\": \"{design}\", \
             \"capacity_mb\": {mb}, \"seed\": {seed}, \
             \"warmup_records\": {warmup}, \"measured_records\": {measured}, \
             \"key\": \"{key:016x}\", \
             \"insts\": {insts}, \"cycles\": {cycles}, \
             \"throughput\": {tput}, \
             \"miss_ratio\": {miss}, \"hit_ratio\": {hit}, \
             \"offchip_bytes_per_inst\": {obpi}, \
             \"stacked_bytes_per_inst\": {sbpi}, \
             \"offchip_energy_nj\": {oe}, \"stacked_energy_nj\": {se}, \
             \"stacked_row_hit_ratio\": {rh}, \
             \"prediction\": {prediction}}}{comma}\n",
            workload = json_escape(&p.workload.to_string()),
            design = json_escape(&p.design.label()),
            mb = p.capacity_mb(),
            seed = p.seed(),
            warmup = p.warmup(),
            measured = p.measured(),
            key = p.key().hash64(),
            insts = rep.insts,
            cycles = rep.cycles,
            tput = json_num(rep.throughput()),
            miss = json_num(rep.cache.miss_ratio()),
            hit = json_num(rep.cache.hit_ratio()),
            obpi = json_num(rep.offchip_bytes_per_inst()),
            sbpi = json_num(stacked_bytes_per_inst(rep)),
            oe = json_num(rep.offchip_energy.total_nj()),
            se = json_num(rep.stacked_energy.total_nj()),
            rh = json_num(rep.stacked.row_hit_ratio()),
            comma = if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

/// Escapes a CSV field (quotes fields containing separators/quotes).
fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders results as CSV with a header row.
pub fn to_csv(results: &[SweepResult]) -> String {
    let mut out = String::from(
        "workload,design,capacity_mb,seed,warmup_records,measured_records,\
         insts,cycles,throughput,miss_ratio,hit_ratio,\
         offchip_bytes_per_inst,stacked_bytes_per_inst,\
         offchip_energy_nj,stacked_energy_nj,stacked_row_hit_ratio\n",
    );
    for r in results {
        let p = &r.point;
        let rep = &r.report;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3},{:.6}\n",
            csv_escape(&p.workload.to_string()),
            csv_escape(&p.design.label()),
            p.capacity_mb(),
            p.seed(),
            p.warmup(),
            p.measured(),
            rep.insts,
            rep.cycles,
            rep.throughput(),
            rep.cache.miss_ratio(),
            rep.cache.hit_ratio(),
            rep.offchip_bytes_per_inst(),
            stacked_bytes_per_inst(rep),
            rep.offchip_energy.total_nj(),
            rep.stacked_energy.total_nj(),
            rep.stacked.row_hit_ratio(),
        ));
    }
    out
}

fn stacked_bytes_per_inst(rep: &fc_sim::SimReport) -> f64 {
    if rep.insts == 0 {
        0.0
    } else {
        rep.stacked.bytes() as f64 / rep.insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignKind, RunScale, SweepEngine, SweepSpec, WorkloadKind};

    fn sample_results() -> Vec<SweepResult> {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[DesignKind::Baseline, DesignKind::Footprint { mb: 64 }],
        );
        SweepEngine::new().with_threads(1).quiet().run_spec(&spec)
    }

    #[test]
    fn json_has_one_object_per_point() {
        let results = sample_results();
        let json = to_json(&results);
        assert_eq!(json.matches("\"workload\"").count(), 2);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"design\": \"Footprint 64MB\""));
        // The footprint design reports prediction counters.
        assert!(json.contains("\"covered\""));
    }

    #[test]
    fn csv_rows_match_points() {
        let results = sample_results();
        let csv = to_csv(&results);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert!(lines[0].starts_with("workload,design,"));
        assert!(lines[1].contains("Baseline"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
