//! Result emitters: JSON and CSV.
//!
//! Hand-rolled (the container has no serialization crates), emitting
//! the metrics every experiment in the harness derives its tables from.
//! One record per sweep point, in submission order.

use crate::executor::SweepResult;

// One escaper for the whole workspace: the spec layer's.
use fc_sim::json::escape as json_escape;

/// Formats an f64 as a JSON-safe number literal.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders a queueing-delay histogram as a JSON array of bin counts.
fn hist_json(h: &fc_dram::QueueDelayHist) -> String {
    h.to_json()
}

/// Renders a report's per-core counters as a JSON array (one object
/// per core, in core order).
fn per_core_json(rep: &fc_sim::SimReport) -> String {
    let entries: Vec<String> = rep
        .per_core
        .iter()
        .enumerate()
        .map(|(core, c)| {
            format!(
                "{{\"core\": {core}, \"insts\": {}, \"cycles\": {}, \
                 \"l2_misses\": {}, \"ipc\": {}, \"mpki\": {}}}",
                c.insts,
                c.cycles,
                c.l2_misses,
                json_num(c.ipc()),
                json_num(c.mpki()),
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

/// Renders one sweep result as a single JSON object (no trailing
/// newline) — the per-point record `to_json` arrays up, and the
/// payload `fc_sweep serve` streams per point.
pub fn point_record_json(r: &SweepResult) -> String {
    let p = &r.point;
    let rep = &r.report;
    let prediction = match &rep.prediction {
        Some(pred) => format!(
            "{{\"covered\": {}, \"overpredicted\": {}, \"underpredicted\": {}, \
             \"singleton_bypasses\": {}, \"singleton_promotions\": {}}}",
            pred.covered,
            pred.overpredicted,
            pred.underpredicted,
            pred.singleton_bypasses,
            pred.singleton_promotions
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"workload\": \"{workload}\", \"design\": \"{design}\", \
         \"capacity_mb\": {mb}, \"seed\": {seed}, \
         \"warmup_records\": {warmup}, \"measured_records\": {measured}, \
         \"key\": \"{key:016x}\", \
         \"insts\": {insts}, \"cycles\": {cycles}, \
         \"throughput\": {tput}, \
         \"miss_ratio\": {miss}, \"hit_ratio\": {hit}, \
         \"offchip_bytes_per_inst\": {obpi}, \
         \"stacked_bytes_per_inst\": {sbpi}, \
         \"offchip_energy_nj\": {oe}, \"stacked_energy_nj\": {se}, \
         \"stacked_row_hit_ratio\": {rh}, \
         \"stacked_compound_accesses\": {compound}, \
         \"offchip_busy_cycles\": {obusy}, \"stacked_busy_cycles\": {sbusy}, \
         \"offchip_avg_queue_delay\": {oqd}, \"stacked_avg_queue_delay\": {sqd}, \
         \"offchip_queue_hist\": {ohist}, \"stacked_queue_hist\": {shist}, \
         \"per_core\": {per_core}, \
         \"prediction\": {prediction}}}",
        workload = json_escape(&p.workload.to_string()),
        design = json_escape(&p.design.label()),
        mb = p.capacity_mb(),
        seed = p.seed(),
        warmup = p.warmup(),
        measured = p.measured(),
        key = p.key().hash64(),
        insts = rep.insts,
        cycles = rep.cycles,
        tput = json_num(rep.throughput()),
        miss = json_num(rep.cache.miss_ratio()),
        hit = json_num(rep.cache.hit_ratio()),
        obpi = json_num(rep.offchip_bytes_per_inst()),
        sbpi = json_num(stacked_bytes_per_inst(rep)),
        oe = json_num(rep.offchip_energy.total_nj()),
        se = json_num(rep.stacked_energy.total_nj()),
        rh = json_num(rep.stacked.row_hit_ratio()),
        compound = rep.stacked.compound_accesses,
        obusy = rep.offchip.busy_cycles,
        sbusy = rep.stacked.busy_cycles,
        oqd = json_num(rep.offchip.avg_queue_delay()),
        sqd = json_num(rep.stacked.avg_queue_delay()),
        ohist = hist_json(&rep.offchip.queue_hist),
        shist = hist_json(&rep.stacked.queue_hist),
        per_core = per_core_json(rep),
    )
}

/// Renders results as a JSON array (one object per point).
pub fn to_json(results: &[SweepResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&point_record_json(r));
        out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Escapes a CSV field (quotes fields containing separators/quotes).
fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders results as CSV with a header row.
pub fn to_csv(results: &[SweepResult]) -> String {
    let mut out = String::from(
        "workload,design,capacity_mb,seed,warmup_records,measured_records,\
         insts,cycles,throughput,miss_ratio,hit_ratio,\
         offchip_bytes_per_inst,stacked_bytes_per_inst,\
         offchip_energy_nj,stacked_energy_nj,stacked_row_hit_ratio,\
         offchip_busy_cycles,stacked_busy_cycles,\
         offchip_avg_queue_delay,stacked_avg_queue_delay\n",
    );
    for r in results {
        let p = &r.point;
        let rep = &r.report;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3},{:.6},{},{},{:.3},{:.3}\n",
            csv_escape(&p.workload.to_string()),
            csv_escape(&p.design.label()),
            p.capacity_mb(),
            p.seed(),
            p.warmup(),
            p.measured(),
            rep.insts,
            rep.cycles,
            rep.throughput(),
            rep.cache.miss_ratio(),
            rep.cache.hit_ratio(),
            rep.offchip_bytes_per_inst(),
            stacked_bytes_per_inst(rep),
            rep.offchip_energy.total_nj(),
            rep.stacked_energy.total_nj(),
            rep.stacked.row_hit_ratio(),
            rep.offchip.busy_cycles,
            rep.stacked.busy_cycles,
            rep.offchip.avg_queue_delay(),
            rep.stacked.avg_queue_delay(),
        ));
    }
    out
}

/// Wraps a JSON artifact with a run-provenance header. Arrays become
/// `{"provenance": ..., "results": [...]}`; objects get a
/// `"provenance"` key spliced in as their first member. Existing
/// artifact shapes are never mutated in place — callers opt in.
pub fn with_provenance(artifact: &str, prov: &fc_obs::Provenance) -> String {
    let trimmed = artifact.trim_start();
    if trimmed.starts_with('[') {
        format!(
            "{{\n\"provenance\": {},\n\"results\": {}}}\n",
            prov.to_json(),
            artifact.trim_end()
        )
    } else if let Some(rest) = trimmed.strip_prefix('{') {
        format!("{{\n\"provenance\": {},{rest}", prov.to_json())
    } else {
        // Not JSON we recognize; leave it untouched.
        artifact.to_string()
    }
}

/// Prepends a `# provenance: {...}` comment line to a CSV artifact, so
/// every emitted table records the run that produced it without
/// breaking header-row parsing (readers skip `#` lines).
pub fn csv_with_provenance(csv: &str, prov: &fc_obs::Provenance) -> String {
    format!("# provenance: {}\n{csv}", prov.to_json())
}

/// Renders a metrics snapshot plus any published detailed-stats time
/// series as one provenance-stamped JSON object — the `--metrics-out`
/// artifact.
pub fn to_metrics_json(
    snapshot: &fc_obs::metrics::MetricsSnapshot,
    prov: &fc_obs::Provenance,
) -> String {
    format!(
        "{{\n\"provenance\": {},\n\"metrics\": {},\n\"timeseries\": {}\n}}\n",
        prov.to_json(),
        snapshot.to_json(),
        fc_obs::series::published_json(),
    )
}

fn stacked_bytes_per_inst(rep: &fc_sim::SimReport) -> f64 {
    if rep.insts == 0 {
        0.0
    } else {
        rep.stacked.bytes() as f64 / rep.insts as f64
    }
}

/// Parallel-speedup numbers for [`to_bench_json`].
#[derive(Clone, Copy, Debug)]
pub struct SpeedupSummary {
    /// Wall seconds of the sequential rerun.
    pub sequential_secs: f64,
    /// Wall seconds of the parallel run.
    pub parallel_secs: f64,
    /// Worker threads of the parallel run.
    pub threads: usize,
}

/// Renders a benchmark summary for a finished grid: per-design
/// simulation throughput (points and simulated points/sec), each
/// design's geomean performance speedup over the grid's baseline
/// runs (when the grid includes the baseline), and the parallel-vs-
/// sequential engine speedup when one was measured. CI emits this as
/// `BENCH_designspace.json` so the perf trajectory of every design is
/// tracked per commit.
pub fn to_bench_json(
    grid: &str,
    results: &[SweepResult],
    wall_secs: f64,
    speedup: Option<SpeedupSummary>,
) -> String {
    // Baseline throughput per workload, for performance-speedup rows.
    let baseline: Vec<(String, f64)> = results
        .iter()
        .filter(|r| r.point.design.label() == "Baseline")
        .map(|r| (r.point.workload.to_string(), r.report.throughput()))
        .collect();

    // Group by design label, preserving first-seen order.
    let mut order: Vec<String> = Vec::new();
    for r in results {
        let label = r.point.design.label();
        if !order.contains(&label) {
            order.push(label);
        }
    }

    let mut designs = String::new();
    for (i, label) in order.iter().enumerate() {
        let group: Vec<&SweepResult> = results
            .iter()
            .filter(|r| r.point.design.label() == *label)
            .collect();
        let simulated: Vec<&&SweepResult> = group.iter().filter(|r| !r.memoized).collect();
        let sim_secs: f64 = simulated.iter().map(|r| r.sim_secs).sum();
        let points_per_sec = if sim_secs > 0.0 {
            simulated.len() as f64 / sim_secs
        } else {
            0.0
        };
        let ratios: Vec<f64> = group
            .iter()
            .filter_map(|r| {
                let workload = r.point.workload.to_string();
                baseline
                    .iter()
                    .find(|(w, _)| *w == workload)
                    .map(|(_, base)| r.report.throughput() / base)
            })
            .collect();
        let speedup_vs_baseline = if ratios.is_empty() {
            "null".to_string()
        } else {
            json_num(fc_types::geomean(&ratios))
        };
        designs.push_str(&format!(
            "    {{\"design\": \"{}\", \"points\": {}, \"simulated\": {}, \
             \"sim_secs\": {}, \"points_per_sec\": {}, \
             \"geomean_speedup_vs_baseline\": {}}}{}\n",
            json_escape(label),
            group.len(),
            simulated.len(),
            json_num(sim_secs),
            json_num(points_per_sec),
            speedup_vs_baseline,
            if i + 1 == order.len() { "" } else { "," },
        ));
    }

    let speedup_json = match speedup {
        Some(s) => format!(
            "{{\"sequential_secs\": {}, \"parallel_secs\": {}, \"threads\": {}, \
             \"factor\": {}}}",
            json_num(s.sequential_secs),
            json_num(s.parallel_secs),
            s.threads,
            json_num(s.sequential_secs / s.parallel_secs.max(1e-9)),
        ),
        None => "null".to_string(),
    };
    let total_per_sec = if wall_secs > 0.0 {
        results.len() as f64 / wall_secs
    } else {
        0.0
    };
    format!(
        "{{\n  \"grid\": \"{}\",\n  \"total_points\": {},\n  \"wall_secs\": {},\n  \
         \"points_per_sec\": {},\n  \"parallel_speedup\": {},\n  \"designs\": [\n{}  ]\n}}\n",
        json_escape(grid),
        results.len(),
        json_num(wall_secs),
        json_num(total_per_sec),
        speedup_json,
        designs,
    )
}

/// Renders loaded-latency results as a JSON array (one object per
/// `(design, interval)` point, in grid order). `workload` names the
/// injected access stream (one per loaded grid).
pub fn to_loaded_json(results: &[crate::LoadedResult], workload: &str) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let p = &r.point;
        out.push_str(&format!(
            "  {{\"workload\": \"{workload}\", \"design\": \"{design}\", \"interval\": {interval}, \
             \"injected_gbs\": {inj}, \"achieved_gbs\": {ach}, \
             \"avg_latency\": {avg}, \"max_latency\": {max}, \
             \"requests\": {reqs}, \"cycles\": {cycles}, \
             \"stacked_util\": {sutil}, \"offchip_util\": {outil}, \
             \"stacked_avg_queue_delay\": {sqd}, \"offchip_avg_queue_delay\": {oqd}, \
             \"stacked_queue_hist\": {shist}, \"offchip_queue_hist\": {ohist}}}{comma}\n",
            workload = json_escape(workload),
            design = json_escape(&r.design.label()),
            interval = p.interval,
            inj = json_num(p.injected_gbs),
            ach = json_num(p.achieved_gbs),
            avg = json_num(p.avg_latency),
            max = p.max_latency,
            reqs = p.requests,
            cycles = p.cycles,
            sutil = json_num(p.stacked_util()),
            outil = json_num(p.offchip_util()),
            sqd = json_num(p.stacked.avg_queue_delay()),
            oqd = json_num(p.offchip.avg_queue_delay()),
            shist = hist_json(&p.stacked.queue_hist),
            ohist = hist_json(&p.offchip.queue_hist),
            comma = if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders loaded-latency results as CSV with a header row.
pub fn to_loaded_csv(results: &[crate::LoadedResult], workload: &str) -> String {
    let mut out = String::from(
        "workload,design,interval,injected_gbs,achieved_gbs,avg_latency,max_latency,\
         requests,cycles,stacked_util,offchip_util,\
         stacked_avg_queue_delay,offchip_avg_queue_delay\n",
    );
    for r in results {
        let p = &r.point;
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.3},{},{},{},{:.6},{:.6},{:.3},{:.3}\n",
            csv_escape(workload),
            csv_escape(&r.design.label()),
            p.interval,
            p.injected_gbs,
            p.achieved_gbs,
            p.avg_latency,
            p.max_latency,
            p.requests,
            p.cycles,
            p.stacked_util(),
            p.offchip_util(),
            p.stacked.avg_queue_delay(),
            p.offchip.avg_queue_delay(),
        ));
    }
    out
}

/// Renders the bandwidth benchmark summary for a loaded-latency grid:
/// per design, the unloaded latency (flat end of the curve), the usable
/// bandwidth (best achieved rate), and the latency at the heaviest
/// injected load. CI emits this as `BENCH_bandwidth.json`, so each
/// design's bandwidth trajectory is tracked per commit next to
/// `BENCH_designspace.json`'s throughput trajectory.
pub fn to_bandwidth_bench_json(
    results: &[crate::LoadedResult],
    workload: &str,
    wall_secs: f64,
) -> String {
    let grouped = crate::loaded::curves(results);
    let mut designs = String::new();
    for (i, (design, curve)) in grouped.iter().enumerate() {
        let unloaded = curve.first().map(|p| p.avg_latency).unwrap_or(0.0);
        let loaded = curve.last().map(|p| p.avg_latency).unwrap_or(0.0);
        let usable: f64 = curve.iter().map(|p| p.achieved_gbs).fold(0.0, f64::max);
        designs.push_str(&format!(
            "    {{\"design\": \"{}\", \"points\": {}, \"unloaded_latency\": {}, \
             \"loaded_latency\": {}, \"usable_gbs\": {}}}{}\n",
            json_escape(&design.label()),
            curve.len(),
            json_num(unloaded),
            json_num(loaded),
            json_num(usable),
            if i + 1 == grouped.len() { "" } else { "," },
        ));
    }
    format!(
        "{{\n  \"grid\": \"loaded\",\n  \"workload\": \"{}\",\n  \"total_points\": {},\n  \
         \"wall_secs\": {},\n  \"designs\": [\n{}  ]\n}}\n",
        json_escape(workload),
        results.len(),
        json_num(wall_secs),
        designs,
    )
}

/// Renders mix results as a JSON array: one object per
/// `(scenario, design)` point with the consolidation metrics and a
/// per-core array carrying each core's workload, IPC, MPKI, solo-IPC
/// baseline and relative speedup.
pub fn to_mix_json(results: &[crate::MixResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let p = &r.point;
        let rep = &r.report;
        let per_core: Vec<String> = rep
            .per_core
            .iter()
            .enumerate()
            .map(|(core, c)| {
                format!(
                    "{{\"core\": {core}, \"core_workload\": \"{}\", \"insts\": {}, \
                     \"cycles\": {}, \"l2_misses\": {}, \"ipc\": {}, \"mpki\": {}, \
                     \"solo_ipc\": {}, \"speedup\": {}}}",
                    json_escape(p.scenario.workload_at(core as u8, 0).name()),
                    c.insts,
                    c.cycles,
                    c.l2_misses,
                    json_num(c.ipc()),
                    json_num(c.mpki()),
                    json_num(r.solo_ipc[core]),
                    json_num(r.consolidation.per_core_speedup[core]),
                )
            })
            .collect();
        out.push_str(&format!(
            "  {{\"scenario\": \"{scenario}\", \"design\": \"{design}\", \
             \"capacity_mb\": {mb}, \"seed\": {seed}, \
             \"warmup_records\": {warmup}, \"measured_records\": {measured}, \
             \"key\": \"{key:016x}\", \
             \"insts\": {insts}, \"cycles\": {cycles}, \"throughput\": {tput}, \
             \"miss_ratio\": {miss}, \"offchip_bytes_per_inst\": {obpi}, \
             \"weighted_speedup\": {ws}, \"fairness\": {fair}, \
             \"per_core\": [{per_core}]}}{comma}\n",
            scenario = json_escape(&p.scenario.name),
            design = json_escape(&p.design.label()),
            mb = p.capacity_mb(),
            seed = p.seed(),
            warmup = p.warmup(),
            measured = p.measured(),
            key = p.key().hash64(),
            insts = rep.insts,
            cycles = rep.cycles,
            tput = json_num(rep.throughput()),
            miss = json_num(rep.cache.miss_ratio()),
            obpi = json_num(rep.offchip_bytes_per_inst()),
            ws = json_num(r.consolidation.weighted_speedup),
            fair = json_num(r.consolidation.fairness),
            per_core = per_core.join(", "),
            comma = if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders mix results as long-format CSV: one row per
/// `(scenario, design, core)`, with the scenario-level consolidation
/// metrics repeated on every row so each row is self-contained.
pub fn to_mix_csv(results: &[crate::MixResult]) -> String {
    let mut out = String::from(
        "scenario,design,capacity_mb,core,core_workload,insts,cycles,l2_misses,\
         ipc,mpki,solo_ipc,speedup,weighted_speedup,fairness\n",
    );
    for r in results {
        let p = &r.point;
        for (core, c) in r.report.per_core.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                csv_escape(&p.scenario.name),
                csv_escape(&p.design.label()),
                p.capacity_mb(),
                core,
                csv_escape(p.scenario.workload_at(core as u8, 0).name()),
                c.insts,
                c.cycles,
                c.l2_misses,
                c.ipc(),
                c.mpki(),
                r.solo_ipc[core],
                r.consolidation.per_core_speedup[core],
                r.consolidation.weighted_speedup,
                r.consolidation.fairness,
            ));
        }
    }
    out
}

/// Renders the consolidation benchmark summary for a finished mix
/// grid: per `(scenario, design)`, the weighted speedup, fairness,
/// pod throughput and simulation cost, plus each design's geomean
/// weighted speedup across scenarios. CI emits this as
/// `BENCH_mix.json` next to `BENCH_designspace.json` and
/// `BENCH_bandwidth.json`.
pub fn to_mix_bench_json(results: &[crate::MixResult], wall_secs: f64) -> String {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"design\": \"{}\", \
             \"weighted_speedup\": {}, \"fairness\": {}, \"throughput\": {}, \
             \"sim_secs\": {}, \"memoized\": {}}}{}\n",
            json_escape(&r.point.scenario.name),
            json_escape(&r.point.design.label()),
            json_num(r.consolidation.weighted_speedup),
            json_num(r.consolidation.fairness),
            json_num(r.report.throughput()),
            json_num(r.sim_secs),
            r.memoized,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }

    // Per-design geomean weighted speedup across scenarios.
    let mut order: Vec<String> = Vec::new();
    for r in results {
        let label = r.point.design.label();
        if !order.contains(&label) {
            order.push(label);
        }
    }
    let mut designs = String::new();
    for (i, label) in order.iter().enumerate() {
        let speedups: Vec<f64> = results
            .iter()
            .filter(|r| r.point.design.label() == *label)
            .map(|r| r.consolidation.weighted_speedup)
            .collect();
        designs.push_str(&format!(
            "    {{\"design\": \"{}\", \"scenarios\": {}, \
             \"geomean_weighted_speedup\": {}}}{}\n",
            json_escape(label),
            speedups.len(),
            json_num(fc_types::geomean(&speedups)),
            if i + 1 == order.len() { "" } else { "," },
        ));
    }

    format!(
        "{{\n  \"grid\": \"mix\",\n  \"total_points\": {},\n  \"wall_secs\": {},\n  \
         \"points\": [\n{}  ],\n  \"designs\": [\n{}  ]\n}}\n",
        results.len(),
        json_num(wall_secs),
        rows,
        designs,
    )
}

/// Renders an [`Estimate`](crate::Estimate) as a JSON object.
fn estimate_json(e: &crate::Estimate) -> String {
    format!(
        "{{\"mean\": {}, \"stddev\": {}, \"ci_half\": {}, \"n\": {}}}",
        json_num(e.mean),
        json_num(e.stddev),
        json_num(e.ci_half),
        e.n
    )
}

/// Renders sampled results as a JSON array: one object per point with
/// the plan, the per-metric estimates (mean, stddev, 95% CI
/// half-width, interval count), and the measured/replayed fractions.
pub fn to_sampled_json(results: &[crate::SampledResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let p = &r.point.point;
        let rep = &r.report;
        let plan = &rep.plan;
        out.push_str(&format!(
            "  {{\"workload\": \"{workload}\", \"design\": \"{design}\", \
             \"capacity_mb\": {mb}, \"seed\": {seed}, \
             \"warmup_records\": {warmup}, \"measured_records_total\": {measured}, \
             \"key\": \"{key:016x}\", \
             \"plan\": {{\"period\": {period}, \"functional_warmup\": {func}, \
             \"detail_warmup\": {dw}, \"interval\": {interval}, \
             \"warmup_window\": {window}, \"strata\": {strata}}}, \
             \"intervals\": {n}, \"measured_records\": {meas}, \
             \"replayed_records\": {replayed}, \"detailed_records\": {detailed}, \
             \"measured_fraction\": {mfrac}, \"replayed_fraction\": {rfrac}, \
             \"insts\": {insts}, \"cycles\": {cycles}, \
             \"ipc\": {ipc}, \"mpki\": {mpki}, \"hit_ratio\": {hit}, \
             \"offchip_bytes_per_inst\": {obpi}}}{comma}\n",
            workload = json_escape(&p.workload.to_string()),
            design = json_escape(&p.design.label()),
            mb = p.capacity_mb(),
            seed = p.seed(),
            warmup = p.warmup(),
            measured = p.measured(),
            key = r.point.key().hash64(),
            period = plan.period,
            func = plan.functional_warmup,
            dw = plan.detail_warmup,
            interval = plan.interval,
            // u64::MAX means "replay the whole warmup"; the sentinel
            // exceeds double precision, so standard JSON readers would
            // silently corrupt it — emit null instead.
            window = if plan.warmup_window == u64::MAX {
                "null".to_string()
            } else {
                plan.warmup_window.to_string()
            },
            strata = plan.strata,
            n = rep.intervals.len(),
            meas = rep.measured_records,
            replayed = rep.replayed_records,
            detailed = rep.detailed_records,
            mfrac = json_num(rep.measured_fraction()),
            rfrac = json_num(rep.replayed_fraction()),
            insts = rep.insts,
            cycles = rep.cycles,
            ipc = estimate_json(&rep.ipc),
            mpki = estimate_json(&rep.mpki),
            hit = estimate_json(&rep.hit_ratio),
            obpi = estimate_json(&rep.offchip_bytes_per_inst),
            comma = if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders sampled results as CSV with a header row (point estimates
/// and CI half-widths per metric, plus the work fractions).
pub fn to_sampled_csv(results: &[crate::SampledResult]) -> String {
    let mut out = String::from(
        "workload,design,capacity_mb,seed,intervals,period,interval_records,\
         measured_fraction,replayed_fraction,\
         ipc,ipc_ci,mpki,mpki_ci,hit_ratio,hit_ratio_ci,\
         offchip_bytes_per_inst,offchip_bytes_per_inst_ci\n",
    );
    for r in results {
        let p = &r.point.point;
        let rep = &r.report;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            csv_escape(&p.workload.to_string()),
            csv_escape(&p.design.label()),
            p.capacity_mb(),
            p.seed(),
            rep.intervals.len(),
            rep.plan.period,
            rep.plan.interval,
            rep.measured_fraction(),
            rep.replayed_fraction(),
            rep.ipc.mean,
            rep.ipc.ci_half,
            rep.mpki.mean,
            rep.mpki.ci_half,
            rep.hit_ratio.mean,
            rep.hit_ratio.ci_half,
            rep.offchip_bytes_per_inst.mean,
            rep.offchip_bytes_per_inst.ci_half,
        ));
    }
    out
}

/// Renders the speedup-vs-error benchmark for a sampled grid run next
/// to its full detailed twin: per point, the full-run IPC, the sampled
/// estimate with its CI, the relative error, whether the full value
/// fell inside the CI, and the wall-clock speedup; plus grid-level
/// aggregates (total/geomean speedup, worst error, CI coverage). CI
/// emits this as `BENCH_sample.json` next to the other bench
/// artifacts.
///
/// # Panics
///
/// Panics if `sampled` and `full` differ in length or point order —
/// they must come from the same spec.
pub fn to_sample_bench_json(
    sampled: &[crate::SampledResult],
    full: &[SweepResult],
    sampled_wall_secs: f64,
    full_wall_secs: f64,
) -> String {
    assert_eq!(
        sampled.len(),
        full.len(),
        "sampled and full result sets must cover the same spec"
    );
    let mut rows = String::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut worst_err: f64 = 0.0;
    let mut covered = 0usize;
    let mut full_secs_total = 0.0;
    let mut sampled_secs_total = 0.0;
    for (i, (s, f)) in sampled.iter().zip(full).enumerate() {
        assert_eq!(s.point.point, f.point, "point order mismatch");
        let full_ipc = f.report.throughput();
        let est = &s.report.ipc;
        let rel_err = if full_ipc != 0.0 {
            (est.mean - full_ipc) / full_ipc
        } else {
            0.0
        };
        let within_ci = est.contains(full_ipc);
        let speedup = if s.sim_secs > 0.0 {
            f.sim_secs / s.sim_secs
        } else {
            0.0
        };
        if speedup > 0.0 {
            speedups.push(speedup);
        }
        worst_err = worst_err.max(rel_err.abs());
        covered += usize::from(within_ci);
        full_secs_total += f.sim_secs;
        sampled_secs_total += s.sim_secs;
        rows.push_str(&format!(
            "    {{\"workload\": \"{}\", \"design\": \"{}\", \
             \"full_ipc\": {}, \"sampled_ipc\": {}, \"ipc_ci_half\": {}, \
             \"rel_err\": {}, \"within_ci\": {}, \
             \"full_hit_ratio\": {}, \"sampled_hit_ratio\": {}, \
             \"full_secs\": {}, \"sampled_secs\": {}, \"speedup\": {}, \
             \"exhaustive\": {}, \"measured_fraction\": {}, \"replayed_fraction\": {}}}{}\n",
            json_escape(&f.point.workload.to_string()),
            json_escape(&f.point.design.label()),
            json_num(full_ipc),
            json_num(est.mean),
            json_num(est.ci_half),
            json_num(rel_err),
            within_ci,
            json_num(f.report.cache.hit_ratio()),
            json_num(s.report.hit_ratio.mean),
            json_num(f.sim_secs),
            json_num(s.sim_secs),
            json_num(speedup),
            s.report.plan.skip() == 0,
            json_num(s.report.measured_fraction()),
            json_num(s.report.replayed_fraction()),
            if i + 1 == sampled.len() { "" } else { "," },
        ));
    }
    let geomean = if speedups.is_empty() {
        0.0
    } else {
        fc_types::geomean(&speedups)
    };
    let total_speedup = if sampled_secs_total > 0.0 {
        full_secs_total / sampled_secs_total
    } else {
        0.0
    };
    format!(
        "{{\n  \"grid\": \"sampled\",\n  \"points\": {},\n  \
         \"full_wall_secs\": {},\n  \"sampled_wall_secs\": {},\n  \
         \"full_sim_secs\": {},\n  \"sampled_sim_secs\": {},\n  \
         \"total_speedup\": {},\n  \"geomean_speedup\": {},\n  \
         \"max_abs_rel_err\": {},\n  \"within_ci\": {},\n  \"rows\": [\n{}  ]\n}}\n",
        sampled.len(),
        json_num(full_wall_secs),
        json_num(sampled_wall_secs),
        json_num(full_secs_total),
        json_num(sampled_secs_total),
        json_num(total_speedup),
        json_num(geomean),
        json_num(worst_err),
        covered,
        rows,
    )
}

/// Renders the parallel-in-time benchmark: the same sampled grid run
/// sequentially (one worker, interval after interval) and with
/// interval-level dispatch across `pit_workers` workers. Per point,
/// both sim times (sequential wall vs summed per-worker busy time —
/// the work, which parallelism does not change) and whether the two
/// reports are bit-identical (they must be — a `false` here is a bug,
/// and the CLI exits non-zero); the grid-level wall times and
/// points/sec carry the actual speedup. CI emits this as
/// `BENCH_pit.json`. Wall-clock speedup tracks the *physical* core
/// count, not `pit_workers`.
///
/// # Panics
///
/// Panics if the two result sets differ in length or point order.
pub fn to_pit_bench_json(
    sequential: &[crate::SampledResult],
    pit: &[crate::SampledResult],
    sequential_wall_secs: f64,
    pit_wall_secs: f64,
    pit_workers: usize,
) -> String {
    assert_eq!(
        sequential.len(),
        pit.len(),
        "sequential and parallel-in-time result sets must cover the same spec"
    );
    let mut rows = String::new();
    let mut all_identical = true;
    for (i, (s, p)) in sequential.iter().zip(pit).enumerate() {
        assert_eq!(s.point.point, p.point.point, "point order mismatch");
        let identical = *s.report == *p.report;
        all_identical &= identical;
        let speedup = if p.sim_secs > 0.0 {
            s.sim_secs / p.sim_secs
        } else {
            0.0
        };
        rows.push_str(&format!(
            "    {{\"workload\": \"{}\", \"design\": \"{}\", \
             \"sequential_secs\": {}, \"pit_secs\": {}, \"speedup\": {}, \
             \"identical\": {}, \"intervals\": {}, \"splittable\": {}, \
             \"replayed_fraction\": {}}}{}\n",
            json_escape(&s.point.point.workload.to_string()),
            json_escape(&s.point.point.design.label()),
            json_num(s.sim_secs),
            json_num(p.sim_secs),
            json_num(speedup),
            identical,
            s.report.intervals.len(),
            s.report.plan.skip() > 0,
            json_num(s.report.replayed_fraction()),
            if i + 1 == sequential.len() { "" } else { "," },
        ));
    }
    let pps = |n: usize, secs: f64| {
        if secs > 0.0 {
            n as f64 / secs
        } else {
            0.0
        }
    };
    format!(
        "{{\n  \"grid\": \"pit\",\n  \"points\": {},\n  \"pit_workers\": {},\n  \
         \"sequential_wall_secs\": {},\n  \"pit_wall_secs\": {},\n  \
         \"sequential_points_per_sec\": {},\n  \"pit_points_per_sec\": {},\n  \
         \"speedup\": {},\n  \"identical\": {},\n  \"rows\": [\n{}  ]\n}}\n",
        sequential.len(),
        pit_workers,
        json_num(sequential_wall_secs),
        json_num(pit_wall_secs),
        json_num(pps(sequential.len(), sequential_wall_secs)),
        json_num(pps(pit.len(), pit_wall_secs)),
        json_num(sequential_wall_secs / pit_wall_secs.max(1e-9)),
        all_identical,
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpec, RunScale, SweepEngine, SweepSpec, WorkloadKind};

    fn sample_results() -> Vec<SweepResult> {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        );
        SweepEngine::new().with_threads(1).quiet().run_spec(&spec)
    }

    #[test]
    fn json_has_one_object_per_point() {
        let results = sample_results();
        let json = to_json(&results);
        assert_eq!(json.matches("\"workload\"").count(), 2);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"design\": \"Footprint 64MB\""));
        // The footprint design reports prediction counters.
        assert!(json.contains("\"covered\""));
    }

    #[test]
    fn csv_rows_match_points() {
        let results = sample_results();
        let csv = to_csv(&results);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert!(lines[0].starts_with("workload,design,"));
        assert!(lines[1].contains("Baseline"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn bench_json_summarizes_per_design() {
        let results = sample_results();
        let bench = to_bench_json(
            "test-grid",
            &results,
            1.0,
            Some(SpeedupSummary {
                sequential_secs: 2.0,
                parallel_secs: 1.0,
                threads: 2,
            }),
        );
        assert!(bench.contains("\"grid\": \"test-grid\""));
        assert!(bench.contains("\"design\": \"Baseline\""));
        assert!(bench.contains("\"design\": \"Footprint 64MB\""));
        assert!(bench.contains("\"points_per_sec\""));
        assert!(bench.contains("\"factor\": 2"));
        // The grid includes the baseline, so speedups are reported.
        assert!(!bench.contains("\"geomean_speedup_vs_baseline\": null"));
    }

    #[test]
    fn loaded_emitters_cover_every_point() {
        use fc_sim::loaded::LoadedConfig;
        let grid = crate::LoadedGrid {
            designs: vec![DesignSpec::baseline(), DesignSpec::page(64)],
            intervals: vec![96, 8],
            config: LoadedConfig {
                warmup: 300,
                requests: 300,
                ..LoadedConfig::tiny()
            },
        };
        let results = crate::run_loaded(&grid, 2);
        let json = to_loaded_json(&results, "web search");
        assert_eq!(json.matches("\"design\"").count(), 4);
        assert!(json.contains("\"injected_gbs\""));
        assert!(json.contains("\"stacked_queue_hist\""));
        assert!(json.contains("\"workload\": \"web search\""));
        let csv = to_loaded_csv(&results, "web search");
        assert_eq!(csv.lines().count(), 5); // header + 4 rows
        assert!(csv.starts_with("workload,design,"));
        let bench = to_bandwidth_bench_json(&results, "web search", 0.25);
        assert!(bench.contains("\"grid\": \"loaded\""));
        assert!(bench.contains("\"workload\": \"web search\""));
        assert!(bench.contains("\"usable_gbs\""));
        assert_eq!(bench.matches("\"unloaded_latency\"").count(), 2);
    }

    #[test]
    fn json_carries_per_core_counters() {
        let results = sample_results();
        let json = to_json(&results);
        // 16 cores per point: every point carries a per-core array.
        assert_eq!(json.matches("\"per_core\"").count(), 2);
        assert!(json.contains("\"core\": 15"));
        assert!(json.contains("\"ipc\""));
        assert!(json.contains("\"mpki\""));
    }

    #[test]
    fn mix_emitters_cover_scenarios_and_cores() {
        use fc_sim::{ScenarioSpec, SimConfig};
        let grid = crate::MixGrid::new(
            vec![ScenarioSpec::split(
                WorkloadKind::DataServing,
                WorkloadKind::MapReduce,
                4,
            )],
            vec![DesignSpec::baseline(), DesignSpec::footprint(64)],
            RunScale::tiny(),
        )
        .with_config(SimConfig::small());
        let results = crate::run_mix(&grid, &SweepEngine::new().with_threads(2).quiet());

        let json = to_mix_json(&results);
        assert_eq!(json.matches("\"scenario\"").count(), 2);
        assert_eq!(json.matches("\"core_workload\"").count(), 8);
        assert!(json.contains("\"weighted_speedup\""));
        assert!(json.contains("\"fairness\""));
        assert!(json.contains("\"core_workload\": \"Data Serving\""));
        assert!(json.contains("\"core_workload\": \"MapReduce\""));

        let csv = to_mix_csv(&results);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * 4, "header + one row per core");
        assert!(lines[0].starts_with("scenario,design,"));
        assert!(lines[0].contains("solo_ipc"));
        assert!(lines[1].contains("Data Serving+MapReduce"));

        let bench = to_mix_bench_json(&results, 0.5);
        assert!(bench.contains("\"grid\": \"mix\""));
        assert!(bench.contains("\"geomean_weighted_speedup\""));
        assert_eq!(bench.matches("\"weighted_speedup\"").count(), 2);
    }

    #[test]
    fn sampled_emitters_cover_every_point() {
        use crate::{run_sampled_grid, SamplePlan, SampledGrid};
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        );
        let grid = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
        let engine = SweepEngine::new().with_threads(2).quiet();
        let sampled = run_sampled_grid(&grid, &engine);
        let full = engine.run_spec(&spec);

        let json = to_sampled_json(&sampled);
        assert_eq!(json.matches("\"workload\"").count(), 2);
        assert!(json.contains("\"plan\""));
        assert!(json.contains("\"ci_half\""));
        assert!(json.contains("\"replayed_fraction\""));
        assert!(json.contains("\"design\": \"Footprint 64MB\""));

        let csv = to_sampled_csv(&sampled);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ipc_ci"));
        assert!(lines[1].contains("Baseline"));

        let bench = to_sample_bench_json(&sampled, &full, 0.5, 2.0);
        assert!(bench.contains("\"grid\": \"sampled\""));
        assert!(bench.contains("\"total_speedup\""));
        assert!(bench.contains("\"geomean_speedup\""));
        assert!(bench.contains("\"max_abs_rel_err\""));
        assert_eq!(bench.matches("\"rel_err\"").count(), 2);
        assert!(bench.contains("\"exhaustive\": true"));
    }

    #[test]
    #[should_panic(expected = "same spec")]
    fn sample_bench_rejects_mismatched_sets() {
        use crate::{run_sampled_grid, SamplePlan, SampledGrid};
        let spec =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::baseline());
        let grid = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
        let engine = SweepEngine::new().with_threads(1).quiet();
        let sampled = run_sampled_grid(&grid, &engine);
        to_sample_bench_json(&sampled, &[], 0.1, 0.1);
    }

    #[test]
    fn pit_bench_compares_sequential_and_parallel_runs() {
        use crate::{run_sampled_grid, run_sampled_grid_pit, SamplePlan, SampledGrid};
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        );
        let plan = SamplePlan::new(1_000, 200, 100, 100).with_warmup_window(1_000);
        let grid = SampledGrid::with_plan(&spec, plan);
        let sequential = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        let pit = run_sampled_grid_pit(&grid, &SweepEngine::new().with_threads(1).quiet(), 3);

        let bench = to_pit_bench_json(&sequential, &pit, 2.0, 0.5, 3);
        let parsed = fc_sim::json::JsonValue::parse(&bench).expect("valid JSON");
        assert_eq!(parsed.field("grid").unwrap().as_str().unwrap(), "pit");
        assert_eq!(parsed.field("pit_workers").unwrap().as_u64().unwrap(), 3);
        assert_eq!(parsed.field("speedup").unwrap().as_u64().unwrap(), 4);
        assert!(parsed.field("identical").unwrap().as_bool().unwrap());
        let fc_sim::json::JsonValue::Arr(rows) = parsed.field("rows").unwrap() else {
            panic!("rows should be an array");
        };
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|r| r.field("identical").unwrap().as_bool().unwrap()));
        assert!(rows
            .iter()
            .all(|r| r.field("splittable").unwrap().as_bool().unwrap()));
    }

    #[test]
    #[should_panic(expected = "same spec")]
    fn pit_bench_rejects_mismatched_sets() {
        use crate::{run_sampled_grid, SamplePlan, SampledGrid};
        let spec =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::baseline());
        let grid = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
        let sampled = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        to_pit_bench_json(&sampled, &[], 0.1, 0.1, 2);
    }

    #[test]
    fn provenance_wraps_arrays_and_objects() {
        let mut prov = fc_obs::Provenance::for_tool("fc_sweep");
        prov.grid = Some("designspace".to_string());
        prov.seed = Some(42);

        let results = sample_results();
        let wrapped = with_provenance(&to_json(&results), &prov);
        let parsed = fc_sim::json::JsonValue::parse(&wrapped).expect("valid JSON");
        assert!(parsed.get("provenance").is_some());
        let fc_sim::json::JsonValue::Arr(rows) = parsed.field("results").unwrap() else {
            panic!("results should stay an array");
        };
        assert_eq!(rows.len(), 2);

        let bench = with_provenance(&to_bench_json("g", &results, 1.0, None), &prov);
        let parsed = fc_sim::json::JsonValue::parse(&bench).expect("valid JSON");
        let fc_sim::json::JsonValue::Obj(fields) = &parsed else {
            panic!("bench stays an object");
        };
        assert_eq!(fields[0].0, "provenance", "provenance splices in first");
        assert!(parsed.get("grid").is_some());
        let tool = parsed.field("provenance").unwrap().field("tool").unwrap();
        assert_eq!(tool.as_str().unwrap(), "fc_sweep");

        // Non-JSON artifacts pass through untouched.
        assert_eq!(with_provenance("plain text", &prov), "plain text");
    }

    #[test]
    fn csv_provenance_is_a_comment_line() {
        let prov = fc_obs::Provenance::for_tool("fc_sweep");
        let results = sample_results();
        let csv = csv_with_provenance(&to_csv(&results), &prov);
        let mut lines = csv.lines();
        let first = lines.next().unwrap();
        assert!(first.starts_with("# provenance: {"));
        fc_sim::json::JsonValue::parse(first.trim_start_matches("# provenance: "))
            .expect("comment payload is valid JSON");
        assert!(lines.next().unwrap().starts_with("workload,design,"));
    }

    #[test]
    fn metrics_json_carries_snapshot_and_provenance() {
        fc_obs::metrics::counter("emit.test.counter").add(3);
        let snapshot = fc_obs::metrics::snapshot();
        let prov = fc_obs::Provenance::for_tool("fc_sweep");
        let out = to_metrics_json(&snapshot, &prov);
        let parsed = fc_sim::json::JsonValue::parse(&out).expect("valid JSON");
        for key in ["provenance", "metrics", "timeseries"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        let counters = parsed.field("metrics").unwrap().field("counters").unwrap();
        assert!(
            counters
                .field("emit.test.counter")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 3
        );
    }

    #[test]
    fn bench_json_without_speedup_or_baseline() {
        let spec = SweepSpec::new(RunScale::tiny())
            .grid(&[WorkloadKind::WebSearch], &[DesignSpec::alloy(64)]);
        let results = SweepEngine::new().with_threads(1).quiet().run_spec(&spec);
        let bench = to_bench_json("alloy-only", &results, 0.5, None);
        assert!(bench.contains("\"parallel_speedup\": null"));
        assert!(bench.contains("\"geomean_speedup_vs_baseline\": null"));
    }
}
