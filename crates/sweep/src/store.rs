//! Concurrent memoized result storage, optionally durable.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use fc_obs::metrics;
use fc_sim::SimReport;

use crate::durable::{Durable, StoreValue};

/// Stable identity of a sweep point: an FNV-1a hash for cheap sharding
/// and comparison, plus the full canonical encoding so hash collisions
/// can never alias two different configurations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PointKey {
    hash: u64,
    canonical: String,
}

impl PointKey {
    /// Builds the key for a canonical point encoding.
    pub fn from_canonical(canonical: String) -> Self {
        // The workspace-wide FNV-1a: stable across runs, platforms and
        // Rust versions (unlike `DefaultHasher`, which documents no
        // such guarantee).
        let hash = fc_types::fnv1a(canonical.as_bytes());
        Self { hash, canonical }
    }

    /// The 64-bit hash (sharding, compact external IDs).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// The canonical encoding the key was built from.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

/// One key's slot: either a finished report or a gate other threads
/// wait on while the owning thread simulates.
enum Slot<T> {
    Ready(Arc<T>),
    Pending(Arc<Gate>),
}

struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.done.lock().expect("gate lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("gate lock");
        while !*done {
            done = self.cv.wait(done).expect("gate wait");
        }
    }
}

/// Clears a pending slot if the computing closure panics, so waiting
/// threads retry (and recompute) instead of deadlocking.
struct PendingGuard<'a, T> {
    store: &'a ResultStore<T>,
    key: &'a PointKey,
    gate: &'a Arc<Gate>,
    completed: bool,
}

impl<T> Drop for PendingGuard<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            let mut shard = self.store.shard(self.key).lock().expect("store shard");
            shard.remove(self.key);
            drop(shard);
            self.gate.open();
        }
    }
}

/// A sharded, concurrent, memoized map from [`PointKey`] to a result
/// value (a [`SimReport`] for trace-replay grids, an
/// `fc_sample::SampledReport` for sampled grids): each point is
/// computed at most once per store, and concurrent requests for the
/// same in-flight point block until the owner finishes rather than
/// duplicating the simulation.
pub struct ResultStore<T = SimReport> {
    shards: Vec<Mutex<HashMap<PointKey, Slot<T>>>>,
    computed: AtomicU64,
    memo_hits: AtomicU64,
    durable: Option<Durable<T>>,
}

impl<T> Default for ResultStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: StoreValue> ResultStore<T> {
    /// A store backed by the durable shard directory at `dir` (created
    /// if absent, reopened with its recorded shard count otherwise).
    /// Results computed through this store persist across processes;
    /// see `durable.rs` for the file layout and recovery semantics.
    pub fn durable(dir: &Path) -> Result<Self, String> {
        Self::durable_with_shards(dir, None)
    }

    /// A durable store with an explicit disk-shard count. Reopening an
    /// existing directory with a different count migrates its records
    /// onto the new consistent-hash ring.
    pub fn durable_with_shards(dir: &Path, shards: Option<u32>) -> Result<Self, String> {
        let durable = match shards {
            Some(n) => Durable::open(dir, n),
            None => Durable::open_default(dir),
        }?;
        let mut store = Self::new();
        store.durable = Some(durable);
        Ok(store)
    }
}

impl<T> ResultStore<T> {
    /// Shards in the store: enough that a full pod's worth of worker
    /// threads rarely contend on one lock.
    const SHARDS: usize = 16;

    /// An empty in-memory store.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            computed: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            durable: None,
        }
    }

    fn shard(&self, key: &PointKey) -> &Mutex<HashMap<PointKey, Slot<T>>> {
        // FNV's low bits correlate for near-identical canonical strings
        // (two points differing in one capacity digit), so finalize the
        // hash before reducing it — otherwise near-identical configs
        // pile onto a few shards.
        &self.shards[(fc_types::mix64(key.hash64()) as usize) % self.shards.len()]
    }

    /// Pulls `key`'s disk shard into memory on first touch (no-op for
    /// in-memory stores and already-loaded shards). Disk records never
    /// clobber a live in-memory slot.
    fn ensure_loaded_for(&self, key: &PointKey) {
        let Some(durable) = &self.durable else {
            return;
        };
        durable.ensure_loaded(durable.shard_of(key), |loaded_key, value| {
            let mut shard = self.shard(&loaded_key).lock().expect("store shard");
            shard
                .entry(loaded_key)
                .or_insert_with(|| Slot::Ready(Arc::new(value)));
        });
    }

    /// The store generation if durable (bumped on quarantine/resize),
    /// `None` for in-memory stores. Recorded in artifact provenance.
    pub fn generation(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.generation())
    }

    /// The report for `key` if already computed (or persisted).
    pub fn get(&self, key: &PointKey) -> Option<Arc<T>> {
        self.ensure_loaded_for(key);
        let shard = self.shard(key).lock().expect("store shard");
        match shard.get(key) {
            Some(Slot::Ready(report)) => Some(Arc::clone(report)),
            _ => None,
        }
    }

    /// Returns the memoized report for `key`, running `compute` first if
    /// this is the key's first request. Concurrent callers of the same
    /// key wait for the single in-flight computation. Fresh results are
    /// appended to the durable backend, when there is one.
    pub fn get_or_compute<F: FnOnce() -> T>(&self, key: &PointKey, compute: F) -> Arc<T> {
        self.ensure_loaded_for(key);
        loop {
            let gate = {
                let mut shard = self.shard(key).lock().expect("store shard");
                match shard.get(key) {
                    Some(Slot::Ready(report)) => {
                        self.memo_hits.fetch_add(1, Ordering::Relaxed);
                        metrics::counter("store.hits").add(1);
                        return Arc::clone(report);
                    }
                    Some(Slot::Pending(gate)) => Arc::clone(gate),
                    None => {
                        metrics::counter("store.misses").add(1);
                        let gate = Gate::new();
                        shard.insert(key.clone(), Slot::Pending(Arc::clone(&gate)));
                        drop(shard);

                        let mut guard = PendingGuard {
                            store: self,
                            key,
                            gate: &gate,
                            completed: false,
                        };
                        let report = Arc::new(compute());
                        guard.completed = true;

                        let mut shard = self.shard(key).lock().expect("store shard");
                        shard.insert(key.clone(), Slot::Ready(Arc::clone(&report)));
                        drop(shard);
                        self.computed.fetch_add(1, Ordering::Relaxed);
                        if let Some(durable) = &self.durable {
                            durable.append(key, &report);
                        }
                        gate.open();
                        return report;
                    }
                }
            };
            // Someone else is simulating this point: wait, then re-check
            // (the slot is Ready on success, vacated on panic).
            gate.wait();
        }
    }

    /// Number of distinct simulations executed.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests served from memoized results.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(insts: u64) -> SimReport {
        SimReport {
            insts,
            cycles: 1,
            per_core: Vec::new(),
            cache: Default::default(),
            offchip: Default::default(),
            stacked: Default::default(),
            offchip_energy: Default::default(),
            stacked_energy: Default::default(),
            prediction: None,
        }
    }

    #[test]
    fn second_request_is_a_memo_hit() {
        let store = ResultStore::new();
        let key = PointKey::from_canonical("point-a".into());
        let a = store.get_or_compute(&key, || report(7));
        let b = store.get_or_compute(&key, || panic!("must not recompute"));
        assert_eq!(a.insts, b.insts);
        assert_eq!(store.computed(), 1);
        assert_eq!(store.memo_hits(), 1);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let store = Arc::new(ResultStore::new());
        let key = PointKey::from_canonical("contended".into());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let key = key.clone();
            handles.push(std::thread::spawn(move || {
                store
                    .get_or_compute(&key, || {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        report(9)
                    })
                    .insts
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("worker"), 9);
        }
        assert_eq!(store.computed(), 1);
        assert_eq!(store.memo_hits(), 7);
    }

    #[test]
    fn panicked_computation_releases_waiters() {
        let store = Arc::new(ResultStore::new());
        let key = PointKey::from_canonical("poisoned".into());
        let panicker = {
            let store = Arc::clone(&store);
            let key = key.clone();
            std::thread::spawn(move || {
                let _ = store.get_or_compute(&key, || panic!("simulated failure"));
            })
        };
        assert!(panicker.join().is_err());
        // The slot must be vacated: a retry computes fresh.
        let r = store.get_or_compute(&key, || report(3));
        assert_eq!(r.insts, 3);
    }

    #[test]
    fn keys_distinguish_canonical_strings() {
        let a = PointKey::from_canonical("a".into());
        let b = PointKey::from_canonical("b".into());
        assert_ne!(a, b);
        assert_ne!(a.hash64(), b.hash64());
        assert_eq!(a, PointKey::from_canonical("a".into()));
    }

    #[test]
    fn shards_balance_over_real_grid_keys() {
        // Regression for raw `fnv % n` placement: canonical encodings of
        // a real design-space grid share long prefixes and differ only
        // in a few digits, which correlates FNV's low bits. The mixed
        // placement must still spread them.
        use crate::{RunScale, SweepSpec};
        let designs = fc_sim::resolve_designs("baseline,footprint", &[64, 128, 256, 512])
            .expect("registry designs");
        let spec = SweepSpec::new(RunScale::tiny()).grid(&fc_trace::WorkloadKind::ALL, &designs);
        let keys: Vec<PointKey> = spec.points().iter().map(|p| p.key()).collect();
        assert!(keys.len() >= 24, "grid too small to test balance");
        let mut counts = [0usize; ResultStore::<SimReport>::SHARDS];
        let store: ResultStore = ResultStore::new();
        for k in &keys {
            let idx = (fc_types::mix64(k.hash64()) as usize) % store.shards.len();
            counts[idx] += 1;
        }
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        let max = counts.iter().max().copied().unwrap_or(0);
        // With 24 keys over 16 shards, uniform placement occupies many
        // shards and no shard hoards a large fraction of the keys.
        assert!(
            occupied >= 10,
            "only {occupied} of 16 shards occupied: {counts:?}"
        );
        assert!(
            max <= keys.len() / 4,
            "one shard holds {max} of {} keys: {counts:?}",
            keys.len()
        );
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "fc-store-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let key = PointKey::from_canonical("persistent-point".into());
        {
            let store: ResultStore = ResultStore::durable(&dir).unwrap();
            let r = store.get_or_compute(&key, || report(42));
            assert_eq!(r.insts, 42);
            assert_eq!(store.computed(), 1);
            assert_eq!(store.generation(), Some(0));
        }
        {
            let store: ResultStore = ResultStore::durable(&dir).unwrap();
            // Served from disk: no recompute.
            let r = store.get_or_compute(&key, || panic!("must load from disk"));
            assert_eq!(r.insts, 42);
            assert_eq!(store.computed(), 0);
            assert_eq!(store.memo_hits(), 1);
            // get() also sees it.
            assert_eq!(store.get(&key).unwrap().insts, 42);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stores_are_generic_over_the_result_type() {
        // Sampled grids memoize a different value type through the same
        // machinery.
        let store: ResultStore<Vec<f64>> = ResultStore::new();
        let key = PointKey::from_canonical("sampled".into());
        let v = store.get_or_compute(&key, || vec![1.0, 2.0]);
        assert_eq!(*v, vec![1.0, 2.0]);
        assert_eq!(store.computed(), 1);
    }
}
