//! The sampled sweep: SMARTS-style interval sampling for every point
//! of a trace-replay grid.
//!
//! A [`SampledPoint`] is an ordinary [`SweepPoint`] plus a
//! [`SamplePlan`]; [`run_sampled_grid`] executes a grid of them with
//! the same discipline as the detailed executor — self-balancing
//! shared-cursor workers, per-point seeds that are pure functions of
//! the point, the shared [`TraceCache`](crate::TraceCache), and
//! memoization in the engine's sampled [`ResultStore`] (the plan is
//! folded into the FNV key, so a point sampled under two plans never
//! aliases). Results are bit-identical for any worker-thread count.
//!
//! Auto plans ([`SampledGrid::auto`]) derive each point's plan from
//! its run sizing and its design's state memory
//! (`DesignSpec::warm_scale`): capacity-scaled functional windows,
//! skipping only in the long-trace regime, exhaustive warming when
//! the trace is too short to skip safely.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use fc_sample::{run_sampled, run_sampled_stream, SamplePlan, SampledReport};
use fc_sim::Simulation;
use fc_trace::TraceGenerator;

use crate::executor::SweepEngine;
use crate::spec::{SweepPoint, SweepSpec};
use crate::store::PointKey;

/// One experiment in a sampled sweep: a sweep point and its plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledPoint {
    /// The underlying trace-replay point (workload, design, config,
    /// scale, seed) — warmup/measured sizing and seeding are exactly
    /// the full run's, so estimates are comparable point-for-point.
    pub point: SweepPoint,
    /// The sampling plan driving the two-mode execution.
    pub plan: SamplePlan,
}

impl SampledPoint {
    /// Pairs `point` with the auto-derived plan for its run sizing,
    /// capacity, and design state memory.
    pub fn auto(point: SweepPoint) -> Self {
        let plan = SamplePlan::for_run_scaled(
            point.warmup(),
            point.measured(),
            point.capacity_mb(),
            point.design.warm_scale(),
        );
        Self { point, plan }
    }

    /// Human-readable label (progress lines, result emitters).
    pub fn label(&self) -> String {
        format!("{} [sampled]", self.point.label())
    }

    /// The canonical text encoding: the underlying point's encoding
    /// with the plan folded in. Distinct plans never alias.
    pub fn canonical(&self) -> String {
        format!("sampled|{}|{:?}", self.point.canonical(), self.plan)
    }

    /// Stable memoization key for this point (sampled store).
    pub fn key(&self) -> PointKey {
        PointKey::from_canonical(self.canonical())
    }
}

/// A declarative sampled grid.
#[derive(Clone, Debug)]
pub struct SampledGrid {
    points: Vec<SampledPoint>,
}

impl SampledGrid {
    /// Samples every point of `spec` under its auto-derived plan.
    pub fn auto(spec: &SweepSpec) -> Self {
        Self {
            points: spec
                .points()
                .iter()
                .copied()
                .map(SampledPoint::auto)
                .collect(),
        }
    }

    /// Samples every point of `spec` under one explicit plan.
    pub fn with_plan(spec: &SweepSpec, plan: SamplePlan) -> Self {
        Self {
            points: spec
                .points()
                .iter()
                .map(|&point| SampledPoint { point, plan })
                .collect(),
        }
    }

    /// Applies a strata count to every point's plan (builder-style).
    pub fn with_strata(mut self, strata: u32) -> Self {
        for p in &mut self.points {
            p.plan = p.plan.with_strata(strata);
        }
        self
    }

    /// The points, in spec order.
    pub fn points(&self) -> &[SampledPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The longest run (warmup + measured records) in the grid — what
    /// the trace-cache budget must hold for the fast slice path.
    pub fn max_records(&self) -> u64 {
        self.points
            .iter()
            .map(|p| p.point.warmup() + p.point.measured())
            .max()
            .unwrap_or(0)
    }

    /// Synthesizes every point's shared trace into `engine`'s cache up
    /// front. Call before timing a sampled run (or its full detailed
    /// twin) so neither measurement is charged for the synthesis both
    /// paths share; runs beyond the cache budget are skipped (they
    /// stream instead).
    pub fn prefetch_traces(&self, engine: &SweepEngine) {
        for sp in &self.points {
            let p = &sp.point;
            let _ = engine.trace_cache().records(
                p.workload,
                p.config.cores,
                p.seed(),
                p.warmup() + p.measured(),
            );
        }
    }
}

/// One finished sampled point.
#[derive(Clone, Debug)]
pub struct SampledResult {
    /// The point that was run.
    pub point: SampledPoint,
    /// Its (possibly memoized) sampled report.
    pub report: Arc<SampledReport>,
    /// Wall-clock seconds this worker spent obtaining the report
    /// (near zero for memoized points). Timing only — never part of
    /// the deterministic result.
    pub sim_secs: f64,
    /// Whether the report came from the sampled memo store.
    pub memoized: bool,
}

/// Runs every point of `grid` through `engine` (in parallel when the
/// engine has >1 thread), returning results in grid order. Sampled
/// reports memoize in the engine's sampled store under keys carrying
/// the plan; traces come from the engine's shared [`TraceCache`]
/// (slice path, free skips) with a streaming fallback for runs beyond
/// the cache budget. Bit-identical for any thread count — the two
/// trace paths replay identical record sequences.
pub fn run_sampled_grid(grid: &SampledGrid, engine: &SweepEngine) -> Vec<SampledResult> {
    let points = grid.points();
    let progress = engine.progress_for(points.len());
    let slots: Vec<OnceLock<(Arc<SampledReport>, f64, bool)>> =
        points.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);

    let run_point = |index: usize| {
        let sp = &points[index];
        let _point_span = fc_obs::trace::span_with("sampled-point", "sweep", || sp.label());
        let key = sp.key();
        let memoized = engine.sampled_store().get(&key).is_some();
        let started = std::time::Instant::now();
        let report = engine.sampled_store().get_or_compute(&key, || {
            let p = &sp.point;
            let (warmup, measured) = (p.warmup(), p.measured());
            let mut sim = Simulation::new(p.config, p.design);
            match engine.trace_cache().records(
                p.workload,
                p.config.cores,
                p.seed(),
                warmup + measured,
            ) {
                Some(records) => run_sampled(&mut sim, &records, warmup, measured, &sp.plan),
                None => run_sampled_stream(
                    &mut sim,
                    TraceGenerator::new(p.workload, p.config.cores, p.seed()),
                    warmup,
                    measured,
                    &sp.plan,
                ),
            }
        });
        progress.finish_point(&points[index].label(), memoized);
        (report, started.elapsed().as_secs_f64(), memoized)
    };

    let workers = engine.threads().clamp(1, points.len().max(1));
    if workers == 1 {
        fc_obs::trace::set_lane_name("main");
        for (index, slot) in slots.iter().enumerate() {
            slot.set(run_point(index)).expect("slot written once");
        }
    } else {
        std::thread::scope(|scope| {
            let (run_point, cursor, slots, points) = (&run_point, &cursor, &slots, &points);
            for worker in 0..workers {
                scope.spawn(move || {
                    fc_obs::trace::set_lane_name(&format!("worker-{worker}"));
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= points.len() {
                            break;
                        }
                        slots[index]
                            .set(run_point(index))
                            .expect("slot written once");
                    }
                    // Explicit: a scoped join may land before TLS
                    // destructors run, so the buffer drains here.
                    fc_obs::trace::flush_thread();
                });
            }
        });
    }
    progress.finish_run();
    fc_obs::metrics::counter("sweep.sampled_points").add(points.len() as u64);

    points
        .iter()
        .zip(slots)
        .map(|(point, slot)| {
            let (report, sim_secs, memoized) = slot.into_inner().expect("every point ran");
            SampledResult {
                point: *point,
                report,
                sim_secs,
                memoized,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RunScale;
    use crate::DesignSpec;
    use fc_trace::WorkloadKind;

    fn tiny_grid() -> SampledGrid {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        );
        SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100))
    }

    #[test]
    fn sampled_grid_covers_spec_in_order() {
        let grid = tiny_grid();
        let results = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.report.intervals.len(), 4, "2000 measured / 500 period");
            assert!(r.report.insts > 0);
            assert!(r.report.ipc.mean > 0.0);
        }
    }

    #[test]
    fn sampled_grid_is_thread_count_independent() {
        let grid = tiny_grid();
        let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        let par = run_sampled_grid(&grid, &SweepEngine::new().with_threads(4).quiet());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.point, b.point);
            assert_eq!(*a.report, *b.report, "{} diverged", a.point.label());
        }
    }

    #[test]
    fn sampled_points_are_memoized_separately_per_plan() {
        let spec =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::baseline());
        let a = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
        let b = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(1_000, 100, 100));
        let engine = SweepEngine::new().with_threads(1).quiet();
        let ra = run_sampled_grid(&a, &engine);
        assert_eq!(engine.sampled_store().computed(), 1);
        let ra2 = run_sampled_grid(&a, &engine);
        assert_eq!(engine.sampled_store().computed(), 1, "same plan memoizes");
        assert!(Arc::ptr_eq(&ra[0].report, &ra2[0].report));
        assert!(ra2[0].memoized);
        let rb = run_sampled_grid(&b, &engine);
        assert_eq!(engine.sampled_store().computed(), 2, "new plan, new key");
        assert_ne!(ra[0].report.plan, rb[0].report.plan);
    }

    #[test]
    fn streaming_fallback_is_bit_identical() {
        let grid = tiny_grid();
        let cached = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
        let streamed = run_sampled_grid(
            &grid,
            &SweepEngine::new()
                .with_threads(2)
                .with_trace_budget(0)
                .quiet(),
        );
        for (a, b) in cached.iter().zip(&streamed) {
            assert_eq!(*a.report, *b.report, "{}", a.point.label());
        }
    }

    #[test]
    fn auto_grid_derives_plans_per_point() {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[DesignSpec::baseline(), DesignSpec::banshee(64)],
        );
        let grid = SampledGrid::auto(&spec);
        assert_eq!(grid.len(), 2);
        for sp in grid.points() {
            assert!(sp.plan.validate().is_ok());
            // Tiny runs are far below the warm windows: every auto plan
            // must have fallen back to exhaustive warming.
            assert_eq!(sp.plan.skip(), 0);
        }
        assert_eq!(grid.max_records(), 4_000);
    }
}
