//! The sampled sweep: SMARTS-style interval sampling for every point
//! of a trace-replay grid.
//!
//! A [`SampledPoint`] is an ordinary [`SweepPoint`] plus a
//! [`SamplePlan`]; [`run_sampled_grid`] executes a grid of them with
//! the same discipline as the detailed executor — self-balancing
//! shared-cursor workers, per-point seeds that are pure functions of
//! the point, the shared [`TraceCache`](crate::TraceCache), and
//! memoization in the engine's sampled [`ResultStore`] (the plan is
//! folded into the FNV key, so a point sampled under two plans never
//! aliases). Results are bit-identical for any worker-thread count.
//!
//! Auto plans ([`SampledGrid::auto`]) derive each point's plan from
//! its run sizing and its design's state memory
//! (`DesignSpec::warm_scale`): capacity-scaled functional windows,
//! skipping only in the long-trace regime, exhaustive warming when
//! the trace is too short to skip safely.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use fc_sample::{
    assemble_report, build_base, run_interval, run_sampled, run_sampled_stream, Checkpoint,
    IntervalSample, SamplePlan, SampledReport,
};
use fc_sim::Simulation;
use fc_trace::{TraceGenerator, TraceRecord};

use crate::executor::SweepEngine;
use crate::spec::{SweepPoint, SweepSpec};
use crate::store::PointKey;

/// One experiment in a sampled sweep: a sweep point and its plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledPoint {
    /// The underlying trace-replay point (workload, design, config,
    /// scale, seed) — warmup/measured sizing and seeding are exactly
    /// the full run's, so estimates are comparable point-for-point.
    pub point: SweepPoint,
    /// The sampling plan driving the two-mode execution.
    pub plan: SamplePlan,
}

impl SampledPoint {
    /// Pairs `point` with the auto-derived plan for its run sizing,
    /// capacity, and design state memory.
    pub fn auto(point: SweepPoint) -> Self {
        let plan = SamplePlan::for_run_scaled(
            point.warmup(),
            point.measured(),
            point.capacity_mb(),
            point.design.warm_scale(),
        );
        Self { point, plan }
    }

    /// Human-readable label (progress lines, result emitters).
    pub fn label(&self) -> String {
        format!("{} [sampled]", self.point.label())
    }

    /// The canonical text encoding: the underlying point's encoding
    /// with the plan folded in. Distinct plans never alias.
    pub fn canonical(&self) -> String {
        format!("sampled|{}|{:?}", self.point.canonical(), self.plan)
    }

    /// Stable memoization key for this point (sampled store).
    pub fn key(&self) -> PointKey {
        PointKey::from_canonical(self.canonical())
    }
}

/// A declarative sampled grid.
#[derive(Clone, Debug)]
pub struct SampledGrid {
    points: Vec<SampledPoint>,
}

impl SampledGrid {
    /// Samples every point of `spec` under its auto-derived plan.
    pub fn auto(spec: &SweepSpec) -> Self {
        Self {
            points: spec
                .points()
                .iter()
                .copied()
                .map(SampledPoint::auto)
                .collect(),
        }
    }

    /// Samples every point of `spec` under one explicit plan.
    pub fn with_plan(spec: &SweepSpec, plan: SamplePlan) -> Self {
        Self {
            points: spec
                .points()
                .iter()
                .map(|&point| SampledPoint { point, plan })
                .collect(),
        }
    }

    /// Applies a strata count to every point's plan (builder-style).
    pub fn with_strata(mut self, strata: u32) -> Self {
        for p in &mut self.points {
            p.plan = p.plan.with_strata(strata);
        }
        self
    }

    /// The points, in spec order.
    pub fn points(&self) -> &[SampledPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The longest run (warmup + measured records) in the grid — what
    /// the trace-cache budget must hold for the fast slice path.
    pub fn max_records(&self) -> u64 {
        self.points
            .iter()
            .map(|p| p.point.warmup() + p.point.measured())
            .max()
            .unwrap_or(0)
    }

    /// Synthesizes every point's shared trace into `engine`'s cache up
    /// front. Call before timing a sampled run (or its full detailed
    /// twin) so neither measurement is charged for the synthesis both
    /// paths share; runs beyond the cache budget are skipped (they
    /// stream instead).
    pub fn prefetch_traces(&self, engine: &SweepEngine) {
        for sp in &self.points {
            let p = &sp.point;
            let _ = engine.trace_cache().records(
                p.workload,
                p.config.cores,
                p.seed(),
                p.warmup() + p.measured(),
            );
        }
    }
}

/// One finished sampled point.
#[derive(Clone, Debug)]
pub struct SampledResult {
    /// The point that was run.
    pub point: SampledPoint,
    /// Its (possibly memoized) sampled report.
    pub report: Arc<SampledReport>,
    /// Seconds spent obtaining the report (near zero for memoized
    /// points): one worker's wall clock on the sequential path, the
    /// summed per-worker busy time for a parallel-in-time point (its
    /// wall span would mostly measure *other* points interleaved in
    /// the shared pool). Timing only — never part of the
    /// deterministic result.
    pub sim_secs: f64,
    /// Whether the report came from the sampled memo store.
    pub memoized: bool,
}

/// Runs every point of `grid` through `engine` (in parallel when the
/// engine has >1 thread), returning results in grid order. Sampled
/// reports memoize in the engine's sampled store under keys carrying
/// the plan; traces come from the engine's shared [`TraceCache`]
/// (slice path, free skips) with a streaming fallback for runs beyond
/// the cache budget. Bit-identical for any thread count — the two
/// trace paths replay identical record sequences.
pub fn run_sampled_grid(grid: &SampledGrid, engine: &SweepEngine) -> Vec<SampledResult> {
    let points = grid.points();
    let progress = engine.progress_for(points.len());
    let slots: Vec<OnceLock<(Arc<SampledReport>, f64, bool)>> =
        points.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);

    let run_point = |index: usize| {
        let sp = &points[index];
        let _point_span = fc_obs::trace::span_with("sampled-point", "sweep", || sp.label());
        let key = sp.key();
        let memoized = engine.sampled_store().get(&key).is_some();
        let started = std::time::Instant::now();
        let report = engine.sampled_store().get_or_compute(&key, || {
            let p = &sp.point;
            let (warmup, measured) = (p.warmup(), p.measured());
            let mut sim = Simulation::new(p.config, p.design);
            match engine.trace_cache().records(
                p.workload,
                p.config.cores,
                p.seed(),
                warmup + measured,
            ) {
                Some(records) => run_sampled(&mut sim, &records, warmup, measured, &sp.plan),
                None => run_sampled_stream(
                    &mut sim,
                    TraceGenerator::new(p.workload, p.config.cores, p.seed()),
                    warmup,
                    measured,
                    &sp.plan,
                ),
            }
        });
        progress.finish_point(&points[index].label(), memoized);
        (report, started.elapsed().as_secs_f64(), memoized)
    };

    let workers = engine.threads().clamp(1, points.len().max(1));
    if workers == 1 {
        fc_obs::trace::set_lane_name("main");
        for (index, slot) in slots.iter().enumerate() {
            slot.set(run_point(index)).expect("slot written once");
        }
    } else {
        std::thread::scope(|scope| {
            let (run_point, cursor, slots, points) = (&run_point, &cursor, &slots, &points);
            for worker in 0..workers {
                scope.spawn(move || {
                    fc_obs::trace::set_lane_name(&format!("worker-{worker}"));
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= points.len() {
                            break;
                        }
                        slots[index]
                            .set(run_point(index))
                            .expect("slot written once");
                    }
                    // Explicit: a scoped join may land before TLS
                    // destructors run, so the buffer drains here.
                    fc_obs::trace::flush_thread();
                });
            }
        });
    }
    progress.finish_run();
    fc_obs::metrics::counter("sweep.sampled_points").add(points.len() as u64);

    points
        .iter()
        .zip(slots)
        .map(|(point, slot)| {
            let (report, sim_secs, memoized) = slot.into_inner().expect("every point ran");
            SampledResult {
                point: *point,
                report,
                sim_secs,
                memoized,
            }
        })
        .collect()
}

/// One unit of work in the nested parallel-in-time pool: either a
/// whole grid point (which may expand into interval tasks) or one
/// measured period of an already-expanded point.
enum PitTask {
    Point(usize),
    Interval { point: usize, k: u64 },
}

/// Shared state of a point that expanded into interval tasks: the base
/// checkpoint every period restores, the point's trace slice (one
/// synthesis, shared by every worker via `Arc`), the per-period result
/// slots, and the countdown that elects the aggregating worker.
struct PointWork {
    base: Checkpoint,
    records: Arc<Vec<TraceRecord>>,
    slots: Vec<OnceLock<IntervalSample>>,
    remaining: AtomicUsize,
    /// CPU time spent on this point across all workers (base build +
    /// every interval), in nanoseconds. This — not wall time from
    /// expansion to completion — becomes the point's `sim_secs`:
    /// interval tasks of *different* points interleave in one pool, so
    /// a point's wall span mostly measures other points' work. Busy
    /// time keeps per-point costs comparable with the sequential
    /// executor's (equal on one core, and a work measure on many).
    busy_nanos: std::sync::atomic::AtomicU64,
}

/// Runs every point of `grid` with **parallel-in-time** dispatch:
/// points *and* their measured periods drain from one shared pool, so
/// a single long point keeps every worker busy instead of one. Points
/// whose plan cannot be split (exhaustive plans carry state through
/// the whole region) and points beyond the trace-cache budget
/// (workers need random access into the slice) run sequentially
/// inside the pool, so the result always covers the whole grid.
///
/// Reports are **bit-identical** to [`run_sampled_grid`]'s for every
/// `workers` count: interval samples merge in plan order through the
/// same aggregation, and both paths compute the same pure per-period
/// function from the same base checkpoint. Memoization therefore
/// shares one store with the sequential path.
pub fn run_sampled_grid_pit(
    grid: &SampledGrid,
    engine: &SweepEngine,
    workers: usize,
) -> Vec<SampledResult> {
    let points = grid.points();
    let progress = engine.progress_for(points.len());
    let final_slots: Vec<OnceLock<(Arc<SampledReport>, f64, bool)>> =
        points.iter().map(|_| OnceLock::new()).collect();
    let works: Vec<OnceLock<PointWork>> = points.iter().map(|_| OnceLock::new()).collect();
    let queue: Mutex<VecDeque<PitTask>> =
        Mutex::new((0..points.len()).map(PitTask::Point).collect());
    let ready = Condvar::new();
    let pending = AtomicUsize::new(points.len());

    // Finishing a point: record its result, tick progress, and wake
    // any workers parked on an empty queue once the last point lands.
    // The wakeup must happen while holding the queue lock — a worker
    // checks "queue empty && pending > 0" under that lock before
    // waiting, so notifying under it cannot race with the check.
    let finish = |index: usize, report: Arc<SampledReport>, secs: f64, memoized: bool| {
        final_slots[index]
            .set((report, secs, memoized))
            .expect("point finished once");
        progress.finish_point(&points[index].label(), memoized);
        if pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = queue.lock().expect("pit queue");
            ready.notify_all();
        }
    };

    let run_point = |index: usize| {
        let sp = &points[index];
        let _point_span = fc_obs::trace::span_with("sampled-point", "sweep", || sp.label());
        let key = sp.key();
        let started = std::time::Instant::now();
        if let Some(report) = engine.sampled_store().get(&key) {
            finish(index, report, started.elapsed().as_secs_f64(), true);
            return;
        }
        let p = &sp.point;
        let (warmup, measured) = (p.warmup(), p.measured());
        let records =
            engine
                .trace_cache()
                .records(p.workload, p.config.cores, p.seed(), warmup + measured);
        let periods = sp.plan.intervals_in(measured);
        match records {
            // Splittable: build the base checkpoint, then fan the
            // periods out as interval tasks for any worker to claim.
            Some(records) if sp.plan.skip() > 0 && periods > 0 => {
                let mut sim = Simulation::new(p.config, p.design);
                let base = build_base(&mut sim, &records, warmup, measured, &sp.plan);
                fc_obs::metrics::counter("pit.intervals_dispatched").add(periods);
                let work = PointWork {
                    base,
                    records,
                    slots: (0..periods).map(|_| OnceLock::new()).collect(),
                    remaining: AtomicUsize::new(periods as usize),
                    busy_nanos: std::sync::atomic::AtomicU64::new(
                        started.elapsed().as_nanos() as u64
                    ),
                };
                assert!(works[index].set(work).is_ok(), "point expanded once");
                let mut q = queue.lock().expect("pit queue");
                q.extend((0..periods).map(|k| PitTask::Interval { point: index, k }));
                ready.notify_all();
            }
            // Unsplittable (continuous plan, streaming fallback, or a
            // degenerate region): run the whole point on this worker,
            // exactly as the sequential grid executor would.
            records => {
                let report = engine.sampled_store().get_or_compute(&key, || {
                    let mut sim = Simulation::new(p.config, p.design);
                    match records {
                        Some(records) => {
                            run_sampled(&mut sim, &records, warmup, measured, &sp.plan)
                        }
                        None => run_sampled_stream(
                            &mut sim,
                            TraceGenerator::new(p.workload, p.config.cores, p.seed()),
                            warmup,
                            measured,
                            &sp.plan,
                        ),
                    }
                });
                finish(index, report, started.elapsed().as_secs_f64(), false);
            }
        }
    };

    let run_interval_task = |index: usize, k: u64| {
        let sp = &points[index];
        let work = works[index].get().expect("point expanded before intervals");
        let started = std::time::Instant::now();
        let sample = run_interval(
            &work.base,
            &work.records,
            sp.point.warmup(),
            sp.point.measured(),
            &sp.plan,
            k,
        );
        work.slots[k as usize]
            .set(sample)
            .expect("slot written once");
        work.busy_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // The countdown elects the worker that finishes the point: the
        // last decrement observes every other slot write and busy-time
        // contribution (AcqRel).
        if work.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let intervals: Vec<IntervalSample> = work
                .slots
                .iter()
                .map(|slot| *slot.get().expect("every interval ran"))
                .collect();
            let report = engine.sampled_store().get_or_compute(&sp.key(), || {
                assemble_report(&sp.plan, sp.point.warmup(), sp.point.measured(), intervals)
            });
            let secs = work.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
            finish(index, report, secs, false);
        }
    };

    // No upper clamp against the point count: one point can fan out
    // into many interval tasks, so more workers than points is useful.
    let worker_count = workers.max(1);
    std::thread::scope(|scope| {
        let (run_point, run_interval_task, queue, ready, pending) =
            (&run_point, &run_interval_task, &queue, &ready, &pending);
        for worker in 0..worker_count {
            scope.spawn(move || {
                fc_obs::trace::set_lane_name(&format!("worker-{worker}"));
                loop {
                    let task = {
                        let mut q = queue.lock().expect("pit queue");
                        loop {
                            if let Some(task) = q.pop_front() {
                                break Some(task);
                            }
                            if pending.load(Ordering::Acquire) == 0 {
                                break None;
                            }
                            q = ready.wait(q).expect("pit queue");
                        }
                    };
                    match task {
                        Some(PitTask::Point(index)) => run_point(index),
                        Some(PitTask::Interval { point, k }) => run_interval_task(point, k),
                        None => break,
                    }
                }
                // Explicit: a scoped join may land before TLS
                // destructors run, so the trace buffer drains here.
                fc_obs::trace::flush_thread();
            });
        }
    });
    progress.finish_run();
    fc_obs::metrics::counter("sweep.sampled_points").add(points.len() as u64);

    points
        .iter()
        .zip(final_slots)
        .map(|(point, slot)| {
            let (report, sim_secs, memoized) = slot.into_inner().expect("every point ran");
            SampledResult {
                point: *point,
                report,
                sim_secs,
                memoized,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RunScale;
    use crate::DesignSpec;
    use fc_trace::WorkloadKind;

    fn tiny_grid() -> SampledGrid {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        );
        SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100))
    }

    #[test]
    fn sampled_grid_covers_spec_in_order() {
        let grid = tiny_grid();
        let results = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.report.intervals.len(), 4, "2000 measured / 500 period");
            assert!(r.report.insts > 0);
            assert!(r.report.ipc.mean > 0.0);
        }
    }

    #[test]
    fn sampled_grid_is_thread_count_independent() {
        let grid = tiny_grid();
        let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        let par = run_sampled_grid(&grid, &SweepEngine::new().with_threads(4).quiet());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.point, b.point);
            assert_eq!(*a.report, *b.report, "{} diverged", a.point.label());
        }
    }

    #[test]
    fn sampled_points_are_memoized_separately_per_plan() {
        let spec =
            SweepSpec::new(RunScale::tiny()).point(WorkloadKind::WebSearch, DesignSpec::baseline());
        let a = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(500, 100, 100));
        let b = SampledGrid::with_plan(&spec, SamplePlan::exhaustive(1_000, 100, 100));
        let engine = SweepEngine::new().with_threads(1).quiet();
        let ra = run_sampled_grid(&a, &engine);
        assert_eq!(engine.sampled_store().computed(), 1);
        let ra2 = run_sampled_grid(&a, &engine);
        assert_eq!(engine.sampled_store().computed(), 1, "same plan memoizes");
        assert!(Arc::ptr_eq(&ra[0].report, &ra2[0].report));
        assert!(ra2[0].memoized);
        let rb = run_sampled_grid(&b, &engine);
        assert_eq!(engine.sampled_store().computed(), 2, "new plan, new key");
        assert_ne!(ra[0].report.plan, rb[0].report.plan);
    }

    #[test]
    fn streaming_fallback_is_bit_identical() {
        let grid = tiny_grid();
        let cached = run_sampled_grid(&grid, &SweepEngine::new().with_threads(2).quiet());
        let streamed = run_sampled_grid(
            &grid,
            &SweepEngine::new()
                .with_threads(2)
                .with_trace_budget(0)
                .quiet(),
        );
        for (a, b) in cached.iter().zip(&streamed) {
            assert_eq!(*a.report, *b.report, "{}", a.point.label());
        }
    }

    // A grid whose plans actually skip (period 1000, fw 200, dw 100,
    // interval 100 → skip 600), so the PIT path expands points into
    // interval tasks instead of delegating.
    fn skipping_grid() -> SampledGrid {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
            &[DesignSpec::baseline(), DesignSpec::footprint(64)],
        );
        SampledGrid::with_plan(
            &spec,
            SamplePlan::new(1_000, 200, 100, 100).with_warmup_window(1_000),
        )
    }

    #[test]
    fn pit_grid_is_bit_identical_to_sequential_at_any_worker_count() {
        let grid = skipping_grid();
        let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        for workers in [1, 2, 5, 9] {
            let pit = run_sampled_grid_pit(&grid, &SweepEngine::new().quiet(), workers);
            for (a, b) in seq.iter().zip(&pit) {
                assert_eq!(a.point, b.point);
                assert_eq!(
                    *a.report,
                    *b.report,
                    "{} diverged at {workers} workers",
                    a.point.label()
                );
            }
        }
    }

    #[test]
    fn pit_grid_handles_unsplittable_points_in_pool() {
        // Exhaustive plans can't split in time; the PIT pool must run
        // them sequentially and still match the plain executor.
        let grid = tiny_grid();
        let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        let pit = run_sampled_grid_pit(&grid, &SweepEngine::new().quiet(), 4);
        for (a, b) in seq.iter().zip(&pit) {
            assert_eq!(*a.report, *b.report, "{}", a.point.label());
        }
    }

    #[test]
    fn pit_grid_shares_one_synthesis_per_workload() {
        let grid = skipping_grid();
        // Interval tasks must reuse the point's Arc'd slice, never
        // re-synthesize: fanning out across workers synthesizes
        // exactly as many records as a lone sequential worker.
        let seq_engine = SweepEngine::new().with_threads(1).quiet();
        run_sampled_grid(&grid, &seq_engine);
        let pit_engine = SweepEngine::new().quiet();
        run_sampled_grid_pit(&grid, &pit_engine, 6);
        assert_eq!(
            pit_engine.trace_cache().records_synthesized(),
            seq_engine.trace_cache().records_synthesized(),
            "interval workers re-synthesized trace records"
        );
    }

    #[test]
    fn pit_grid_memoizes_into_the_shared_store() {
        let grid = skipping_grid();
        let engine = SweepEngine::new().quiet();
        let first = run_sampled_grid_pit(&grid, &engine, 4);
        assert_eq!(engine.sampled_store().computed(), 4);
        // Second PIT run: every point short-circuits on the memo.
        let again = run_sampled_grid_pit(&grid, &engine, 4);
        assert_eq!(engine.sampled_store().computed(), 4);
        assert!(again.iter().all(|r| r.memoized));
        // The sequential path reads the same store — same keys.
        let seq = run_sampled_grid(&grid, &engine);
        assert_eq!(engine.sampled_store().computed(), 4);
        for (a, b) in first.iter().zip(&seq) {
            assert!(Arc::ptr_eq(&a.report, &b.report));
        }
    }

    #[test]
    fn pit_grid_streaming_fallback_covers_the_grid() {
        let grid = skipping_grid();
        let seq = run_sampled_grid(&grid, &SweepEngine::new().with_threads(1).quiet());
        let pit = run_sampled_grid_pit(&grid, &SweepEngine::new().with_trace_budget(0).quiet(), 4);
        for (a, b) in seq.iter().zip(&pit) {
            assert_eq!(*a.report, *b.report, "{}", a.point.label());
        }
    }

    #[test]
    fn auto_grid_derives_plans_per_point() {
        let spec = SweepSpec::new(RunScale::tiny()).grid(
            &[WorkloadKind::WebSearch],
            &[DesignSpec::baseline(), DesignSpec::banshee(64)],
        );
        let grid = SampledGrid::auto(&spec);
        assert_eq!(grid.len(), 2);
        for sp in grid.points() {
            assert!(sp.plan.validate().is_ok());
            // Tiny runs are far below the warm windows: every auto plan
            // must have fallen back to exhaustive warming.
            assert_eq!(sp.plan.skip(), 0);
        }
        assert_eq!(grid.max_records(), 4_000);
    }
}
