//! End-to-end tests of the durable result store: warm re-runs, crash
//! recovery from a truncated shard, serve-mode reuse, and the
//! atomicity of artifact writes.

use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fc_sim::DesignSpec;
use fc_sweep::{serve_jsonl, RunScale, SweepEngine, SweepResult, SweepSpec, WorkloadKind};
use fc_types::json::JsonValue;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fc-durable-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec() -> SweepSpec {
    SweepSpec::new(RunScale::tiny())
        .grid(
            &[WorkloadKind::WebSearch, WorkloadKind::DataServing],
            &[
                DesignSpec::baseline(),
                DesignSpec::footprint(64),
                DesignSpec::page(64),
            ],
        )
        .dedup()
}

fn durable_engine(dir: &Path) -> SweepEngine {
    SweepEngine::new()
        .with_threads(2)
        .quiet()
        .with_durable_store(dir)
        .expect("open durable store")
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("shard-"))
                && p.extension().is_some_and(|x| x == "jsonl")
        })
        .collect();
    out.sort();
    out
}

#[test]
fn warm_rerun_performs_zero_fresh_simulations() {
    let dir = tmpdir("warm");
    let spec = spec();

    let cold_engine = durable_engine(&dir);
    let cold = cold_engine.run_spec(&spec);
    assert_eq!(cold_engine.store().computed(), spec.len() as u64);

    // A fresh engine on the same directory stands in for a fresh
    // process: everything must come back from disk.
    let warm_engine = durable_engine(&dir);
    let warm = warm_engine.run_spec(&spec);
    assert_eq!(
        warm_engine.store().computed(),
        0,
        "warm re-run must not simulate anything"
    );
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(
            *a.report,
            *b.report,
            "{} diverged across reopen",
            a.point.label()
        );
    }
}

#[test]
fn truncated_shard_recovers_and_recomputes_only_lost_points() {
    let dir = tmpdir("crash");
    let spec = spec();

    let cold_engine = durable_engine(&dir);
    let cold: Vec<SweepResult> = cold_engine.run_spec(&spec);
    drop(cold_engine);

    // Simulate a crash mid-append: chop the tail off the fullest
    // shard, leaving its last record syntactically broken.
    let shards = shard_files(&dir);
    assert!(!shards.is_empty(), "cold run persisted no shards");
    let victim = shards
        .iter()
        .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .unwrap();
    let bytes = std::fs::read(victim).unwrap();
    let records_before = bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(records_before >= 1, "victim shard is empty");
    std::fs::write(victim, &bytes[..bytes.len() - 30]).unwrap();

    let recovered_engine = durable_engine(&dir);
    let recovered = recovered_engine.run_spec(&spec);

    // Exactly the one destroyed record is recomputed; the salvaged
    // prefix (and every other shard) is recalled from disk.
    assert_eq!(
        recovered_engine.store().computed(),
        1,
        "recovery must recompute only the lost point"
    );
    assert_eq!(
        recovered_engine.store().generation(),
        Some(1),
        "quarantine bumps the store generation"
    );
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().contains("corrupt"));
    assert!(quarantined, "the damaged shard is kept aside for forensics");

    // Bit-identical to the cold run: recovery changes provenance, not
    // results.
    assert_eq!(cold.len(), recovered.len());
    for (a, b) in cold.iter().zip(&recovered) {
        assert_eq!(
            *a.report,
            *b.report,
            "{} diverged after recovery",
            a.point.label()
        );
    }
}

#[test]
fn serve_reuses_durable_results_across_engines() {
    let dir = tmpdir("serve");
    let request = "{\"id\": \"it\", \"designs\": \"baseline,footprint\", \
                   \"capacities\": [64], \"workloads\": [\"web search\"], \
                   \"scale\": \"tiny\"}\n";

    let summary_of = |out: Vec<u8>| -> JsonValue {
        let text = String::from_utf8(out).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"summary\""))
            .expect("summary line");
        JsonValue::parse(line).unwrap()
    };

    let cold_engine = durable_engine(&dir);
    let mut out = Vec::new();
    serve_jsonl(&cold_engine, Cursor::new(request), &mut out).unwrap();
    let cold = summary_of(out);
    assert_eq!(cold.field("fresh").unwrap().as_u64().unwrap(), 2);
    drop(cold_engine);

    let warm_engine = durable_engine(&dir);
    let mut out = Vec::new();
    serve_jsonl(&warm_engine, Cursor::new(request), &mut out).unwrap();
    let warm = summary_of(out);
    assert_eq!(
        warm.field("fresh").unwrap().as_u64().unwrap(),
        0,
        "second serve pass answers entirely from the durable store"
    );
    assert_eq!(warm.field("points").unwrap().as_u64().unwrap(), 2);
    assert_eq!(warm_engine.store().computed(), 0);
}

#[test]
fn atomic_write_never_exposes_partial_content() {
    let dir = tmpdir("atomic");
    let path = Arc::new(dir.join("artifact.json"));
    let small = Arc::new(vec![b'a'; 64]);
    let large = Arc::new(vec![b'b'; 1 << 20]);
    fc_types::atomic_write(&path, &small).unwrap();

    // A writer flapping between a small and a large artifact while a
    // reader polls: with in-place writes the reader would catch
    // truncated intermediates; with temp+rename it never can.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let (path, small, large, stop) = (
            Arc::clone(&path),
            Arc::clone(&small),
            Arc::clone(&large),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            for i in 0..200 {
                let body: &[u8] = if i % 2 == 0 { &large } else { &small };
                fc_types::atomic_write(&path, body).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        })
    };

    let mut observations = 0u64;
    while !stop.load(std::sync::atomic::Ordering::Acquire) {
        let seen = std::fs::read(&*path).unwrap();
        assert!(
            seen == *small || seen == *large,
            "reader saw a partial artifact of {} bytes",
            seen.len()
        );
        observations += 1;
    }
    writer.join().unwrap();
    assert!(observations > 0, "reader never got to observe the file");
}
