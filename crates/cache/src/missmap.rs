//! The MissMap: an SRAM structure that tracks which blocks are present in
//! a tags-in-DRAM block cache, at 4 KB-region granularity (Loh & Hill
//! [24], described in Section 5.2).
//!
//! Each entry covers a 4 KB region with a 64-bit presence vector. A lookup
//! answers "is this block cached?" without touching DRAM, so misses skip
//! the in-DRAM tag access entirely. The catch the paper highlights: when a
//! MissMap entry is evicted, every still-cached block of its region must
//! be evicted from the DRAM cache — and those blocks live in *different*
//! cache sets, hence different DRAM rows, causing bursts of row
//! activations that interfere with demand traffic (the 512 MB pathology
//! that made the authors grow the MissMap by 50%).

use serde::{Deserialize, Serialize};

use fc_types::{BlockAddr, Footprint};

use crate::design::sram_latency_cycles;
use crate::setassoc::SetAssoc;

/// Blocks per tracked region (4 KB / 64 B).
pub const REGION_BLOCKS: u64 = 64;

/// A region evicted from the MissMap: the cache must evict all its
/// still-present blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedRegion {
    /// First block of the region.
    pub base: BlockAddr,
    /// Which of the 64 blocks were present.
    pub present: Footprint,
}

/// The block-presence tracker of the block-based design.
///
/// # Examples
///
/// ```
/// use fc_cache::MissMap;
/// use fc_types::BlockAddr;
///
/// let mut mm = MissMap::new(1024, 16);
/// let b = BlockAddr::new(12345);
/// assert!(!mm.contains(b));
/// mm.set_present(b);
/// assert!(mm.contains(b));
/// mm.clear_present(b);
/// assert!(!mm.contains(b));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MissMap {
    regions: SetAssoc<u64>,
    latency: u32,
}

impl MissMap {
    /// Bits per entry: region tag (~26 bits at 40-bit addressing) + 64-bit
    /// presence vector (Table 4's storage numbers imply ~85 bits with LRU).
    const ENTRY_BITS: u64 = 85;

    /// Creates a MissMap with `entries` entries of associativity `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(ways),
            "entries must be a positive multiple of ways"
        );
        let bytes = entries as u64 * Self::ENTRY_BITS / 8;
        Self {
            regions: SetAssoc::new(entries / ways, ways),
            latency: sram_latency_cycles(bytes),
        }
    }

    /// The paper's sizing (Table 4): 192K entries, 24-way for caches up to
    /// 256 MB; 288K entries, 36-way at 512 MB (grown 50% to tame the
    /// forced-eviction pathology).
    pub fn for_cache_capacity(capacity_bytes: u64) -> Self {
        if capacity_bytes >= 512 << 20 {
            Self::new(288 * 1024, 36)
        } else {
            Self::new(192 * 1024, 24)
        }
    }

    /// Lookup latency in core cycles (on the critical path of every
    /// request to the block cache).
    pub fn latency_cycles(&self) -> u32 {
        self.latency
    }

    /// SRAM size in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.regions.capacity() as u64 * Self::ENTRY_BITS / 8
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.regions.capacity()
    }

    fn decompose(&self, block: BlockAddr) -> (usize, u64, usize) {
        let region = block.raw() / REGION_BLOCKS;
        let offset = (block.raw() % REGION_BLOCKS) as usize;
        let sets = self.regions.sets() as u64;
        ((region % sets) as usize, region / sets, offset)
    }

    /// Whether `block` is marked present.
    pub fn contains(&mut self, block: BlockAddr) -> bool {
        let (set, tag, offset) = self.decompose(block);
        self.regions
            .get(set, tag)
            .map(|bits| (*bits >> offset) & 1 == 1)
            .unwrap_or(false)
    }

    /// Marks `block` present, allocating its region entry if needed.
    /// Returns the evicted region (with its presence vector) if the
    /// allocation displaced one.
    pub fn set_present(&mut self, block: BlockAddr) -> Option<EvictedRegion> {
        let (set, tag, offset) = self.decompose(block);
        if let Some(bits) = self.regions.get(set, tag) {
            *bits |= 1 << offset;
            return None;
        }
        let evicted = self.regions.insert(set, tag, 1u64 << offset);
        evicted.map(|(vtag, bits)| {
            let sets = self.regions.sets() as u64;
            let region = vtag * sets + set as u64;
            EvictedRegion {
                base: BlockAddr::new(region * REGION_BLOCKS),
                present: Footprint::from_bits(bits),
            }
        })
    }

    /// Clears `block`'s presence bit (the cache evicted it). Empty region
    /// entries are retained (they age out via LRU, as in hardware).
    pub fn clear_present(&mut self, block: BlockAddr) {
        let (set, tag, offset) = self.decompose(block);
        if let Some(bits) = self.regions.get(set, tag) {
            *bits &= !(1 << offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presence_round_trip() {
        let mut mm = MissMap::new(64, 4);
        let b = BlockAddr::new(999);
        assert!(!mm.contains(b));
        assert!(mm.set_present(b).is_none());
        assert!(mm.contains(b));
        mm.clear_present(b);
        assert!(!mm.contains(b));
    }

    #[test]
    fn blocks_of_one_region_share_an_entry() {
        let mut mm = MissMap::new(64, 4);
        let region_base = BlockAddr::new(128); // region 2
        mm.set_present(region_base);
        mm.set_present(BlockAddr::new(128 + 63));
        assert!(mm.contains(region_base));
        assert!(mm.contains(BlockAddr::new(128 + 63)));
        assert!(!mm.contains(BlockAddr::new(128 + 1)));
    }

    #[test]
    fn eviction_returns_region_contents() {
        // 1 set, 2 ways: the third distinct region evicts the LRU one.
        let mut mm = MissMap::new(2, 2);
        mm.set_present(BlockAddr::new(0)); // region 0, offset 0
        mm.set_present(BlockAddr::new(3)); // region 0, offset 3
        mm.set_present(BlockAddr::new(64)); // region 1
        let evicted = mm
            .set_present(BlockAddr::new(128))
            .expect("evicts region 0");
        assert_eq!(evicted.base, BlockAddr::new(0));
        assert_eq!(evicted.present, Footprint::from_offsets([0, 3]));
        // Evicted blocks are gone.
        assert!(!mm.contains(BlockAddr::new(0)));
    }

    #[test]
    fn paper_sizings() {
        let small = MissMap::for_cache_capacity(256 << 20);
        assert_eq!(small.entries(), 192 * 1024);
        assert_eq!(small.latency_cycles(), 9); // Table 4
        let large = MissMap::for_cache_capacity(512 << 20);
        assert_eq!(large.entries(), 288 * 1024);
        assert_eq!(large.latency_cycles(), 11); // Table 4
                                                // Storage close to the paper's 1.95 / 2.92 MB.
        let mb = small.storage_bytes() as f64 / (1 << 20) as f64;
        assert!((mb - 1.95).abs() < 0.2, "{mb}");
        let mb = large.storage_bytes() as f64 / (1 << 20) as f64;
        assert!((mb - 2.92).abs() < 0.3, "{mb}");
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_rejected() {
        MissMap::new(10, 3);
    }
}
