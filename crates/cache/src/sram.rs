//! The pod's SRAM cache: a block-granularity, writeback, write-allocate
//! set-associative cache used as the shared L2 (Table 3: 4 MB, 16-way,
//! 64 B blocks, 13-cycle hit latency).

use serde::{Deserialize, Serialize};

use fc_types::{BlockAddr, BLOCK_SIZE};

use crate::setassoc::SetAssoc;

/// Result of an L2 access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SramOutcome {
    /// The block was present.
    Hit,
    /// The block was absent; it has been allocated, possibly evicting a
    /// dirty victim that must be written back to the next level.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<BlockAddr>,
    },
}

impl SramOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, SramOutcome::Hit)
    }
}

/// Counters for an [`SramCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty writebacks emitted.
    pub writebacks: u64,
}

/// A block-granularity writeback cache.
///
/// # Examples
///
/// ```
/// use fc_cache::{SramCache, SramOutcome};
/// use fc_types::BlockAddr;
///
/// let mut l2 = SramCache::new(4 << 20, 16, 13);
/// let b = BlockAddr::new(100);
/// assert!(!l2.access(b, false).is_hit()); // cold miss allocates
/// assert!(l2.access(b, true).is_hit());   // store hit dirties the line
/// assert_eq!(l2.hit_latency(), 13);
/// ```
#[derive(Clone, Debug)]
pub struct SramCache {
    lines: SetAssoc<bool>, // value = dirty
    hit_latency: u32,
    stats: SramStats,
}

impl SramCache {
    /// Creates a cache of `capacity_bytes` with the given associativity
    /// and hit latency in core cycles.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * BLOCK_SIZE`.
    pub fn new(capacity_bytes: usize, ways: usize, hit_latency: u32) -> Self {
        let blocks = capacity_bytes / BLOCK_SIZE;
        assert!(
            blocks > 0 && blocks.is_multiple_of(ways),
            "capacity must be a positive multiple of ways * 64B"
        );
        Self {
            lines: SetAssoc::new(blocks / ways, ways),
            hit_latency,
            stats: SramStats::default(),
        }
    }

    /// Hit latency in core cycles.
    pub fn hit_latency(&self) -> u32 {
        self.hit_latency
    }

    /// Accesses `block`; `is_write` dirties the line. Misses allocate
    /// (write-allocate) and may evict a dirty victim.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> SramOutcome {
        self.stats.accesses += 1;
        let sets = self.lines.sets() as u64;
        let set = (block.raw() % sets) as usize;
        let tag = block.raw() / sets;

        if let Some(dirty) = self.lines.get(set, tag) {
            self.stats.hits += 1;
            *dirty |= is_write;
            return SramOutcome::Hit;
        }

        let writeback = match self.lines.insert(set, tag, is_write) {
            Some((victim_tag, true)) => {
                self.stats.writebacks += 1;
                Some(BlockAddr::new(victim_tag * sets + set as u64))
            }
            _ => None,
        };
        SramOutcome::Miss { writeback }
    }

    /// Invalidates `block` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let sets = self.lines.sets() as u64;
        let set = (block.raw() % sets) as usize;
        let tag = block.raw() / sets;
        self.lines.remove(set, tag)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> SramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SramCache {
        // 2 sets x 2 ways.
        SramCache::new(4 * BLOCK_SIZE, 2, 13)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let b = BlockAddr::new(4);
        assert!(matches!(
            c.access(b, false),
            SramOutcome::Miss { writeback: None }
        ));
        assert!(c.access(b, false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn dirty_victim_produces_writeback() {
        let mut c = tiny();
        // Fill set 0 (blocks ≡ 0 mod 2) with writes.
        c.access(BlockAddr::new(0), true);
        c.access(BlockAddr::new(2), true);
        // Third distinct block in set 0 evicts LRU block 0, dirty.
        let out = c.access(BlockAddr::new(4), false);
        match out {
            SramOutcome::Miss { writeback: Some(b) } => assert_eq!(b, BlockAddr::new(0)),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_no_writeback() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(2), false);
        assert!(matches!(
            c.access(BlockAddr::new(4), false),
            SramOutcome::Miss { writeback: None }
        ));
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(0), true); // now dirty
        c.access(BlockAddr::new(2), false);
        let out = c.access(BlockAddr::new(4), false);
        assert!(matches!(out, SramOutcome::Miss { writeback: Some(_) }));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), true);
        assert_eq!(c.invalidate(BlockAddr::new(0)), Some(true));
        assert_eq!(c.invalidate(BlockAddr::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_rejected() {
        SramCache::new(3 * BLOCK_SIZE, 2, 1);
    }
}
