//! A generational slab arena for per-page state.
//!
//! Page-granular bookkeeping (densities, footprints, coverage masks)
//! wants dense, index-chased storage: hash-probing a map per access puts
//! a data-dependent load on the hottest loop in the simulator, and
//! cloning a map for a checkpoint walks every bucket. `PageArena` keeps
//! values in a flat `Vec` of slots with a free list, hands out
//! copyable [`PageHandle`]s (slot index + generation), and validates
//! every dereference against the slot's generation so a handle to a
//! removed page can never alias its successor. Cloning the arena is a
//! memcpy-like `Vec` clone.

/// A handle into a [`PageArena`]: a dense slot index plus the slot's
/// generation at insertion time. Copyable and 8 bytes — store it where
/// you would otherwise store a page id and re-probe a map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PageHandle {
    index: u32,
    generation: u32,
}

impl PageHandle {
    /// The dense slot index (stable for the value's lifetime; reused
    /// with a bumped generation after removal).
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab: dense `Vec` slots + free list + u32 handles.
///
/// # Examples
///
/// ```
/// use fc_cache::PageArena;
///
/// let mut arena = PageArena::new();
/// let h = arena.insert(0b1011u32);
/// *arena.get_mut(h).unwrap() |= 0b0100;
/// assert_eq!(arena.get(h), Some(&0b1111));
/// assert_eq!(arena.remove(h), Some(0b1111));
/// assert_eq!(arena.get(h), None); // stale handle, safely rejected
/// ```
#[derive(Clone, Debug)]
pub struct PageArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: u32,
}

impl<T> Default for PageArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PageArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty arena with room for `capacity` values before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `value`, returning its handle. Reuses a freed slot when
    /// one exists (with a fresh generation), else grows the slab.
    pub fn insert(&mut self, value: T) -> PageHandle {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            PageHandle {
                index,
                generation: slot.generation,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena outgrew u32 handles");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            PageHandle {
                index,
                generation: 0,
            }
        }
    }

    /// The value behind `handle`, or `None` if it was removed (stale
    /// generation) — a dangling handle is an answerable question, not
    /// undefined behavior.
    pub fn get(&self, handle: PageHandle) -> Option<&T> {
        self.slots
            .get(handle.index as usize)
            .filter(|slot| slot.generation == handle.generation)
            .and_then(|slot| slot.value.as_ref())
    }

    /// Mutable access to the value behind `handle`.
    pub fn get_mut(&mut self, handle: PageHandle) -> Option<&mut T> {
        self.slots
            .get_mut(handle.index as usize)
            .filter(|slot| slot.generation == handle.generation)
            .and_then(|slot| slot.value.as_mut())
    }

    /// Removes and returns the value behind `handle`, freeing its slot
    /// for reuse under a new generation. `None` if already removed.
    pub fn remove(&mut self, handle: PageHandle) -> Option<T> {
        let slot = self
            .slots
            .get_mut(handle.index as usize)
            .filter(|slot| slot.generation == handle.generation)?;
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.live -= 1;
        Some(value)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// Whether the arena holds no live values.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates live values in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|slot| slot.value.as_ref())
    }

    /// Removes every value and forgets all slots (handles from before
    /// the clear never resolve: generations restart with the slab).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut arena = PageArena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"a"));
        assert_eq!(arena.remove(a), Some("a"));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(b), Some(&"b"));
    }

    #[test]
    fn stale_handles_never_alias_reused_slots() {
        let mut arena = PageArena::new();
        let old = arena.insert(1u64);
        arena.remove(old);
        let new = arena.insert(2u64);
        // The slot is reused (dense storage) …
        assert_eq!(new.index(), old.index());
        // … but the stale handle observes nothing.
        assert_eq!(arena.get(old), None);
        assert_eq!(arena.remove(old), None);
        assert_eq!(arena.get(new), Some(&2));
    }

    #[test]
    fn double_remove_is_inert() {
        let mut arena = PageArena::new();
        let h = arena.insert(7u32);
        assert_eq!(arena.remove(h), Some(7));
        assert_eq!(arena.remove(h), None);
        assert!(arena.is_empty());
    }

    #[test]
    fn iter_visits_only_live_values() {
        let mut arena = PageArena::new();
        let handles: Vec<_> = (0..5u32).map(|i| arena.insert(i)).collect();
        arena.remove(handles[1]);
        arena.remove(handles[3]);
        let live: Vec<u32> = arena.iter().copied().collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn clone_is_independent() {
        let mut arena = PageArena::new();
        let h = arena.insert(vec![1, 2, 3]);
        let snapshot = arena.clone();
        arena.get_mut(h).unwrap().push(4);
        assert_eq!(snapshot.get(h).unwrap().len(), 3);
        assert_eq!(arena.get(h).unwrap().len(), 4);
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut arena = PageArena::new();
        let h = arena.insert(9u8);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.get(h), None);
        let h2 = arena.insert(10u8);
        assert_eq!(arena.get(h2), Some(&10));
    }
}
