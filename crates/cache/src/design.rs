//! The [`DramCacheModel`] trait and shared statistics.

use serde::{Deserialize, Serialize};

use fc_types::{MemAccess, PhysAddr};

use crate::plan::AccessPlan;

/// Latency in core cycles of an SRAM structure of the given size.
///
/// Piecewise model fitted to the paper's Table 4 (tag latencies 4–11
/// cycles for 0.22–3.12 MB structures at 3 GHz):
///
/// ```
/// use fc_cache::sram_latency_cycles;
/// assert_eq!(sram_latency_cycles(410_000), 4);    // 0.40 MB FC tags @64MB
/// assert_eq!(sram_latency_cycles(1_660_000), 9);  // 1.58 MB FC tags @256MB
/// assert_eq!(sram_latency_cycles(3_280_000), 11); // 3.12 MB FC tags @512MB
/// ```
pub fn sram_latency_cycles(bytes: u64) -> u32 {
    const MB: u64 = 1 << 20;
    match bytes {
        b if b <= MB * 42 / 100 => 4,
        b if b <= MB / 2 => 5,
        b if b <= MB => 6,
        b if b <= 2 * MB => 9,
        b if b <= 4 * MB => 11,
        _ => 13,
    }
}

/// One SRAM structure a design needs on the logic die (Table 4 reports
/// these per design and capacity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageItem {
    /// Structure name ("tag array", "MissMap", "FHT", …).
    pub name: &'static str,
    /// Size in bytes.
    pub bytes: u64,
    /// Lookup latency in core cycles.
    pub latency_cycles: u32,
}

/// Histogram of page densities observed at eviction, using Figure 4's
/// bins: 1, 2–3, 4–7, 8–15, 16–31, 32 blocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensityHistogram {
    bins: [u64; 6],
}

impl DensityHistogram {
    /// Figure 4's bin labels.
    pub const LABELS: [&'static str; 6] = [
        "1 Block",
        "2-3 Blocks",
        "4-7 Blocks",
        "8-15 Blocks",
        "16-31 Blocks",
        "32 Blocks",
    ];

    /// Records a page evicted with `density` demanded blocks (densities
    /// over 32 land in the top bin; zero-density pages are ignored).
    pub fn record(&mut self, density: usize) {
        let bin = match density {
            0 => return,
            1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            8..=15 => 3,
            16..=31 => 4,
            _ => 5,
        };
        self.bins[bin] += 1;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> [u64; 6] {
        self.bins
    }

    /// Rebuilds a histogram from raw bin counts (the inverse of
    /// [`bins`](Self::bins); used when loading persisted reports).
    pub fn from_bins(bins: [u64; 6]) -> Self {
        Self { bins }
    }

    /// Bin fractions summing to 1 (all zeros if nothing recorded).
    pub fn fractions(&self) -> [f64; 6] {
        let total: u64 = self.bins.iter().sum();
        if total == 0 {
            return [0.0; 6];
        }
        let mut out = [0.0; 6];
        for (o, b) in out.iter_mut().zip(self.bins.iter()) {
            *o = *b as f64 / total as f64;
        }
        out
    }

    /// Total pages recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// Counters shared by every DRAM cache design.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DramCacheStats {
    /// Demand accesses seen (reads + writes from the L2's miss stream).
    pub accesses: u64,
    /// Accesses serviced from the stacked DRAM.
    pub hits: u64,
    /// Accesses serviced from off-chip memory.
    pub misses: u64,
    /// Misses serviced off-chip without allocating (singleton bypass,
    /// filter-cache bypass).
    pub bypasses: u64,
    /// Allocation-unit evictions (pages or blocks, per design).
    pub evictions: u64,
    /// Evictions that wrote data back off-chip.
    pub dirty_evictions: u64,
    /// Blocks fetched from off-chip into the cache (fills).
    pub fill_blocks: u64,
    /// Total blocks read from off-chip (demand + fills).
    pub offchip_read_blocks: u64,
    /// Total blocks written to off-chip (writebacks).
    pub offchip_write_blocks: u64,
    /// Total blocks read from the stacked DRAM.
    pub stacked_read_blocks: u64,
    /// Total blocks written to the stacked DRAM.
    pub stacked_write_blocks: u64,
    /// Page densities at eviction (page-organized designs; Figure 4).
    pub density: DensityHistogram,
}

impl DramCacheStats {
    /// Miss ratio over demand accesses (Figure 5a).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio over demand accesses (Figure 9).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Total off-chip traffic in blocks (Figure 5b's numerator).
    pub fn offchip_blocks(&self) -> u64 {
        self.offchip_read_blocks + self.offchip_write_blocks
    }

    /// Folds a produced plan's traffic into the counters.
    pub fn absorb_plan(&mut self, plan: &AccessPlan) {
        self.offchip_read_blocks += plan.offchip_read_blocks();
        self.offchip_write_blocks += plan.offchip_write_blocks();
        self.stacked_read_blocks += plan.stacked_read_blocks();
        self.stacked_write_blocks += plan.stacked_write_blocks();
    }
}

/// Raw footprint-prediction counters exposed through the design trait so
/// the simulator can report Figure 8 without depending on the concrete
/// Footprint Cache type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionCounters {
    /// Blocks predicted and demanded.
    pub covered: u64,
    /// Blocks fetched but never demanded.
    pub overpredicted: u64,
    /// Blocks demanded but not predicted.
    pub underpredicted: u64,
    /// Singleton-page bypasses.
    pub singleton_bypasses: u64,
    /// Singleton pages promoted by a second access.
    pub singleton_promotions: u64,
}

/// The canonical boxed design model: every layer that stores or clones
/// a type-erased design uses this alias. The `Send + Sync` auto-trait
/// bounds are part of the engine contract (the parallel executor and
/// the parallel-in-time sampler move models across threads), so a bare
/// `Box<dyn DramCacheModel>` is almost always a mistake — it cannot
/// enter a [`MemorySystem`](../fc_sim/struct.MemorySystem.html).
pub type BoxedModel = Box<dyn DramCacheModel + Send + Sync>;

/// Object-safe cloning for boxed design models.
///
/// Checkpointable simulation (the parallel-in-time sampler) needs to
/// clone a [`BoxedModel`] without knowing the concrete type. Every
/// `Clone + Send` model gets this for free via the blanket impl; design
/// authors never implement it by hand — they `#[derive(Clone)]` and the
/// supertrait bound is satisfied.
pub trait CloneModel {
    /// Clones the model behind a fresh box.
    fn clone_model(&self) -> BoxedModel;
}

impl<T: DramCacheModel + Clone + Send + Sync + 'static> CloneModel for T {
    fn clone_model(&self) -> BoxedModel {
        Box::new(self.clone())
    }
}

impl Clone for BoxedModel {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// A die-stacked DRAM cache design.
///
/// Implementations are purely functional models: they maintain their own
/// tag/metadata state and translate each request into an [`AccessPlan`];
/// timing and energy fall out of executing plans against the DRAM models.
/// Models must also be cheaply cloneable ([`CloneModel`], free with
/// `#[derive(Clone)]`) so engine state can be checkpointed at interval
/// boundaries.
pub trait DramCacheModel: CloneModel {
    /// Handles a demand access (a read or write that missed in the L2).
    fn access(&mut self, req: MemAccess) -> AccessPlan;

    /// Handles a dirty-block writeback evicted from the L2. Writebacks
    /// carry no PC (Section 7: evictions from upper levels are not
    /// tracked) and never stall the core.
    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan;

    /// Accumulated statistics.
    fn stats(&self) -> &DramCacheStats;

    /// The SRAM structures this design requires (Table 4).
    fn storage(&self) -> Vec<StorageItem>;

    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Footprint-prediction counters, for designs that predict (only
    /// Footprint Cache). Defaults to `None`.
    fn prediction_counters(&self) -> Option<PredictionCounters> {
        None
    }

    /// Functional-warmup update: applies a demand access's state
    /// transitions (tags, replacement, MissMap, predictor, statistics)
    /// without needing the returned [`AccessPlan`] to be executed
    /// against any DRAM timing model. The default builds and discards
    /// the plan, which by construction leaves the design in **exactly**
    /// the state the detailed path would; designs with expensive plan
    /// construction may override this with a plan-free update, provided
    /// the resulting tag/metadata state stays identical.
    fn warm_access(&mut self, req: MemAccess) {
        let _ = self.access(req);
    }

    /// Functional-warmup counterpart of [`writeback`](Self::writeback):
    /// applies the dirty-state transition without executing the plan.
    fn warm_writeback(&mut self, addr: PhysAddr) {
        let _ = self.writeback(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_table4_points() {
        const MB: u64 = 1 << 20;
        // Footprint Cache row of Table 4.
        assert_eq!(sram_latency_cycles((0.40 * MB as f64) as u64), 4);
        assert_eq!(sram_latency_cycles((0.80 * MB as f64) as u64), 6);
        assert_eq!(sram_latency_cycles((1.58 * MB as f64) as u64), 9);
        assert_eq!(sram_latency_cycles((3.12 * MB as f64) as u64), 11);
        // Page-based row.
        assert_eq!(sram_latency_cycles((0.22 * MB as f64) as u64), 4);
        assert_eq!(sram_latency_cycles((0.44 * MB as f64) as u64), 5);
        assert_eq!(sram_latency_cycles((0.86 * MB as f64) as u64), 6);
        assert_eq!(sram_latency_cycles((1.69 * MB as f64) as u64), 9);
        // MissMap row.
        assert_eq!(sram_latency_cycles((1.95 * MB as f64) as u64), 9);
        assert_eq!(sram_latency_cycles((2.92 * MB as f64) as u64), 11);
    }

    #[test]
    fn density_histogram_bins() {
        let mut h = DensityHistogram::default();
        for d in [1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 40, 0] {
            h.record(d);
        }
        assert_eq!(h.bins(), [1, 2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 11);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_guard_division_by_zero() {
        let s = DramCacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
    }
}
