//! A Banshee-style bandwidth-efficient page cache (Yu et al., MICRO
//! 2017; see PAPERS.md): page-granularity allocation with
//! *frequency-based replacement* that refuses to fill pages unlikely to
//! out-live the page they would displace.
//!
//! The classic page cache fills every missing page, so low-reuse pages
//! churn the cache and burn off-chip bandwidth twice (fill + eviction).
//! Banshee tracks an access-frequency counter per candidate page and
//! only replaces a resident victim when the candidate has proven more
//! popular; until then the miss bypasses block-by-block. Dirty
//! evictions write back only dirty blocks — the design's
//! bandwidth-efficiency theme applied to the outbound path too.

use fc_types::{Footprint, MemAccess, PageAddr, PageGeometry, PhysAddr};

use crate::design::{sram_latency_cycles, DramCacheModel, DramCacheStats, StorageItem};
use crate::page::PAGE_WAYS;
use crate::plan::{AccessPlan, MemOp, MemTarget, OpList};
use crate::setassoc::SetAssoc;

/// Bits per page tag entry (tag + valid + LRU + 8-bit frequency).
const TAG_ENTRY_BITS: u64 = 64;
/// Bits per candidate-table entry (page tag + 8-bit counter).
const CANDIDATE_ENTRY_BITS: u64 = 32;
/// Frequency counters saturate here.
const FREQ_MAX: u32 = 255;

#[derive(Clone, Copy, Debug, Default)]
struct PageInfo {
    touched: Footprint,
    dirty: Footprint,
    /// Accesses observed for this page (while candidate and resident).
    freq: u32,
}

/// A Banshee-style page cache with frequency-based replacement.
///
/// # Examples
///
/// ```
/// use fc_cache::{BansheeCache, DramCacheModel};
/// use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
///
/// let mut cache = BansheeCache::new(64 << 20, PageGeometry::new(2048));
/// let a = MemAccess::read(Pc::new(1), PhysAddr::new(0x8000), 0);
/// // An empty set always allocates...
/// assert!(!cache.access(a).bypass);
/// // ...and the filled page hits.
/// assert!(cache.access(a).hit);
/// ```
#[derive(Clone, Debug)]
pub struct BansheeCache {
    tags: SetAssoc<PageInfo>,
    /// Frequency counters for *non-resident* candidate pages.
    candidates: SetAssoc<u32>,
    geom: PageGeometry,
    tag_latency: u32,
    stats: DramCacheStats,
}

impl BansheeCache {
    /// Candidate-counter entries (sized like the hot-page filter).
    const CANDIDATE_ENTRIES: usize = 64 * 1024;

    /// Creates a Banshee-style cache of `capacity_bytes` with the given
    /// page geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than [`PAGE_WAYS`] pages.
    pub fn new(capacity_bytes: u64, geom: PageGeometry) -> Self {
        let pages = (capacity_bytes / geom.page_size() as u64) as usize;
        assert!(
            pages >= PAGE_WAYS,
            "capacity must hold at least {PAGE_WAYS} pages"
        );
        let tag_latency = sram_latency_cycles(pages as u64 * TAG_ENTRY_BITS / 8);
        Self {
            tags: SetAssoc::new(pages / PAGE_WAYS, PAGE_WAYS),
            candidates: SetAssoc::new(Self::CANDIDATE_ENTRIES / 16, 16),
            geom,
            tag_latency,
            stats: DramCacheStats::default(),
        }
    }

    /// The page geometry in use.
    pub fn geometry(&self) -> PageGeometry {
        self.geom
    }

    fn decompose(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.tags.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    fn candidate_slot(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.candidates.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    /// Stacked-DRAM address of a page slot (its row).
    fn slot_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let slot = set as u64 * PAGE_WAYS as u64 + tag % PAGE_WAYS as u64;
        PhysAddr::new(slot * self.geom.page_size() as u64)
    }

    /// Bumps the candidate counter for a missing page, returning its
    /// new frequency.
    fn observe_candidate(&mut self, page: PageAddr) -> u32 {
        let (cset, ctag) = self.candidate_slot(page);
        match self.candidates.get(cset, ctag) {
            Some(count) => {
                *count = (*count + 1).min(FREQ_MAX);
                *count
            }
            None => {
                self.candidates.insert(cset, ctag, 1);
                1
            }
        }
    }

    /// Emits eviction traffic for a victim page (dirty blocks only) and
    /// records its density.
    fn evict(&mut self, set: usize, victim_tag: u64, info: PageInfo, background: &mut OpList) {
        self.stats.evictions += 1;
        self.stats.density.record(info.touched.len());
        if info.dirty.is_empty() {
            return;
        }
        self.stats.dirty_evictions += 1;
        let sets = self.tags.sets() as u64;
        let victim_page = PageAddr::new(victim_tag * sets + set as u64);
        let blocks = info.dirty.len() as u32;
        background.push(MemOp::read(
            MemTarget::Stacked,
            self.slot_addr(set, victim_tag),
            blocks,
        ));
        background.push(MemOp::write(
            MemTarget::OffChip,
            self.geom.page_base(victim_page),
            blocks,
        ));
    }

    /// Fills `page` into `(set, tag)` with starting frequency `freq`,
    /// evicting the frequency-based victim if the set is full.
    fn fill(
        &mut self,
        page: PageAddr,
        set: usize,
        tag: u64,
        offset: usize,
        freq: u32,
        plan: &mut AccessPlan,
    ) {
        let blocks = self.geom.blocks_per_page() as u32;
        plan.critical.push(MemOp::read(
            MemTarget::OffChip,
            self.geom.page_base(page),
            blocks,
        ));
        let mut info = PageInfo {
            freq,
            ..PageInfo::default()
        };
        info.touched.insert(offset);
        if let Some((victim_tag, victim)) = self.tags.insert(set, tag, info) {
            self.evict(set, victim_tag, victim, &mut plan.background);
        }
        // The candidate counter's job is done: the page is resident.
        let (cset, ctag) = self.candidate_slot(page);
        self.candidates.remove(cset, ctag);
        self.stats.fill_blocks += blocks as u64;
        plan.background.push(MemOp::write(
            MemTarget::Stacked,
            self.slot_addr(set, tag),
            blocks,
        ));
    }
}

impl DramCacheModel for BansheeCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);

        if let Some(info) = self.tags.get(set, tag) {
            info.touched.insert(offset);
            info.freq = (info.freq + 1).min(FREQ_MAX);
            self.stats.hits += 1;
            plan.hit = true;
            plan.critical
                .push(MemOp::read(MemTarget::Stacked, self.slot_addr(set, tag), 1));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        self.stats.misses += 1;
        let freq = self.observe_candidate(page);
        match self.tags.victim(set) {
            // Room in the set: fill unconditionally.
            None => self.fill(page, set, tag, offset, freq, &mut plan),
            // Full set: replace only a less-popular victim.
            Some((victim_tag, victim)) if freq > victim.freq => {
                let _ = victim_tag;
                self.fill(page, set, tag, offset, freq, &mut plan);
            }
            Some((victim_tag, _)) => {
                // Bypass block-by-block; age the victim so a dead page
                // cannot hold its slot forever.
                if let Some(victim) = self.tags.peek_mut(set, victim_tag) {
                    victim.freq = victim.freq.saturating_sub(1);
                }
                self.stats.bypasses += 1;
                plan.bypass = true;
                plan.critical
                    .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
            }
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);
        if let Some(info) = self.tags.get(set, tag) {
            info.dirty.insert(offset);
            plan.hit = true;
            plan.background.push(MemOp::write(
                MemTarget::Stacked,
                self.slot_addr(set, tag),
                1,
            ));
        } else {
            plan.background
                .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        let tag_bytes = self.tags.capacity() as u64 * TAG_ENTRY_BITS / 8;
        let candidate_bytes = Self::CANDIDATE_ENTRIES as u64 * CANDIDATE_ENTRY_BITS / 8;
        vec![
            StorageItem {
                name: "page tags + frequency",
                bytes: tag_bytes,
                latency_cycles: self.tag_latency,
            },
            StorageItem {
                name: "candidate counters",
                bytes: candidate_bytes,
                latency_cycles: sram_latency_cycles(candidate_bytes),
            },
        ]
    }

    fn name(&self) -> &'static str {
        "Banshee"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    fn cache() -> BansheeCache {
        BansheeCache::new(1 << 20, PageGeometry::new(2048)) // 512 pages
    }

    /// Address of the i-th page that lands in set 0.
    fn set0_page(c: &BansheeCache, i: u64) -> u64 {
        i * c.tags.sets() as u64 * 2048
    }

    #[test]
    fn empty_set_fills_unconditionally() {
        let mut c = cache();
        let plan = c.access(read(0x4000));
        assert!(!plan.hit && !plan.bypass);
        assert_eq!(plan.offchip_read_blocks(), 32);
        assert!(c.access(read(0x4000)).hit);
    }

    #[test]
    fn unpopular_candidate_bypasses_a_full_set() {
        let mut c = cache();
        // Fill set 0 and give each resident page a second access so
        // every resident frequency is >= 2.
        for i in 0..PAGE_WAYS as u64 {
            c.access(read(set0_page(&c, i)));
            c.access(read(set0_page(&c, i)));
        }
        // A fresh candidate (freq 1) must not displace anyone.
        let plan = c.access(read(set0_page(&c, PAGE_WAYS as u64)));
        assert!(plan.bypass);
        assert_eq!(plan.offchip_read_blocks(), 1, "bypass is block-granular");
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn popular_candidate_displaces_the_victim() {
        let mut c = cache();
        for i in 0..PAGE_WAYS as u64 {
            c.access(read(set0_page(&c, i)));
        }
        // Hammer the candidate until its counter beats the victim's.
        let newcomer = set0_page(&c, PAGE_WAYS as u64);
        let mut filled = false;
        for _ in 0..8 {
            let plan = c.access(read(newcomer));
            if !plan.bypass {
                filled = true;
                break;
            }
        }
        assert!(filled, "a repeatedly demanded page must eventually fill");
        assert!(c.access(read(newcomer)).hit);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_evictions_write_only_dirty_blocks() {
        let mut c = cache();
        for i in 0..PAGE_WAYS as u64 {
            c.access(read(set0_page(&c, i)));
        }
        c.writeback(PhysAddr::new(set0_page(&c, 0))); // dirty one block (now MRU)
                                                      // Re-touch the others so the dirty page is the LRU victim again.
        for i in 1..PAGE_WAYS as u64 {
            c.access(read(set0_page(&c, i)));
        }
        let newcomer = set0_page(&c, PAGE_WAYS as u64);
        for _ in 0..8 {
            if !c.access(read(newcomer)).bypass {
                break;
            }
        }
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().offchip_write_blocks, 1, "one dirty block");
    }

    #[test]
    fn bypasses_age_the_victim() {
        let mut c = cache();
        for i in 0..PAGE_WAYS as u64 {
            c.access(read(set0_page(&c, i)));
            c.access(read(set0_page(&c, i)));
            c.access(read(set0_page(&c, i)));
        }
        // Two different cold candidates alternate; victim frequency
        // decays by one per failed replacement, so a persistent
        // candidate eventually wins even against freq-3 residents.
        let newcomer = set0_page(&c, PAGE_WAYS as u64);
        let mut bypasses = 0;
        for _ in 0..16 {
            let plan = c.access(read(newcomer));
            if !plan.bypass {
                break;
            }
            bypasses += 1;
        }
        assert!(bypasses >= 1);
        assert!(c.access(read(newcomer)).hit, "aging must unstick the set");
    }

    #[test]
    fn storage_reports_both_structures() {
        let c = BansheeCache::new(64 << 20, PageGeometry::new(2048));
        let items = c.storage();
        assert_eq!(items.len(), 2);
        assert!(items.iter().any(|i| i.name == "candidate counters"));
    }
}
