//! The block-based DRAM cache: the paper's state-of-the-art baseline
//! (Loh & Hill [24], modeled per Section 5.2).
//!
//! Data is cached in 64-byte blocks. Tags live *in* the stacked DRAM,
//! co-located with their set: one 2 KB DRAM row holds one set — 30 data
//! blocks plus two tag blocks (the paper's improved packing after dropping
//! coherence bits). Every cache access is a compound DRAM access (ACT,
//! CAS for tags, 1-cycle lookup, CAS for data, plus an off-critical-path
//! tag-update CAS). A [`MissMap`] in SRAM answers presence queries so
//! misses go straight to memory; its entry evictions force-evict every
//! still-cached block of a 4 KB region, each living in a different DRAM
//! row.

use fc_types::{BlockAddr, MemAccess, PhysAddr};

use crate::design::{DramCacheModel, DramCacheStats, StorageItem};
use crate::missmap::MissMap;
use crate::plan::{AccessPlan, MemOp, MemTarget, OpList};
use crate::setassoc::SetAssoc;

/// Data blocks per 2 KB DRAM row (set): 30 data + 2 tag blocks.
const WAYS: usize = 30;
/// Stacked-DRAM row size in bytes.
const ROW_BYTES: u64 = 2048;

/// The Loh & Hill-style block-based DRAM cache.
///
/// # Examples
///
/// ```
/// use fc_cache::{BlockBasedCache, DramCacheModel};
/// use fc_types::{MemAccess, PhysAddr, Pc};
///
/// let mut cache = BlockBasedCache::new(64 << 20);
/// let a = MemAccess::read(Pc::new(0x400), PhysAddr::new(0x10000), 0);
/// let miss = cache.access(a);
/// assert!(!miss.hit);
/// let hit = cache.access(a);
/// assert!(hit.hit); // the fill made it resident
/// ```
#[derive(Clone, Debug)]
pub struct BlockBasedCache {
    /// Per-set block tags; value = dirty bit. Mirrors the in-DRAM tags.
    tags: SetAssoc<bool>,
    missmap: MissMap,
    stats: DramCacheStats,
}

impl BlockBasedCache {
    /// Creates a block-based cache of `capacity_bytes` of stacked DRAM
    /// (total DRAM, including the in-row tag overhead), with the paper's
    /// MissMap sizing for that capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one 2 KB row.
    pub fn new(capacity_bytes: u64) -> Self {
        let rows = (capacity_bytes / ROW_BYTES) as usize;
        assert!(rows > 0, "capacity must be at least one 2 KB row");
        Self {
            tags: SetAssoc::new(rows, WAYS),
            missmap: MissMap::for_cache_capacity(capacity_bytes),
            stats: DramCacheStats::default(),
        }
    }

    fn decompose(&self, block: BlockAddr) -> (usize, u64) {
        let sets = self.tags.sets() as u64;
        ((block.raw() % sets) as usize, block.raw() / sets)
    }

    /// Stacked-DRAM address of a set's row.
    fn row_addr(&self, set: usize) -> PhysAddr {
        PhysAddr::new(set as u64 * ROW_BYTES)
    }

    fn block_of(&self, set: usize, tag: u64) -> BlockAddr {
        BlockAddr::new(tag * self.tags.sets() as u64 + set as u64)
    }

    /// Evicts `block` from the tag array (if present), appending the
    /// required DRAM ops to `background`.
    fn evict_block(&mut self, block: BlockAddr, background: &mut OpList) {
        let (set, tag) = self.decompose(block);
        if let Some(dirty) = self.tags.remove(set, tag) {
            self.stats.evictions += 1;
            if dirty {
                self.stats.dirty_evictions += 1;
                background.push(MemOp::read(MemTarget::Stacked, self.row_addr(set), 1));
                background.push(MemOp::write(MemTarget::OffChip, block.base(), 1));
            }
            self.missmap.clear_present(block);
        }
    }
}

impl DramCacheModel for BlockBasedCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let block = req.addr.block();
        let (set, tag) = self.decompose(block);
        let mut plan = AccessPlan::tag_only(false, self.missmap.latency_cycles());

        if self.missmap.contains(block) && self.tags.get(set, tag).is_some() {
            // Hit: compound in-DRAM tag + data access. Demand accesses
            // always *read* the block into the L2 (write-allocate);
            // dirtying happens later through writebacks.
            self.stats.hits += 1;
            plan.hit = true;
            plan.critical.push(MemOp::compound(
                MemTarget::Stacked,
                self.row_addr(set),
                fc_types::AccessKind::Read,
            ));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Miss: demand block straight from memory (the MissMap's purpose).
        self.stats.misses += 1;
        plan.critical
            .push(MemOp::read(MemTarget::OffChip, block.base(), 1));

        // Fill the block into its set (write-allocate), evicting the LRU
        // victim of the set if full.
        if let Some((victim_tag, dirty)) = self.tags.insert(set, tag, false) {
            self.stats.evictions += 1;
            let victim = self.block_of(set, victim_tag);
            if dirty {
                self.stats.dirty_evictions += 1;
                plan.background
                    .push(MemOp::read(MemTarget::Stacked, self.row_addr(set), 1));
                plan.background
                    .push(MemOp::write(MemTarget::OffChip, victim.base(), 1));
            }
            self.missmap.clear_present(victim);
        }
        self.stats.fill_blocks += 1;
        plan.background.push(MemOp::compound(
            MemTarget::Stacked,
            self.row_addr(set),
            fc_types::AccessKind::Write,
        ));

        // Update the MissMap; a displaced region forces eviction of all
        // its cached blocks — each in a different set, hence row.
        if let Some(region) = self.missmap.set_present(block) {
            let mut bg = OpList::new();
            for offset in region.present.iter() {
                let b = BlockAddr::new(region.base.raw() + offset as u64);
                self.evict_block(b, &mut bg);
            }
            plan.background.append(&mut bg);
        }

        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let block = addr.block();
        let (set, tag) = self.decompose(block);
        let mut plan = AccessPlan::tag_only(false, self.missmap.latency_cycles());
        if self.missmap.contains(block) {
            if let Some(dirty) = self.tags.get(set, tag) {
                *dirty = true;
                plan.hit = true;
                plan.background.push(MemOp::compound(
                    MemTarget::Stacked,
                    self.row_addr(set),
                    fc_types::AccessKind::Write,
                ));
                self.stats.absorb_plan(&plan);
                return plan;
            }
        }
        // Not cached: write through to memory without allocating.
        plan.background
            .push(MemOp::write(MemTarget::OffChip, block.base(), 1));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        vec![StorageItem {
            name: "MissMap",
            bytes: self.missmap.storage_bytes(),
            latency_cycles: self.missmap.latency_cycles(),
        }]
    }

    fn name(&self) -> &'static str {
        "Block-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    fn small() -> BlockBasedCache {
        BlockBasedCache::new(1 << 20) // 512 rows
    }

    #[test]
    fn miss_fetches_one_block_off_chip() {
        let mut c = small();
        let plan = c.access(read(0x10000));
        assert!(!plan.hit);
        assert_eq!(plan.offchip_read_blocks(), 1);
        // Fill writes the block (plus tag bursts at the DRAM model).
        assert_eq!(plan.stacked_write_blocks(), 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn second_access_hits_in_stacked_dram() {
        let mut c = small();
        c.access(read(0x10000));
        let plan = c.access(read(0x10000));
        assert!(plan.hit);
        assert_eq!(plan.offchip_read_blocks(), 0);
        assert_eq!(plan.stacked_read_blocks(), 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn writeback_to_cached_block_dirties_it() {
        let mut c = small();
        c.access(read(0x10000));
        let wb = c.writeback(PhysAddr::new(0x10000));
        assert!(wb.hit);
        assert_eq!(wb.stacked_write_blocks(), 1);
        assert_eq!(wb.offchip_write_blocks(), 0);
    }

    #[test]
    fn writeback_to_absent_block_goes_off_chip() {
        let mut c = small();
        let wb = c.writeback(PhysAddr::new(0x77000));
        assert!(!wb.hit);
        assert_eq!(wb.offchip_write_blocks(), 1);
        assert_eq!(wb.stacked_write_blocks(), 0);
    }

    #[test]
    fn dirty_victim_written_back_on_conflict() {
        let mut c = small();
        let sets = c.tags.sets() as u64;
        // Fill one set beyond capacity with dirty blocks.
        for i in 0..=WAYS as u64 {
            let addr = i * sets * 64; // same set, distinct tags
            c.access(read(addr));
            c.writeback(PhysAddr::new(addr));
        }
        assert!(c.stats().dirty_evictions >= 1);
        assert!(c.stats().offchip_write_blocks >= 1);
    }

    #[test]
    fn missmap_region_eviction_purges_cached_blocks() {
        // Tiny MissMap to force region evictions quickly.
        let mut c = BlockBasedCache {
            tags: SetAssoc::new(4096, WAYS),
            missmap: MissMap::new(2, 2),
            stats: DramCacheStats::default(),
        };
        c.access(read(0)); // region 0
        c.access(read(4096)); // region 1
        assert!(c.stats().evictions == 0);
        c.access(read(8192)); // region 2 displaces region 0
                              // Block 0 must be gone from the cache now.
        let plan = c.access(read(0));
        assert!(!plan.hit, "region eviction must purge block");
    }

    #[test]
    fn storage_reports_missmap() {
        let c = BlockBasedCache::new(256 << 20);
        let items = c.storage();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "MissMap");
        assert_eq!(items[0].latency_cycles, 9);
    }
}
