//! A Gemini-style hybrid-mapped page cache (Chi et al.; see PAPERS.md):
//! hot pages live in a small *direct-mapped* region probed with a tiny,
//! fast tag array, cold pages in a conventional set-associative region
//! that preserves hit ratio.
//!
//! The idea: direct mapping minimizes lookup latency but conflicts
//! ruin the hit ratio; associativity fixes the hit ratio but pays a
//! bigger, slower tag structure. Gemini splits the capacity — pages are
//! installed set-associatively, and pages that prove hot (repeated
//! hits) are *promoted* into the direct-mapped region, displacing (and
//! demoting) whatever hashed there before. Migration moves data inside
//! the stacked DRAM only; off-chip traffic is untouched.

use fc_types::{Footprint, MemAccess, PageAddr, PageGeometry, PhysAddr};

use crate::design::{sram_latency_cycles, DramCacheModel, DramCacheStats, StorageItem};
use crate::page::PAGE_WAYS;
use crate::plan::{AccessPlan, MemOp, MemTarget, OpList};
use crate::setassoc::SetAssoc;

/// Bits per page tag entry (tag + valid + LRU + hit counter).
const TAG_ENTRY_BITS: u64 = 64;
/// Fraction of capacity devoted to the direct-mapped hot region (1/N).
const HOT_CAPACITY_DIV: u64 = 4;

#[derive(Clone, Copy, Debug, Default)]
struct PageInfo {
    touched: Footprint,
    dirty: Footprint,
    /// Hits while resident in the cold region (promotion trigger).
    hits: u32,
}

#[derive(Clone, Copy, Debug)]
struct HotEntry {
    tag: u64,
    info: PageInfo,
}

/// A Gemini-style hybrid-mapped DRAM cache.
///
/// # Examples
///
/// ```
/// use fc_cache::{DramCacheModel, GeminiCache};
/// use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
///
/// let mut cache = GeminiCache::new(64 << 20, PageGeometry::new(2048), 4);
/// let a = MemAccess::read(Pc::new(1), PhysAddr::new(0x8000), 0);
/// assert!(!cache.access(a).hit); // installs set-associatively
/// assert!(cache.access(a).hit);
/// ```
#[derive(Clone, Debug)]
pub struct GeminiCache {
    /// Direct-mapped hot region.
    hot: Vec<Option<HotEntry>>,
    /// Set-associative cold region.
    cold: SetAssoc<PageInfo>,
    geom: PageGeometry,
    /// Cold-region hits after which a page is promoted.
    promote_hits: u32,
    hot_latency: u32,
    cold_latency: u32,
    stats: DramCacheStats,
}

impl GeminiCache {
    /// Creates a hybrid-mapped cache of `capacity_bytes`: 1/4 of the
    /// capacity direct-mapped for hot pages, the rest set-associative.
    /// A cold page is promoted after `promote_hits` hits.
    ///
    /// # Panics
    ///
    /// Panics if the cold region would hold fewer than [`PAGE_WAYS`]
    /// pages or `promote_hits == 0`.
    pub fn new(capacity_bytes: u64, geom: PageGeometry, promote_hits: u32) -> Self {
        assert!(promote_hits > 0, "promote_hits must be positive");
        let page = geom.page_size() as u64;
        let hot_pages = ((capacity_bytes / HOT_CAPACITY_DIV) / page).max(1) as usize;
        let cold_pages = ((capacity_bytes / page) as usize).saturating_sub(hot_pages);
        assert!(
            cold_pages >= PAGE_WAYS,
            "cold region must hold at least {PAGE_WAYS} pages"
        );
        Self {
            hot: vec![None; hot_pages],
            cold: SetAssoc::new(cold_pages / PAGE_WAYS, PAGE_WAYS),
            geom,
            promote_hits,
            hot_latency: sram_latency_cycles(hot_pages as u64 * TAG_ENTRY_BITS / 8),
            cold_latency: sram_latency_cycles(cold_pages as u64 * TAG_ENTRY_BITS / 8),
            stats: DramCacheStats::default(),
        }
    }

    fn hot_slot(&self, page: PageAddr) -> (usize, u64) {
        let slots = self.hot.len() as u64;
        ((page.raw() % slots) as usize, page.raw() / slots)
    }

    fn cold_slot(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.cold.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    /// Stacked address of a hot-region slot.
    fn hot_addr(&self, index: usize) -> PhysAddr {
        PhysAddr::new(index as u64 * self.geom.page_size() as u64)
    }

    /// Stacked address of a cold-region slot (offset past the hot region).
    fn cold_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let base = self.hot.len() as u64 * self.geom.page_size() as u64;
        let slot = set as u64 * PAGE_WAYS as u64 + tag % PAGE_WAYS as u64;
        PhysAddr::new(base + slot * self.geom.page_size() as u64)
    }

    /// Emits eviction traffic for a cold-region victim (dirty blocks
    /// only) and records its density.
    fn evict_cold(&mut self, set: usize, victim_tag: u64, info: PageInfo, background: &mut OpList) {
        self.stats.evictions += 1;
        self.stats.density.record(info.touched.len());
        if info.dirty.is_empty() {
            return;
        }
        self.stats.dirty_evictions += 1;
        let sets = self.cold.sets() as u64;
        let victim_page = PageAddr::new(victim_tag * sets + set as u64);
        let blocks = info.dirty.len() as u32;
        background.push(MemOp::read(
            MemTarget::Stacked,
            self.cold_addr(set, victim_tag),
            blocks,
        ));
        background.push(MemOp::write(
            MemTarget::OffChip,
            self.geom.page_base(victim_page),
            blocks,
        ));
    }

    /// Promotes `page` (just removed from the cold region) into its
    /// direct-mapped slot, demoting any displaced page back into the
    /// cold region. All migration traffic stays inside the stack.
    fn promote(&mut self, page: PageAddr, mut info: PageInfo, background: &mut OpList) {
        info.hits = 0;
        let (index, tag) = self.hot_slot(page);
        let blocks = self.geom.blocks_per_page() as u32;
        let (cset, ctag) = self.cold_slot(page);
        background.push(MemOp::read(
            MemTarget::Stacked,
            self.cold_addr(cset, ctag),
            blocks,
        ));
        background.push(MemOp::write(
            MemTarget::Stacked,
            self.hot_addr(index),
            blocks,
        ));
        let displaced = self.hot[index].replace(HotEntry { tag, info });
        if let Some(old) = displaced {
            // Demote the displaced hot page set-associatively.
            let old_page = PageAddr::new(old.tag * self.hot.len() as u64 + index as u64);
            let (dset, dtag) = self.cold_slot(old_page);
            background.push(MemOp::read(
                MemTarget::Stacked,
                self.hot_addr(index),
                blocks,
            ));
            background.push(MemOp::write(
                MemTarget::Stacked,
                self.cold_addr(dset, dtag),
                blocks,
            ));
            let mut demoted = old.info;
            demoted.hits = 0;
            if let Some((victim_tag, victim)) = self.cold.insert(dset, dtag, demoted) {
                self.evict_cold(dset, victim_tag, victim, background);
            }
        }
    }
}

impl DramCacheModel for GeminiCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);

        // Hot region first: the small direct-mapped tag array answers
        // fastest.
        let (index, htag) = self.hot_slot(page);
        if matches!(&self.hot[index], Some(e) if e.tag == htag) {
            let entry = self.hot[index].as_mut().expect("matched above");
            entry.info.touched.insert(offset);
            self.stats.hits += 1;
            let mut plan = AccessPlan::tag_only(true, self.hot_latency);
            plan.critical
                .push(MemOp::read(MemTarget::Stacked, self.hot_addr(index), 1));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        let (set, tag) = self.cold_slot(page);
        let mut plan = AccessPlan::tag_only(false, self.cold_latency);
        if let Some(info) = self.cold.get(set, tag) {
            info.touched.insert(offset);
            info.hits += 1;
            let promote = info.hits >= self.promote_hits;
            self.stats.hits += 1;
            plan.hit = true;
            plan.critical
                .push(MemOp::read(MemTarget::Stacked, self.cold_addr(set, tag), 1));
            if promote {
                let info = self.cold.remove(set, tag).expect("entry just hit");
                let mut background = OpList::new();
                self.promote(page, info, &mut background);
                plan.background.append(&mut background);
            }
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Miss in both regions: install set-associatively.
        self.stats.misses += 1;
        let blocks = self.geom.blocks_per_page() as u32;
        plan.critical.push(MemOp::read(
            MemTarget::OffChip,
            self.geom.page_base(page),
            blocks,
        ));
        let mut info = PageInfo::default();
        info.touched.insert(offset);
        if let Some((victim_tag, victim)) = self.cold.insert(set, tag, info) {
            let mut background = OpList::new();
            self.evict_cold(set, victim_tag, victim, &mut background);
            plan.background.append(&mut background);
        }
        self.stats.fill_blocks += blocks as u64;
        plan.background.push(MemOp::write(
            MemTarget::Stacked,
            self.cold_addr(set, tag),
            blocks,
        ));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (index, htag) = self.hot_slot(page);
        if matches!(&self.hot[index], Some(e) if e.tag == htag) {
            let entry = self.hot[index].as_mut().expect("matched above");
            entry.info.dirty.insert(offset);
            let mut plan = AccessPlan::tag_only(true, self.hot_latency);
            plan.background
                .push(MemOp::write(MemTarget::Stacked, self.hot_addr(index), 1));
            self.stats.absorb_plan(&plan);
            return plan;
        }
        let (set, tag) = self.cold_slot(page);
        let mut plan = AccessPlan::tag_only(false, self.cold_latency);
        if let Some(info) = self.cold.get(set, tag) {
            info.dirty.insert(offset);
            plan.hit = true;
            plan.background.push(MemOp::write(
                MemTarget::Stacked,
                self.cold_addr(set, tag),
                1,
            ));
        } else {
            plan.background
                .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        vec![
            StorageItem {
                name: "hot-region tags (direct)",
                bytes: self.hot.len() as u64 * TAG_ENTRY_BITS / 8,
                latency_cycles: self.hot_latency,
            },
            StorageItem {
                name: "cold-region tags (assoc)",
                bytes: self.cold.capacity() as u64 * TAG_ENTRY_BITS / 8,
                latency_cycles: self.cold_latency,
            },
        ]
    }

    fn name(&self) -> &'static str {
        "Gemini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    fn cache() -> GeminiCache {
        GeminiCache::new(1 << 20, PageGeometry::new(2048), 3)
    }

    #[test]
    fn misses_install_in_the_cold_region() {
        let mut c = cache();
        let plan = c.access(read(0x4000));
        assert!(!plan.hit);
        assert_eq!(plan.offchip_read_blocks(), 32);
        assert!(c.access(read(0x4000)).hit);
        assert!(c.hot.iter().all(|e| e.is_none()), "not yet promoted");
    }

    #[test]
    fn repeated_hits_promote_to_the_hot_region() {
        let mut c = cache();
        c.access(read(0x4000)); // install
        for _ in 0..3 {
            assert!(c.access(read(0x4000)).hit);
        }
        assert_eq!(c.hot.iter().flatten().count(), 1, "page promoted");
        // Subsequent accesses hit the direct-mapped region at the
        // smaller tag latency.
        let plan = c.access(read(0x4000));
        assert!(plan.hit);
        assert!(plan.tag_latency <= c.cold_latency);
    }

    #[test]
    fn promotion_migrates_inside_the_stack_only() {
        let mut c = cache();
        c.access(read(0x4000));
        let before = c.stats().offchip_read_blocks + c.stats().offchip_write_blocks;
        for _ in 0..3 {
            c.access(read(0x4000));
        }
        let after = c.stats().offchip_read_blocks + c.stats().offchip_write_blocks;
        assert_eq!(before, after, "migration must not touch off-chip DRAM");
        assert!(c.stats().stacked_read_blocks > 0);
    }

    #[test]
    fn displaced_hot_page_is_demoted_not_lost() {
        let mut c = cache();
        let hot_slots = c.hot.len() as u64;
        let a = 0x4000u64;
        let b = a + hot_slots * 2048; // same hot slot as `a`
        for addr in [a, b] {
            c.access(read(addr));
            for _ in 0..3 {
                c.access(read(addr));
            }
        }
        // `b` displaced `a` from the hot region; both must still hit.
        assert!(c.access(read(a)).hit, "demoted page still resident");
        assert!(c.access(read(b)).hit);
    }

    #[test]
    fn hot_region_is_a_quarter_of_capacity() {
        let c = GeminiCache::new(64 << 20, PageGeometry::new(2048), 4);
        assert_eq!(c.hot.len(), (64 << 20) / 4 / 2048);
        assert_eq!(c.cold.capacity(), (64 << 20) * 3 / 4 / 2048);
    }

    #[test]
    #[should_panic(expected = "promote_hits")]
    fn zero_promote_threshold_rejected() {
        GeminiCache::new(1 << 20, PageGeometry::new(2048), 0);
    }
}
