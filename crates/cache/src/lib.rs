//! SRAM cache hierarchy and baseline die-stacked DRAM cache designs.
//!
//! This crate provides every cache the paper compares Footprint Cache
//! against, plus the shared machinery they are built from:
//!
//! * [`SetAssoc`] — a generic set-associative container with true-LRU
//!   replacement, used by tag arrays, the L2 model, the MissMap and the
//!   FHT.
//! * [`SramCache`] — the pod's shared L2 (Table 3: 4 MB, 16-way, 64 B
//!   blocks, writeback/write-allocate).
//! * [`DramCacheModel`] — the trait every DRAM cache design implements.
//!   A design is purely functional: an access yields an [`AccessPlan`]
//!   listing the DRAM operations to perform, split into critical-path ops
//!   (which determine the request's latency) and background ops (fills,
//!   evictions, tag updates — bank time and energy only). The simulator
//!   executes plans against the stacked and off-chip DRAM timing models.
//! * The baseline designs themselves:
//!   [`BlockBasedCache`] (Loh & Hill [24]: tags-in-DRAM, compound access
//!   scheduling, [`MissMap`]), [`PageBasedCache`], [`SubBlockCache`]
//!   (sectored; the "no overprediction" extreme of Section 3.1),
//!   [`HotPageCache`] (CHOP-style filter cache of Section 6.7 [13]),
//!   [`IdealCache`] (never misses — die-stacked main memory), and
//!   [`NoCache`] (the baseline system without a DRAM cache).
//! * Related-work contenders beyond the paper's own baselines (see
//!   PAPERS.md): [`AlloyCache`] (direct-mapped tags-in-DRAM TAD units),
//!   [`BansheeCache`] (frequency-based, bandwidth-aware page
//!   replacement), and [`GeminiCache`] (hybrid direct/set-associative
//!   mapping with hot-page promotion).
//!
//! # Examples
//!
//! ```
//! use fc_cache::{DramCacheModel, PageBasedCache};
//! use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
//!
//! let mut cache = PageBasedCache::new(64 << 20, PageGeometry::new(2048));
//! let plan = cache.access(MemAccess::read(Pc::new(0x400), PhysAddr::new(0x8000), 0));
//! assert!(!plan.hit); // cold miss fetches the whole page
//! assert_eq!(plan.offchip_read_blocks(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloy;
mod arena;
mod banshee;
mod block;
mod design;
mod gemini;
mod hotpage;
mod ideal;
mod missmap;
mod page;
mod plan;
mod setassoc;
mod sram;
mod subblock;

pub use alloy::AlloyCache;
pub use arena::{PageArena, PageHandle};
pub use banshee::BansheeCache;
pub use block::BlockBasedCache;
pub use design::{
    sram_latency_cycles, BoxedModel, CloneModel, DensityHistogram, DramCacheModel, DramCacheStats,
    PredictionCounters, StorageItem,
};
pub use gemini::GeminiCache;
pub use hotpage::HotPageCache;
pub use ideal::{IdealCache, NoCache};
pub use missmap::MissMap;
pub use page::{PageBasedCache, WritebackGranularity};
pub use plan::{AccessPlan, MemOp, MemTarget, OpFlavor, OpList};
pub use setassoc::SetAssoc;
pub use sram::{SramCache, SramOutcome};
pub use subblock::SubBlockCache;
