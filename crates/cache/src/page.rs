//! The page-based DRAM cache (Section 2.3, evaluated per Section 5.2):
//! SRAM tags, whole-page fills, open-page-friendly row locality — and an
//! off-chip traffic bill of up to an order of magnitude over the baseline.

use serde::{Deserialize, Serialize};

use fc_types::{Footprint, MemAccess, PageAddr, PageGeometry, PhysAddr};

use crate::design::{sram_latency_cycles, DramCacheModel, DramCacheStats, StorageItem};
use crate::plan::{AccessPlan, MemOp, MemTarget, OpList};
use crate::setassoc::SetAssoc;

/// Associativity of the page tag array (also used by Footprint Cache).
pub(crate) const PAGE_WAYS: usize = 16;

/// Bits per page tag entry (tag + valid + LRU): Table 4's page-based
/// storage numbers imply ~56 bits (0.22 MB for 32 K entries).
const TAG_ENTRY_BITS: u64 = 56;

/// Dirty-eviction write-back granularity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritebackGranularity {
    /// Transfer the whole page (the classic page-cache design the paper
    /// charges with excessive traffic).
    #[default]
    Page,
    /// Transfer only dirty blocks (per-block dirty bits; ablation
    /// `abl-wb`).
    DirtyBlocks,
}

#[derive(Clone, Copy, Debug, Default)]
struct PageInfo {
    /// Blocks demanded by cores (density accounting, Figure 4).
    touched: Footprint,
    /// Blocks dirtied by L2 writebacks.
    dirty: Footprint,
}

/// A page-based DRAM cache with SRAM tags.
///
/// # Examples
///
/// ```
/// use fc_cache::{DramCacheModel, PageBasedCache};
/// use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
///
/// let mut cache = PageBasedCache::new(64 << 20, PageGeometry::new(2048));
/// let a = MemAccess::read(Pc::new(1), PhysAddr::new(0x4000), 0);
/// assert!(!cache.access(a).hit);
/// // Any block of the fetched page now hits.
/// let b = MemAccess::read(Pc::new(1), PhysAddr::new(0x4000 + 31 * 64), 0);
/// assert!(cache.access(b).hit);
/// ```
#[derive(Clone, Debug)]
pub struct PageBasedCache {
    tags: SetAssoc<PageInfo>,
    geom: PageGeometry,
    granularity: WritebackGranularity,
    tag_latency: u32,
    stats: DramCacheStats,
}

impl PageBasedCache {
    /// Creates a page-based cache of `capacity_bytes` with the given page
    /// geometry and whole-page writeback granularity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than [`PAGE_WAYS`] pages.
    pub fn new(capacity_bytes: u64, geom: PageGeometry) -> Self {
        Self::with_granularity(capacity_bytes, geom, WritebackGranularity::Page)
    }

    /// Creates a page-based cache with an explicit writeback granularity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than [`PAGE_WAYS`] pages.
    pub fn with_granularity(
        capacity_bytes: u64,
        geom: PageGeometry,
        granularity: WritebackGranularity,
    ) -> Self {
        let pages = (capacity_bytes / geom.page_size() as u64) as usize;
        assert!(
            pages >= PAGE_WAYS,
            "capacity must hold at least {PAGE_WAYS} pages"
        );
        let entries = pages as u64;
        let tag_latency = sram_latency_cycles(entries * TAG_ENTRY_BITS / 8);
        Self {
            tags: SetAssoc::new(pages / PAGE_WAYS, PAGE_WAYS),
            geom,
            granularity,
            tag_latency,
            stats: DramCacheStats::default(),
        }
    }

    /// The page geometry in use.
    pub fn geometry(&self) -> PageGeometry {
        self.geom
    }

    fn decompose(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.tags.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    /// Stacked-DRAM address of a page slot (its row).
    fn slot_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let slot = set as u64 * PAGE_WAYS as u64 + tag % PAGE_WAYS as u64;
        PhysAddr::new(slot * self.geom.page_size() as u64)
    }

    /// Emits eviction traffic for a victim page and records its density.
    fn evict(&mut self, set: usize, victim_tag: u64, info: PageInfo, background: &mut OpList) {
        self.stats.evictions += 1;
        self.stats.density.record(info.touched.len());
        if info.dirty.is_empty() {
            return;
        }
        self.stats.dirty_evictions += 1;
        let sets = self.tags.sets() as u64;
        let victim_page = PageAddr::new(victim_tag * sets + set as u64);
        let blocks = match self.granularity {
            WritebackGranularity::Page => self.geom.blocks_per_page() as u32,
            WritebackGranularity::DirtyBlocks => info.dirty.len() as u32,
        };
        background.push(MemOp::read(
            MemTarget::Stacked,
            self.slot_addr(set, victim_tag),
            blocks,
        ));
        background.push(MemOp::write(
            MemTarget::OffChip,
            self.geom.page_base(victim_page),
            blocks,
        ));
    }
}

impl DramCacheModel for PageBasedCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);

        if let Some(info) = self.tags.get(set, tag) {
            info.touched.insert(offset);
            self.stats.hits += 1;
            plan.hit = true;
            plan.critical
                .push(MemOp::read(MemTarget::Stacked, self.slot_addr(set, tag), 1));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Page miss: fetch the whole page (critical-block-first), fill the
        // stacked DRAM, evict the victim page.
        self.stats.misses += 1;
        let blocks = self.geom.blocks_per_page() as u32;
        plan.critical.push(MemOp::read(
            MemTarget::OffChip,
            self.geom.page_base(page),
            blocks,
        ));
        let mut info = PageInfo::default();
        info.touched.insert(offset);
        if let Some((victim_tag, victim)) = self.tags.insert(set, tag, info) {
            self.evict(set, victim_tag, victim, &mut plan.background);
        }
        self.stats.fill_blocks += blocks as u64;
        plan.background.push(MemOp::write(
            MemTarget::Stacked,
            self.slot_addr(set, tag),
            blocks,
        ));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);
        if let Some(info) = self.tags.get(set, tag) {
            info.dirty.insert(offset);
            plan.hit = true;
            plan.background.push(MemOp::write(
                MemTarget::Stacked,
                self.slot_addr(set, tag),
                1,
            ));
        } else {
            plan.background
                .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    // Warmup-only update path: the exact state transitions and
    // statistics of `access`/`writeback` without constructing the
    // `AccessPlan`'s op vectors (the only heap work on this design's
    // hot path). The sampled simulator's functional mode calls these
    // once per fast-forwarded record, so the savings compound.
    // Invariant (enforced by `warm_path_matches_detailed_path` below):
    // a cache driven by the warm methods is indistinguishable — tags,
    // replacement order, and every counter — from one driven by the
    // plan-building methods.

    fn warm_access(&mut self, req: MemAccess) {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        if let Some(info) = self.tags.get(set, tag) {
            info.touched.insert(offset);
            self.stats.hits += 1;
            self.stats.stacked_read_blocks += 1;
            return;
        }
        self.stats.misses += 1;
        let blocks = self.geom.blocks_per_page() as u32;
        let mut info = PageInfo::default();
        info.touched.insert(offset);
        if let Some((_victim_tag, victim)) = self.tags.insert(set, tag, info) {
            self.stats.evictions += 1;
            self.stats.density.record(victim.touched.len());
            if !victim.dirty.is_empty() {
                self.stats.dirty_evictions += 1;
                let wb = match self.granularity {
                    WritebackGranularity::Page => self.geom.blocks_per_page() as u32,
                    WritebackGranularity::DirtyBlocks => victim.dirty.len() as u32,
                };
                self.stats.stacked_read_blocks += wb as u64;
                self.stats.offchip_write_blocks += wb as u64;
            }
        }
        self.stats.fill_blocks += blocks as u64;
        self.stats.offchip_read_blocks += blocks as u64;
        self.stats.stacked_write_blocks += blocks as u64;
    }

    fn warm_writeback(&mut self, addr: PhysAddr) {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        if let Some(info) = self.tags.get(set, tag) {
            info.dirty.insert(offset);
            self.stats.stacked_write_blocks += 1;
        } else {
            self.stats.offchip_write_blocks += 1;
        }
    }

    fn storage(&self) -> Vec<StorageItem> {
        let bytes = self.tags.capacity() as u64 * TAG_ENTRY_BITS / 8;
        vec![StorageItem {
            name: "page tags",
            bytes,
            latency_cycles: self.tag_latency,
        }]
    }

    fn name(&self) -> &'static str {
        "Page-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    fn cache() -> PageBasedCache {
        PageBasedCache::new(1 << 20, PageGeometry::new(2048)) // 512 pages
    }

    #[test]
    fn miss_fetches_whole_page() {
        let mut c = cache();
        let plan = c.access(read(0x12345));
        assert!(!plan.hit);
        assert_eq!(plan.offchip_read_blocks(), 32);
        assert_eq!(plan.stacked_write_blocks(), 32);
    }

    #[test]
    fn any_block_of_resident_page_hits() {
        let mut c = cache();
        c.access(read(0x4000));
        for block in 0..32u64 {
            let plan = c.access(read(0x4000 + block * 64));
            assert!(plan.hit);
        }
        assert_eq!(c.stats().hits, 32);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn dirty_page_evicts_at_page_granularity() {
        let mut c = cache();
        let sets = c.tags.sets() as u64;
        let page_bytes = 2048;
        let first = 0u64;
        c.access(read(first));
        c.writeback(PhysAddr::new(first)); // dirty it
                                           // Conflict-fill the same set.
        for i in 1..=PAGE_WAYS as u64 {
            c.access(read(first + i * sets * page_bytes));
        }
        assert_eq!(c.stats().dirty_evictions, 1);
        // Whole page read from stacked + written off-chip.
        assert!(c.stats().offchip_write_blocks >= 32);
    }

    #[test]
    fn dirty_block_granularity_writes_less() {
        let mut c = PageBasedCache::with_granularity(
            1 << 20,
            PageGeometry::new(2048),
            WritebackGranularity::DirtyBlocks,
        );
        let sets = c.tags.sets() as u64;
        c.access(read(0));
        c.writeback(PhysAddr::new(0));
        for i in 1..=PAGE_WAYS as u64 {
            c.access(read(i * sets * 2048));
        }
        assert_eq!(c.stats().dirty_evictions, 1);
        // Exactly one dirty block written back.
        let wb = c.stats().offchip_write_blocks;
        assert_eq!(
            wb, 1,
            "dirty-block granularity must write 1 block, got {wb}"
        );
    }

    #[test]
    fn density_recorded_at_eviction() {
        let mut c = cache();
        let sets = c.tags.sets() as u64;
        // Touch 5 blocks of page 0.
        for b in 0..5u64 {
            c.access(read(b * 64));
        }
        for i in 1..=PAGE_WAYS as u64 {
            c.access(read(i * sets * 2048));
        }
        let bins = c.stats().density.bins();
        assert_eq!(bins[2], 1, "a 5-block page lands in the 4-7 bin: {bins:?}");
    }

    #[test]
    fn clean_eviction_writes_nothing() {
        let mut c = cache();
        let sets = c.tags.sets() as u64;
        c.access(read(0));
        for i in 1..=PAGE_WAYS as u64 {
            c.access(read(i * sets * 2048));
        }
        assert!(c.stats().evictions >= 1);
        assert_eq!(c.stats().dirty_evictions, 0);
        assert_eq!(c.stats().offchip_write_blocks, 0);
    }

    #[test]
    fn writeback_to_absent_page_bypasses() {
        let mut c = cache();
        let plan = c.writeback(PhysAddr::new(0x9999));
        assert_eq!(plan.offchip_write_blocks(), 1);
        assert_eq!(plan.stacked_write_blocks(), 0);
    }

    #[test]
    fn warm_path_matches_detailed_path() {
        // The warmup-only update path must leave the cache — tags,
        // replacement order, and every statistic — exactly where the
        // plan-building path would, for both writeback granularities.
        for granularity in [
            WritebackGranularity::Page,
            WritebackGranularity::DirtyBlocks,
        ] {
            let mut detailed =
                PageBasedCache::with_granularity(1 << 20, PageGeometry::new(2048), granularity);
            let mut warm =
                PageBasedCache::with_granularity(1 << 20, PageGeometry::new(2048), granularity);
            // A mixed stream with reuse, conflict evictions and dirty
            // pages (addresses stride the set index so evictions fire).
            let mut addr = 0x40u64;
            for i in 0..4_000u64 {
                addr = addr
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = (addr >> 16) % (64 << 20);
                if i % 3 == 0 {
                    let _ = detailed.writeback(PhysAddr::new(a));
                    warm.warm_writeback(PhysAddr::new(a));
                } else {
                    let req = MemAccess::read(Pc::new(0x400), PhysAddr::new(a), 0);
                    let _ = detailed.access(req);
                    warm.warm_access(req);
                }
            }
            assert_eq!(detailed.stats(), warm.stats(), "{granularity:?}");
            // Replacement state must agree too: the same probe stream
            // produces identical plans afterwards.
            for probe in (0..64u64).map(|i| i * 0x10040) {
                let req = MemAccess::read(Pc::new(0x400), PhysAddr::new(probe), 0);
                assert_eq!(detailed.access(req), warm.access(req));
            }
        }
    }

    #[test]
    fn storage_matches_table4_scale() {
        // 64 MB / 2 KB pages = 32 K entries -> ~0.22 MB (Table 4).
        let c = PageBasedCache::new(64 << 20, PageGeometry::new(2048));
        let s = &c.storage()[0];
        let mb = s.bytes as f64 / (1 << 20) as f64;
        assert!((mb - 0.22).abs() < 0.02, "got {mb} MB");
        assert_eq!(s.latency_cycles, 4);
    }
}
