//! Access plans: the functional interface between cache designs and the
//! DRAM timing models.
//!
//! A design decides *what* DRAM work an access implies; the simulator's
//! plan executor decides *when* it happens by running the ops against the
//! stacked and off-chip [`DramSystem`](../fc_dram/struct.DramSystem.html)s.
//! Critical ops are serialized and determine the request's latency;
//! background ops (fills, evictions, tag updates) start concurrently and
//! only consume bank time, bus time and energy — exactly the paper's
//! treatment of off-critical-path traffic.

use serde::{Deserialize, Serialize};

use fc_types::{AccessKind, PhysAddr};

/// Which DRAM a [`MemOp`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTarget {
    /// The die-stacked DRAM (cache array).
    Stacked,
    /// The off-chip DRAM (main memory).
    OffChip,
}

/// How the op is scheduled at the DRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpFlavor {
    /// Ordinary ACT/CAS access.
    Simple,
    /// Loh & Hill compound access: tag-read CAS before the data CAS and a
    /// tag-update burst after it (tags-in-DRAM block caches).
    CompoundTags,
}

/// One DRAM operation: `blocks` consecutive 64-byte blocks starting at
/// `addr` (all within one DRAM row for row-interleaved mappings when
/// `blocks` ≤ blocks-per-row; the executor splits larger transfers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Target DRAM.
    pub target: MemTarget,
    /// Base byte address of the transfer.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Number of consecutive 64-byte blocks.
    pub blocks: u32,
    /// Scheduling flavor.
    pub flavor: OpFlavor,
}

impl MemOp {
    /// A simple read.
    pub fn read(target: MemTarget, addr: PhysAddr, blocks: u32) -> Self {
        Self {
            target,
            addr,
            kind: AccessKind::Read,
            blocks,
            flavor: OpFlavor::Simple,
        }
    }

    /// A simple write.
    pub fn write(target: MemTarget, addr: PhysAddr, blocks: u32) -> Self {
        Self {
            target,
            addr,
            kind: AccessKind::Write,
            blocks,
            flavor: OpFlavor::Simple,
        }
    }

    /// A compound tags-in-DRAM access (block-based design).
    pub fn compound(target: MemTarget, addr: PhysAddr, kind: AccessKind) -> Self {
        Self {
            target,
            addr,
            kind,
            blocks: 1,
            flavor: OpFlavor::CompoundTags,
        }
    }
}

/// The DRAM work one cache access implies.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPlan {
    /// Whether the access hit in the DRAM cache.
    pub hit: bool,
    /// Whether the block bypassed the cache (fetched off-chip, forwarded
    /// to the requestor, not allocated — singleton pages, filter misses).
    pub bypass: bool,
    /// SRAM lookup cycles on the critical path (tag array, MissMap).
    pub tag_latency: u32,
    /// Serialized ops that determine the request's latency.
    pub critical: Vec<MemOp>,
    /// Concurrent ops charged to bank/bus/energy only.
    pub background: Vec<MemOp>,
}

impl AccessPlan {
    /// A plan with only a tag lookup (e.g., a write hit absorbed by SRAM
    /// state, or a design-internal no-op).
    pub fn tag_only(hit: bool, tag_latency: u32) -> Self {
        Self {
            hit,
            bypass: false,
            tag_latency,
            critical: Vec::new(),
            background: Vec::new(),
        }
    }

    /// Total off-chip blocks read by this plan (critical + background).
    pub fn offchip_read_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::OffChip, AccessKind::Read)
    }

    /// Total off-chip blocks written by this plan.
    pub fn offchip_write_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::OffChip, AccessKind::Write)
    }

    /// Total stacked-DRAM blocks read.
    pub fn stacked_read_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::Stacked, AccessKind::Read)
    }

    /// Total stacked-DRAM blocks written.
    pub fn stacked_write_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::Stacked, AccessKind::Write)
    }

    fn blocks_matching(&self, target: MemTarget, kind: AccessKind) -> u64 {
        self.critical
            .iter()
            .chain(self.background.iter())
            .filter(|op| op.target == target && op.kind == kind)
            .map(|op| op.blocks as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounting_sums_both_lists() {
        let plan = AccessPlan {
            hit: false,
            bypass: false,
            tag_latency: 4,
            critical: vec![MemOp::read(MemTarget::OffChip, PhysAddr::new(0), 1)],
            background: vec![
                MemOp::read(MemTarget::OffChip, PhysAddr::new(64), 11),
                MemOp::write(MemTarget::Stacked, PhysAddr::new(0), 12),
                MemOp::write(MemTarget::OffChip, PhysAddr::new(4096), 3),
            ],
        };
        assert_eq!(plan.offchip_read_blocks(), 12);
        assert_eq!(plan.offchip_write_blocks(), 3);
        assert_eq!(plan.stacked_write_blocks(), 12);
        assert_eq!(plan.stacked_read_blocks(), 0);
    }

    #[test]
    fn constructors_set_flavor() {
        let op = MemOp::compound(MemTarget::Stacked, PhysAddr::new(0), AccessKind::Read);
        assert_eq!(op.flavor, OpFlavor::CompoundTags);
        assert_eq!(op.blocks, 1);
        let r = MemOp::read(MemTarget::OffChip, PhysAddr::new(0), 5);
        assert_eq!(r.flavor, OpFlavor::Simple);
        assert_eq!(r.kind, AccessKind::Read);
    }

    #[test]
    fn tag_only_plan_is_empty() {
        let plan = AccessPlan::tag_only(true, 9);
        assert!(plan.hit && plan.critical.is_empty() && plan.background.is_empty());
        assert_eq!(plan.tag_latency, 9);
    }
}
