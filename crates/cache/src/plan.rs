//! Access plans: the functional interface between cache designs and the
//! DRAM timing models.
//!
//! A design decides *what* DRAM work an access implies; the simulator's
//! plan executor decides *when* it happens by running the ops against the
//! stacked and off-chip [`DramSystem`](../fc_dram/struct.DramSystem.html)s.
//! Critical ops are serialized and determine the request's latency;
//! background ops (fills, evictions, tag updates) start concurrently and
//! only consume bank time, bus time and energy — exactly the paper's
//! treatment of off-critical-path traffic.

use serde::{Deserialize, Serialize};

use fc_types::{AccessKind, PhysAddr};

/// Which DRAM a [`MemOp`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTarget {
    /// The die-stacked DRAM (cache array).
    Stacked,
    /// The off-chip DRAM (main memory).
    OffChip,
}

/// How the op is scheduled at the DRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpFlavor {
    /// Ordinary ACT/CAS access.
    Simple,
    /// Loh & Hill compound access: tag-read CAS before the data CAS and a
    /// tag-update burst after it (tags-in-DRAM block caches).
    CompoundTags,
}

/// One DRAM operation: `blocks` consecutive 64-byte blocks starting at
/// `addr` (all within one DRAM row for row-interleaved mappings when
/// `blocks` ≤ blocks-per-row; the executor splits larger transfers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Target DRAM.
    pub target: MemTarget,
    /// Base byte address of the transfer.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Number of consecutive 64-byte blocks.
    pub blocks: u32,
    /// Scheduling flavor.
    pub flavor: OpFlavor,
}

impl MemOp {
    /// A simple read.
    pub fn read(target: MemTarget, addr: PhysAddr, blocks: u32) -> Self {
        Self {
            target,
            addr,
            kind: AccessKind::Read,
            blocks,
            flavor: OpFlavor::Simple,
        }
    }

    /// A simple write.
    pub fn write(target: MemTarget, addr: PhysAddr, blocks: u32) -> Self {
        Self {
            target,
            addr,
            kind: AccessKind::Write,
            blocks,
            flavor: OpFlavor::Simple,
        }
    }

    /// A compound tags-in-DRAM access (block-based design).
    pub fn compound(target: MemTarget, addr: PhysAddr, kind: AccessKind) -> Self {
        Self {
            target,
            addr,
            kind,
            blocks: 1,
            flavor: OpFlavor::CompoundTags,
        }
    }
}

/// Inline capacity of an [`OpList`]. Plans almost never carry more ops
/// than this (a Footprint Cache miss is ≤1 critical + ≤3 background
/// ops), so the hot path performs no heap allocation at all.
const INLINE_OPS: usize = 4;

/// Filler for unused inline slots (never observable: `len` bounds every
/// read).
const NIL_OP: MemOp = MemOp {
    target: MemTarget::Stacked,
    addr: PhysAddr::new(0),
    kind: AccessKind::Read,
    blocks: 0,
    flavor: OpFlavor::Simple,
};

/// A small-vector of [`MemOp`]s: up to [`INLINE_OPS`] ops live inline in
/// the plan itself; longer lists spill to the heap. This is the hot-path
/// container — per-access plans are built and dropped millions of times
/// per simulated interval, and the inline representation keeps that
/// malloc-free for every design in the registry.
///
/// Equality and ordering of ops are representation-independent: an
/// inline list equals a spilled list with the same ops.
#[derive(Clone, Serialize, Deserialize)]
pub struct OpList {
    /// Valid prefix length of `inline`; unused once spilled.
    len: u8,
    inline: [MemOp; INLINE_OPS],
    /// Empty until the list outgrows `inline`; then holds *all* ops.
    spill: Vec<MemOp>,
}

impl OpList {
    /// An empty list (no heap allocation).
    pub const fn new() -> Self {
        Self {
            len: 0,
            inline: [NIL_OP; INLINE_OPS],
            spill: Vec::new(),
        }
    }

    /// Appends one op.
    pub fn push(&mut self, op: MemOp) {
        if self.spill.is_empty() && (self.len as usize) < INLINE_OPS {
            self.inline[self.len as usize] = op;
            self.len += 1;
            return;
        }
        self.spill_out();
        self.spill.push(op);
    }

    /// Moves every op out of `other` onto the end of this list (the
    /// `Vec::append` idiom designs use to merge staged eviction
    /// traffic).
    pub fn append(&mut self, other: &mut OpList) {
        for &op in other.as_slice() {
            self.push(op);
        }
        other.clear();
    }

    /// Removes all ops, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len as usize
        } else {
            self.spill.len()
        }
    }

    /// Whether the list holds no ops.
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// The ops as a slice, in insertion order.
    pub fn as_slice(&self) -> &[MemOp] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Iterates the ops in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, MemOp> {
        self.as_slice().iter()
    }

    /// Moves the inline ops into `spill` so pushes can grow unbounded.
    fn spill_out(&mut self) {
        if self.spill.is_empty() {
            self.spill.reserve(2 * INLINE_OPS);
            self.spill
                .extend_from_slice(&self.inline[..self.len as usize]);
            self.len = 0;
        }
    }
}

impl Default for OpList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OpList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for OpList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OpList {}

impl std::ops::Index<usize> for OpList {
    type Output = MemOp;

    fn index(&self, index: usize) -> &MemOp {
        &self.as_slice()[index]
    }
}

impl From<Vec<MemOp>> for OpList {
    fn from(ops: Vec<MemOp>) -> Self {
        let mut list = Self::new();
        if ops.len() > INLINE_OPS {
            list.spill = ops;
        } else {
            for op in ops {
                list.push(op);
            }
        }
        list
    }
}

impl FromIterator<MemOp> for OpList {
    fn from_iter<I: IntoIterator<Item = MemOp>>(iter: I) -> Self {
        let mut list = Self::new();
        for op in iter {
            list.push(op);
        }
        list
    }
}

impl Extend<MemOp> for OpList {
    fn extend<I: IntoIterator<Item = MemOp>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a OpList {
    type Item = &'a MemOp;
    type IntoIter = std::slice::Iter<'a, MemOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The DRAM work one cache access implies.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPlan {
    /// Whether the access hit in the DRAM cache.
    pub hit: bool,
    /// Whether the block bypassed the cache (fetched off-chip, forwarded
    /// to the requestor, not allocated — singleton pages, filter misses).
    pub bypass: bool,
    /// SRAM lookup cycles on the critical path (tag array, MissMap).
    pub tag_latency: u32,
    /// Serialized ops that determine the request's latency.
    pub critical: OpList,
    /// Concurrent ops charged to bank/bus/energy only.
    pub background: OpList,
}

impl AccessPlan {
    /// A plan with only a tag lookup (e.g., a write hit absorbed by SRAM
    /// state, or a design-internal no-op).
    pub fn tag_only(hit: bool, tag_latency: u32) -> Self {
        Self {
            hit,
            bypass: false,
            tag_latency,
            critical: OpList::new(),
            background: OpList::new(),
        }
    }

    /// Total off-chip blocks read by this plan (critical + background).
    pub fn offchip_read_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::OffChip, AccessKind::Read)
    }

    /// Total off-chip blocks written by this plan.
    pub fn offchip_write_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::OffChip, AccessKind::Write)
    }

    /// Total stacked-DRAM blocks read.
    pub fn stacked_read_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::Stacked, AccessKind::Read)
    }

    /// Total stacked-DRAM blocks written.
    pub fn stacked_write_blocks(&self) -> u64 {
        self.blocks_matching(MemTarget::Stacked, AccessKind::Write)
    }

    fn blocks_matching(&self, target: MemTarget, kind: AccessKind) -> u64 {
        self.critical
            .iter()
            .chain(self.background.iter())
            .filter(|op| op.target == target && op.kind == kind)
            .map(|op| op.blocks as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounting_sums_both_lists() {
        let plan = AccessPlan {
            hit: false,
            bypass: false,
            tag_latency: 4,
            critical: vec![MemOp::read(MemTarget::OffChip, PhysAddr::new(0), 1)].into(),
            background: vec![
                MemOp::read(MemTarget::OffChip, PhysAddr::new(64), 11),
                MemOp::write(MemTarget::Stacked, PhysAddr::new(0), 12),
                MemOp::write(MemTarget::OffChip, PhysAddr::new(4096), 3),
            ]
            .into(),
        };
        assert_eq!(plan.offchip_read_blocks(), 12);
        assert_eq!(plan.offchip_write_blocks(), 3);
        assert_eq!(plan.stacked_write_blocks(), 12);
        assert_eq!(plan.stacked_read_blocks(), 0);
    }

    #[test]
    fn constructors_set_flavor() {
        let op = MemOp::compound(MemTarget::Stacked, PhysAddr::new(0), AccessKind::Read);
        assert_eq!(op.flavor, OpFlavor::CompoundTags);
        assert_eq!(op.blocks, 1);
        let r = MemOp::read(MemTarget::OffChip, PhysAddr::new(0), 5);
        assert_eq!(r.flavor, OpFlavor::Simple);
        assert_eq!(r.kind, AccessKind::Read);
    }

    #[test]
    fn tag_only_plan_is_empty() {
        let plan = AccessPlan::tag_only(true, 9);
        assert!(plan.hit && plan.critical.is_empty() && plan.background.is_empty());
        assert_eq!(plan.tag_latency, 9);
    }

    #[test]
    fn oplist_spills_past_inline_capacity() {
        let mut list = OpList::new();
        let ops: Vec<MemOp> = (0..9)
            .map(|i| MemOp::read(MemTarget::OffChip, PhysAddr::new(i * 64), 1))
            .collect();
        for (i, op) in ops.iter().enumerate() {
            list.push(*op);
            assert_eq!(list.len(), i + 1);
        }
        assert_eq!(list.as_slice(), &ops[..]);
        assert_eq!(list[7], ops[7]);
    }

    #[test]
    fn oplist_equality_and_debug_follow_content() {
        let ops: Vec<MemOp> = (0..3)
            .map(|i| MemOp::write(MemTarget::Stacked, PhysAddr::new(i * 64), 2))
            .collect();
        let a: OpList = ops.iter().copied().collect();
        let b: OpList = ops.clone().into();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c: OpList = ops[..2].iter().copied().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn oplist_append_drains_the_source() {
        let mut a: OpList = vec![MemOp::read(MemTarget::OffChip, PhysAddr::new(0), 1)].into();
        let mut b: OpList = (0..5)
            .map(|i| MemOp::write(MemTarget::Stacked, PhysAddr::new(i * 64), 1))
            .collect();
        a.append(&mut b);
        assert_eq!(a.len(), 6);
        assert!(b.is_empty());
        // Spilled source, inline destination and vice versa round-trip
        // through From<Vec> identically.
        let direct: OpList = vec![
            MemOp::read(MemTarget::OffChip, PhysAddr::new(0), 1),
            MemOp::write(MemTarget::Stacked, PhysAddr::new(0), 1),
            MemOp::write(MemTarget::Stacked, PhysAddr::new(64), 1),
            MemOp::write(MemTarget::Stacked, PhysAddr::new(128), 1),
            MemOp::write(MemTarget::Stacked, PhysAddr::new(192), 1),
            MemOp::write(MemTarget::Stacked, PhysAddr::new(256), 1),
        ]
        .into();
        assert_eq!(a, direct);
    }
}
