//! An Alloy-style direct-mapped DRAM cache (Qureshi & Loh, MICRO 2012;
//! see PAPERS.md): tags and data fused into one *TAD* (tag-and-data)
//! unit streamed out of the stacked DRAM in a single compound burst.
//!
//! Where the Loh & Hill block cache pays a MissMap lookup plus a
//! tag-then-data CAS pair, Alloy collapses the tag probe and the data
//! transfer into one access to a direct-mapped TAD: hits take one
//! compound stacked access and nothing else, misses pay the same probe
//! and then go off-chip. The model here is the predictor-less
//! serial-access variant (cache probe, then memory), which bounds
//! Alloy's latency benefit from below while keeping it deterministic.

use fc_types::{BlockAddr, MemAccess, PhysAddr};

use crate::design::{DramCacheModel, DramCacheStats, StorageItem};
use crate::plan::{AccessPlan, MemOp, MemTarget};

/// Bytes per TAD unit: a 64-byte data block plus an 8-byte tag.
const TAD_BYTES: u64 = 72;
/// TADs per 2 KB stacked row (Alloy packs 28, wasting 32 bytes).
const TADS_PER_ROW: u64 = 28;

/// One direct-mapped TAD slot.
#[derive(Clone, Copy, Debug)]
struct Tad {
    tag: u64,
    dirty: bool,
}

/// The Alloy-style direct-mapped tags-in-DRAM cache.
///
/// # Examples
///
/// ```
/// use fc_cache::{AlloyCache, DramCacheModel};
/// use fc_types::{MemAccess, PhysAddr, Pc};
///
/// let mut cache = AlloyCache::new(64 << 20);
/// let a = MemAccess::read(Pc::new(0x400), PhysAddr::new(0x10000), 0);
/// let miss = cache.access(a);
/// assert!(!miss.hit); // cold miss probes the TAD, then goes off-chip
/// let hit = cache.access(a);
/// assert!(hit.hit); // one compound stacked access, nothing else
/// assert_eq!(hit.offchip_read_blocks(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct AlloyCache {
    slots: Vec<Option<Tad>>,
    stats: DramCacheStats,
}

impl AlloyCache {
    /// Creates an Alloy cache over `capacity_bytes` of stacked DRAM
    /// (total DRAM, including the in-row tag overhead).
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no TAD.
    pub fn new(capacity_bytes: u64) -> Self {
        let tads = capacity_bytes / TAD_BYTES;
        assert!(tads > 0, "capacity must hold at least one 72-byte TAD");
        Self {
            slots: vec![None; tads as usize],
            stats: DramCacheStats::default(),
        }
    }

    fn decompose(&self, block: BlockAddr) -> (usize, u64) {
        let tads = self.slots.len() as u64;
        ((block.raw() % tads) as usize, block.raw() / tads)
    }

    /// Stacked-DRAM address of a TAD slot, packed 28 per 2 KB row.
    fn slot_addr(&self, index: usize) -> PhysAddr {
        let index = index as u64;
        PhysAddr::new((index / TADS_PER_ROW) * 2048 + (index % TADS_PER_ROW) * TAD_BYTES)
    }

    fn block_of(&self, index: usize, tag: u64) -> BlockAddr {
        BlockAddr::new(tag * self.slots.len() as u64 + index as u64)
    }
}

impl DramCacheModel for AlloyCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let block = req.addr.block();
        let (index, tag) = self.decompose(block);
        // No SRAM structure on the lookup path: the tag rides with the
        // data in the TAD burst.
        let mut plan = AccessPlan::tag_only(false, 0);
        plan.critical.push(MemOp::compound(
            MemTarget::Stacked,
            self.slot_addr(index),
            fc_types::AccessKind::Read,
        ));

        if matches!(self.slots[index], Some(t) if t.tag == tag) {
            self.stats.hits += 1;
            plan.hit = true;
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Miss: the probe already happened; fetch the block serially
        // from off-chip memory and fill the slot.
        self.stats.misses += 1;
        plan.critical
            .push(MemOp::read(MemTarget::OffChip, block.base(), 1));
        if let Some(victim) = self.slots[index].replace(Tad { tag, dirty: false }) {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.dirty_evictions += 1;
                plan.background.push(MemOp::write(
                    MemTarget::OffChip,
                    self.block_of(index, victim.tag).base(),
                    1,
                ));
            }
        }
        self.stats.fill_blocks += 1;
        plan.background.push(MemOp::compound(
            MemTarget::Stacked,
            self.slot_addr(index),
            fc_types::AccessKind::Write,
        ));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let block = addr.block();
        let (index, tag) = self.decompose(block);
        let mut plan = AccessPlan::tag_only(false, 0);
        match &mut self.slots[index] {
            Some(t) if t.tag == tag => {
                t.dirty = true;
                plan.hit = true;
                plan.background.push(MemOp::compound(
                    MemTarget::Stacked,
                    self.slot_addr(index),
                    fc_types::AccessKind::Write,
                ));
            }
            _ => {
                // Not cached: write through without allocating.
                plan.background
                    .push(MemOp::write(MemTarget::OffChip, block.base(), 1));
            }
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        // Tags live in the stacked DRAM: no logic-die SRAM at all.
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Alloy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::OpFlavor;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    fn small() -> AlloyCache {
        AlloyCache::new(1 << 20)
    }

    #[test]
    fn every_access_is_a_compound_stacked_probe() {
        let mut c = small();
        let miss = c.access(read(0x10000));
        assert!(!miss.hit);
        assert_eq!(miss.critical[0].flavor, OpFlavor::CompoundTags);
        assert_eq!(miss.critical[0].target, MemTarget::Stacked);
        assert_eq!(miss.offchip_read_blocks(), 1);

        let hit = c.access(read(0x10000));
        assert!(hit.hit);
        assert_eq!(hit.critical.len(), 1);
        assert_eq!(hit.critical[0].flavor, OpFlavor::CompoundTags);
        assert_eq!(hit.offchip_read_blocks(), 0);
    }

    #[test]
    fn conflicting_block_evicts_direct_mapped_victim() {
        let mut c = small();
        let tads = c.slots.len() as u64;
        c.access(read(0));
        c.writeback(PhysAddr::new(0)); // dirty the resident block
        let plan = c.access(read(tads * 64)); // same slot, different tag
        assert!(!plan.hit);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(plan.offchip_write_blocks(), 1);
        // The original block is gone.
        assert!(!c.access(read(0)).hit);
    }

    #[test]
    fn writeback_to_absent_block_goes_off_chip() {
        let mut c = small();
        let wb = c.writeback(PhysAddr::new(0x9000));
        assert!(!wb.hit);
        assert_eq!(wb.offchip_write_blocks(), 1);
        assert_eq!(wb.stacked_write_blocks(), 0);
    }

    #[test]
    fn slots_pack_28_tads_per_row() {
        let c = small();
        assert_eq!(c.slot_addr(0).raw(), 0);
        assert_eq!(c.slot_addr(27).raw(), 27 * 72);
        assert_eq!(c.slot_addr(28).raw(), 2048);
    }

    #[test]
    fn no_sram_storage() {
        assert!(small().storage().is_empty());
    }
}
