//! A generic set-associative container with true-LRU replacement.
//!
//! This one structure backs the L2 model, every DRAM-cache tag array, the
//! MissMap and the Footprint History Table: they differ only in what they
//! store per entry and how they index/tag addresses.

use serde::{Deserialize, Serialize};

/// A set-associative array mapping `(set, tag)` keys to values of type
/// `V`, with least-recently-used replacement inside each set.
///
/// # Examples
///
/// ```
/// use fc_cache::SetAssoc;
///
/// let mut cache: SetAssoc<u32> = SetAssoc::new(2, 2);
/// assert!(cache.insert(0, 10, 100).is_none());
/// assert!(cache.insert(0, 20, 200).is_none());
/// // Touch tag 10 so tag 20 becomes the LRU victim.
/// assert_eq!(cache.get(0, 10), Some(&mut 100));
/// let evicted = cache.insert(0, 30, 300).unwrap();
/// assert_eq!(evicted, (20, 200));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetAssoc<V> {
    sets: usize,
    ways: usize,
    entries: Vec<Option<Entry<V>>>,
    stamp: u64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Entry<V> {
    tag: u64,
    lru: u64,
    value: V,
}

impl<V> SetAssoc<V> {
    /// Creates an empty array of `sets` sets with `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be positive");
        let mut entries = Vec::new();
        entries.resize_with(sets * ways, || None);
        Self {
            sets,
            ways,
            entries,
            stamp: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    #[inline]
    fn set_range(&self, set: usize) -> core::ops::Range<usize> {
        debug_assert!(set < self.sets, "set {set} out of range {}", self.sets);
        let base = set * self.ways;
        base..base + self.ways
    }

    /// Looks up `(set, tag)`, updating LRU on hit.
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(set);
        self.entries[range]
            .iter_mut()
            .flatten()
            .find(|e| e.tag == tag)
            .map(|e| {
                e.lru = stamp;
                &mut e.value
            })
    }

    /// Looks up `(set, tag)` without touching LRU state.
    pub fn peek(&self, set: usize, tag: u64) -> Option<&V> {
        let range = self.set_range(set);
        self.entries[range]
            .iter()
            .flatten()
            .find(|e| e.tag == tag)
            .map(|e| &e.value)
    }

    /// Mutable lookup of `(set, tag)` without touching LRU state (e.g.,
    /// aging a replacement-candidate's counter must not refresh its
    /// recency).
    pub fn peek_mut(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        let range = self.set_range(set);
        self.entries[range]
            .iter_mut()
            .flatten()
            .find(|e| e.tag == tag)
            .map(|e| &mut e.value)
    }

    /// Inserts `(set, tag) -> value` as most-recently-used. If the tag is
    /// already present, its value is replaced and returned as
    /// `Some((tag, old))`. If the set is full, the LRU victim is evicted
    /// and returned. Returns `None` if an empty way absorbed the insert.
    pub fn insert(&mut self, set: usize, tag: u64, value: V) -> Option<(u64, V)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(set);

        // Tag already present: replace in place.
        if let Some(e) = self.entries[range.clone()]
            .iter_mut()
            .flatten()
            .find(|e| e.tag == tag)
        {
            e.lru = stamp;
            let old = core::mem::replace(&mut e.value, value);
            return Some((tag, old));
        }

        // Empty way.
        if let Some(slot) = self.entries[range.clone()].iter_mut().find(|e| e.is_none()) {
            *slot = Some(Entry {
                tag,
                lru: stamp,
                value,
            });
            return None;
        }

        // Evict the LRU entry.
        let victim_idx = range
            .clone()
            .min_by_key(|&i| self.entries[i].as_ref().map(|e| e.lru).unwrap_or(0))
            .expect("non-empty range");
        let victim = self.entries[victim_idx]
            .replace(Entry {
                tag,
                lru: stamp,
                value,
            })
            .expect("victim way is full");
        Some((victim.tag, victim.value))
    }

    /// Removes `(set, tag)` and returns its value.
    pub fn remove(&mut self, set: usize, tag: u64) -> Option<V> {
        let range = self.set_range(set);
        for i in range {
            if matches!(&self.entries[i], Some(e) if e.tag == tag) {
                return self.entries[i].take().map(|e| e.value);
            }
        }
        None
    }

    /// The LRU victim of a set, if the set is full: the entry that would
    /// be evicted by the next insert of a new tag.
    pub fn victim(&self, set: usize) -> Option<(u64, &V)> {
        let range = self.set_range(set);
        if self.entries[range.clone()].iter().any(|e| e.is_none()) {
            return None;
        }
        range
            .min_by_key(|&i| self.entries[i].as_ref().map(|e| e.lru).unwrap_or(0))
            .and_then(|i| self.entries[i].as_ref().map(|e| (e.tag, &e.value)))
    }

    /// Iterates over `(tag, value)` pairs of one set.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (u64, &V)> {
        self.entries[self.set_range(set)]
            .iter()
            .flatten()
            .map(|e| (e.tag, &e.value))
    }

    /// Iterates over all `(set, tag, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &V)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| e.as_ref().map(|e| (i / self.ways, e.tag, &e.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove() {
        let mut c: SetAssoc<&str> = SetAssoc::new(4, 2);
        assert!(c.insert(1, 7, "a").is_none());
        assert_eq!(c.get(1, 7), Some(&mut "a"));
        assert_eq!(c.peek(1, 7), Some(&"a"));
        assert_eq!(c.remove(1, 7), Some("a"));
        assert!(c.get(1, 7).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut c: SetAssoc<u8> = SetAssoc::new(1, 2);
        c.insert(0, 5, 1);
        let old = c.insert(0, 5, 2);
        assert_eq!(old, Some((5, 1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: SetAssoc<u8> = SetAssoc::new(1, 3);
        c.insert(0, 1, 10);
        c.insert(0, 2, 20);
        c.insert(0, 3, 30);
        // Access order now 1 < 2 < 3; touch 1 so 2 is LRU.
        c.get(0, 1);
        assert_eq!(c.victim(0).map(|(t, _)| t), Some(2));
        let evicted = c.insert(0, 4, 40);
        assert_eq!(evicted, Some((2, 20)));
    }

    #[test]
    fn victim_none_when_set_has_space() {
        let mut c: SetAssoc<u8> = SetAssoc::new(1, 2);
        c.insert(0, 1, 1);
        assert!(c.victim(0).is_none());
    }

    #[test]
    fn sets_are_independent() {
        let mut c: SetAssoc<u8> = SetAssoc::new(2, 1);
        c.insert(0, 1, 1);
        c.insert(1, 1, 2);
        assert_eq!(c.peek(0, 1), Some(&1));
        assert_eq!(c.peek(1, 1), Some(&2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ways_rejected() {
        SetAssoc::<u8>::new(4, 0);
    }

    /// Reference model: per-set association list with explicit LRU order.
    #[derive(Default)]
    struct RefSet {
        // front = MRU
        order: Vec<(u64, u32)>,
    }

    proptest! {
        /// Against a straightforward reference model, the container agrees
        /// on hits, evictions, and occupancy for arbitrary op sequences.
        #[test]
        fn matches_reference_model(
            ops in proptest::collection::vec((0u64..12, any::<bool>()), 1..200)
        ) {
            const WAYS: usize = 4;
            let mut sut: SetAssoc<u32> = SetAssoc::new(1, WAYS);
            let mut reference = RefSet::default();
            let mut payload = 0u32;

            for (tag, is_insert) in ops {
                payload += 1;
                if is_insert {
                    let evicted = sut.insert(0, tag, payload);
                    // Reference insert.
                    if let Some(pos) = reference.order.iter().position(|(t, _)| *t == tag) {
                        let old = reference.order.remove(pos);
                        reference.order.insert(0, (tag, payload));
                        prop_assert_eq!(evicted, Some(old));
                    } else if reference.order.len() == WAYS {
                        let victim = reference.order.pop().expect("full");
                        reference.order.insert(0, (tag, payload));
                        prop_assert_eq!(evicted, Some(victim));
                    } else {
                        reference.order.insert(0, (tag, payload));
                        prop_assert!(evicted.is_none());
                    }
                } else {
                    let hit = sut.get(0, tag).copied();
                    let ref_hit = reference.order.iter().position(|(t, _)| *t == tag);
                    match ref_hit {
                        Some(pos) => {
                            let e = reference.order.remove(pos);
                            reference.order.insert(0, e);
                            prop_assert_eq!(hit, Some(e.1));
                        }
                        None => prop_assert!(hit.is_none()),
                    }
                }
                prop_assert_eq!(sut.len(), reference.order.len());
                prop_assert!(sut.len() <= WAYS);
            }
        }

        /// Occupancy never exceeds capacity with many sets.
        #[test]
        fn capacity_respected(
            ops in proptest::collection::vec((0usize..8, 0u64..64), 1..300)
        ) {
            let mut c: SetAssoc<()> = SetAssoc::new(8, 2);
            let mut model: HashMap<usize, std::collections::HashSet<u64>> = HashMap::new();
            for (set, tag) in ops {
                c.insert(set, tag, ());
                model.entry(set).or_default().insert(tag);
            }
            prop_assert!(c.len() <= c.capacity());
            for set in 0..8 {
                prop_assert!(c.iter_set(set).count() <= 2);
            }
        }
    }
}
