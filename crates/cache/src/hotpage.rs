//! A CHOP-style hot-page filter cache (Jiang et al. [13], evaluated in
//! Section 6.7): only pages predicted *hot* — those whose off-chip access
//! count reaches a threshold — are allocated and fetched at page
//! granularity; cold pages bypass the cache block by block.
//!
//! The paper finds this approach ineffective for scale-out workloads:
//! their vast, uniformly accessed datasets mean even an ideal replacement
//! policy needs >1 GB to cover 80% of accesses (Figure 12). The
//! implementation here lets the reproduction make the same measurement.

use fc_types::{Footprint, MemAccess, PageAddr, PageGeometry, PhysAddr};

use crate::design::{sram_latency_cycles, DramCacheModel, DramCacheStats, StorageItem};
use crate::page::PAGE_WAYS;
use crate::plan::{AccessPlan, MemOp, MemTarget};
use crate::setassoc::SetAssoc;

/// Bits per filter-table entry (page tag + saturating counter).
const FILTER_ENTRY_BITS: u64 = 32;
/// Bits per page tag entry.
const TAG_ENTRY_BITS: u64 = 56;

#[derive(Clone, Copy, Debug, Default)]
struct PageInfo {
    touched: Footprint,
    dirty: Footprint,
}

/// A hot-page filter DRAM cache.
///
/// # Examples
///
/// ```
/// use fc_cache::{DramCacheModel, HotPageCache};
/// use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
///
/// let mut cache = HotPageCache::new(64 << 20, PageGeometry::new(4096), 2);
/// let a = MemAccess::read(Pc::new(1), PhysAddr::new(0x8000), 0);
/// // The first access bypasses (the page is not yet hot)...
/// assert!(cache.access(a).bypass);
/// // ...the second reaches the threshold, allocating the page.
/// assert!(!cache.access(a).bypass);
/// assert!(cache.access(a).hit);
/// ```
#[derive(Clone, Debug)]
pub struct HotPageCache {
    tags: SetAssoc<PageInfo>,
    filter: SetAssoc<u32>,
    threshold: u32,
    geom: PageGeometry,
    tag_latency: u32,
    stats: DramCacheStats,
}

impl HotPageCache {
    /// Number of filter-table entries (page access counters).
    const FILTER_ENTRIES: usize = 64 * 1024;

    /// Creates a hot-page cache of `capacity_bytes`. A page is declared
    /// hot — and allocated — once `threshold` off-chip accesses have been
    /// observed for it. The paper's CHOP evaluation uses 4 KB pages.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than 16 pages or
    /// `threshold == 0`.
    pub fn new(capacity_bytes: u64, geom: PageGeometry, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        let pages = (capacity_bytes / geom.page_size() as u64) as usize;
        assert!(pages >= PAGE_WAYS, "capacity must hold at least 16 pages");
        let tag_latency = sram_latency_cycles(pages as u64 * TAG_ENTRY_BITS / 8);
        Self {
            tags: SetAssoc::new(pages / PAGE_WAYS, PAGE_WAYS),
            filter: SetAssoc::new(Self::FILTER_ENTRIES / 16, 16),
            threshold,
            geom,
            tag_latency,
            stats: DramCacheStats::default(),
        }
    }

    fn decompose(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.tags.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    fn slot_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let slot = set as u64 * PAGE_WAYS as u64 + tag % PAGE_WAYS as u64;
        PhysAddr::new(slot * self.geom.page_size() as u64)
    }

    /// Bumps the page's access counter; returns true once hot.
    fn observe(&mut self, page: PageAddr) -> bool {
        let fsets = self.filter.sets() as u64;
        let (fset, ftag) = ((page.raw() % fsets) as usize, page.raw() / fsets);
        match self.filter.get(fset, ftag) {
            Some(count) => {
                *count += 1;
                *count >= self.threshold
            }
            None => {
                self.filter.insert(fset, ftag, 1);
                self.threshold <= 1
            }
        }
    }
}

impl DramCacheModel for HotPageCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);

        if let Some(info) = self.tags.get(set, tag) {
            info.touched.insert(offset);
            self.stats.hits += 1;
            plan.hit = true;
            plan.critical
                .push(MemOp::read(MemTarget::Stacked, self.slot_addr(set, tag), 1));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        self.stats.misses += 1;
        if !self.observe(page) {
            // Cold page: bypass block by block, no allocation.
            self.stats.bypasses += 1;
            plan.bypass = true;
            plan.critical
                .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Hot page: allocate and fetch whole page.
        let blocks = self.geom.blocks_per_page() as u32;
        plan.critical.push(MemOp::read(
            MemTarget::OffChip,
            self.geom.page_base(page),
            blocks,
        ));
        let mut info = PageInfo::default();
        info.touched.insert(offset);
        if let Some((victim_tag, victim)) = self.tags.insert(set, tag, info) {
            self.stats.evictions += 1;
            self.stats.density.record(victim.touched.len());
            if !victim.dirty.is_empty() {
                self.stats.dirty_evictions += 1;
                let sets = self.tags.sets() as u64;
                let victim_page = PageAddr::new(victim_tag * sets + set as u64);
                plan.background.push(MemOp::read(
                    MemTarget::Stacked,
                    self.slot_addr(set, victim_tag),
                    blocks,
                ));
                plan.background.push(MemOp::write(
                    MemTarget::OffChip,
                    self.geom.page_base(victim_page),
                    blocks,
                ));
            }
        }
        self.stats.fill_blocks += blocks as u64;
        plan.background.push(MemOp::write(
            MemTarget::Stacked,
            self.slot_addr(set, tag),
            blocks,
        ));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);
        if let Some(info) = self.tags.get(set, tag) {
            info.dirty.insert(offset);
            plan.hit = true;
            plan.background.push(MemOp::write(
                MemTarget::Stacked,
                self.slot_addr(set, tag),
                1,
            ));
        } else {
            plan.background
                .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        vec![
            StorageItem {
                name: "page tags",
                bytes: self.tags.capacity() as u64 * TAG_ENTRY_BITS / 8,
                latency_cycles: self.tag_latency,
            },
            StorageItem {
                name: "hot-page filter",
                bytes: Self::FILTER_ENTRIES as u64 * FILTER_ENTRY_BITS / 8,
                latency_cycles: sram_latency_cycles(
                    Self::FILTER_ENTRIES as u64 * FILTER_ENTRY_BITS / 8,
                ),
            },
        ]
    }

    fn name(&self) -> &'static str {
        "Hot-page (CHOP)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    #[test]
    fn cold_pages_bypass_without_allocation() {
        let mut c = HotPageCache::new(1 << 20, PageGeometry::new(4096), 3);
        for _ in 0..2 {
            let plan = c.access(read(0x10000));
            assert!(plan.bypass);
            assert_eq!(plan.offchip_read_blocks(), 1);
        }
        assert_eq!(c.stats().bypasses, 2);
        assert_eq!(c.stats().fill_blocks, 0);
    }

    #[test]
    fn hot_page_allocates_whole_page() {
        let mut c = HotPageCache::new(1 << 20, PageGeometry::new(4096), 2);
        c.access(read(0x10000));
        let plan = c.access(read(0x10040)); // second access: hot
        assert!(!plan.bypass);
        assert_eq!(plan.offchip_read_blocks(), 64);
        assert!(c.access(read(0x10000)).hit);
    }

    #[test]
    fn threshold_one_allocates_immediately() {
        let mut c = HotPageCache::new(1 << 20, PageGeometry::new(4096), 1);
        let plan = c.access(read(0x20000));
        assert!(!plan.bypass);
        assert!(c.access(read(0x20000)).hit);
    }

    #[test]
    fn storage_includes_filter() {
        let c = HotPageCache::new(64 << 20, PageGeometry::new(4096), 2);
        let items = c.storage();
        assert_eq!(items.len(), 2);
        assert!(items.iter().any(|i| i.name == "hot-page filter"));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        HotPageCache::new(1 << 20, PageGeometry::new(4096), 0);
    }
}
