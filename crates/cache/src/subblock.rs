//! The sub-blocked (sectored) cache: allocates page-granularity tags but
//! fetches every block on demand. Section 3.1 uses it as the
//! zero-overprediction / maximum-underprediction extreme: every demanded
//! block of a page costs one miss.

use fc_types::{BlockStateVec, MemAccess, PageAddr, PageGeometry, PhysAddr};

use crate::design::{sram_latency_cycles, DramCacheModel, DramCacheStats, StorageItem};
use crate::page::PAGE_WAYS;
use crate::plan::{AccessPlan, MemOp, MemTarget, OpList};
use crate::setassoc::SetAssoc;

/// Bits per entry: page tag + valid/dirty bit vectors (32+32) + LRU.
const TAG_ENTRY_BITS: u64 = 120;

/// A sectored page cache: page tags, demand-fetched blocks.
///
/// # Examples
///
/// ```
/// use fc_cache::{DramCacheModel, SubBlockCache};
/// use fc_types::{MemAccess, PageGeometry, PhysAddr, Pc};
///
/// let mut cache = SubBlockCache::new(64 << 20, PageGeometry::new(2048));
/// let a = MemAccess::read(Pc::new(1), PhysAddr::new(0x4000), 0);
/// assert!(!cache.access(a).hit);  // page miss
/// // A different block of the now-allocated page still misses
/// // (sub-miss): that is the underprediction cost.
/// let b = MemAccess::read(Pc::new(1), PhysAddr::new(0x4040), 0);
/// assert!(!cache.access(b).hit);
/// // But the first block is now resident.
/// assert!(cache.access(a).hit);
/// ```
#[derive(Clone, Debug)]
pub struct SubBlockCache {
    tags: SetAssoc<BlockStateVec>,
    geom: PageGeometry,
    tag_latency: u32,
    stats: DramCacheStats,
}

impl SubBlockCache {
    /// Creates a sub-blocked cache of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than 16 pages.
    pub fn new(capacity_bytes: u64, geom: PageGeometry) -> Self {
        let pages = (capacity_bytes / geom.page_size() as u64) as usize;
        assert!(pages >= PAGE_WAYS, "capacity must hold at least 16 pages");
        let tag_latency = sram_latency_cycles(pages as u64 * TAG_ENTRY_BITS / 8);
        Self {
            tags: SetAssoc::new(pages / PAGE_WAYS, PAGE_WAYS),
            geom,
            tag_latency,
            stats: DramCacheStats::default(),
        }
    }

    fn decompose(&self, page: PageAddr) -> (usize, u64) {
        let sets = self.tags.sets() as u64;
        ((page.raw() % sets) as usize, page.raw() / sets)
    }

    fn slot_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let slot = set as u64 * PAGE_WAYS as u64 + tag % PAGE_WAYS as u64;
        PhysAddr::new(slot * self.geom.page_size() as u64)
    }

    fn evict(&mut self, set: usize, victim_tag: u64, states: BlockStateVec, bg: &mut OpList) {
        self.stats.evictions += 1;
        self.stats.density.record(states.demanded().len());
        let dirty = states.dirty();
        if dirty.is_empty() {
            return;
        }
        self.stats.dirty_evictions += 1;
        let sets = self.tags.sets() as u64;
        let victim_page = PageAddr::new(victim_tag * sets + set as u64);
        bg.push(MemOp::read(
            MemTarget::Stacked,
            self.slot_addr(set, victim_tag),
            dirty.len() as u32,
        ));
        bg.push(MemOp::write(
            MemTarget::OffChip,
            self.geom.page_base(victim_page),
            dirty.len() as u32,
        ));
    }
}

impl DramCacheModel for SubBlockCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);

        if let Some(states) = self.tags.get(set, tag) {
            if states.state(offset).is_present() {
                states.demand_read(offset);
                self.stats.hits += 1;
                plan.hit = true;
                plan.critical
                    .push(MemOp::read(MemTarget::Stacked, self.slot_addr(set, tag), 1));
                self.stats.absorb_plan(&plan);
                return plan;
            }
            // Sub-miss: page allocated, block absent.
            states.demand_read(offset);
            self.stats.misses += 1;
            plan.critical
                .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
            self.stats.fill_blocks += 1;
            plan.background.push(MemOp::write(
                MemTarget::Stacked,
                self.slot_addr(set, tag),
                1,
            ));
            self.stats.absorb_plan(&plan);
            return plan;
        }

        // Page miss: allocate the tag, fetch only the demanded block.
        self.stats.misses += 1;
        plan.critical
            .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
        let mut states = BlockStateVec::new();
        states.demand_read(offset);
        if let Some((victim_tag, victim)) = self.tags.insert(set, tag, states) {
            let mut bg = OpList::new();
            self.evict(set, victim_tag, victim, &mut bg);
            plan.background.append(&mut bg);
        }
        self.stats.fill_blocks += 1;
        plan.background.push(MemOp::write(
            MemTarget::Stacked,
            self.slot_addr(set, tag),
            1,
        ));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        let mut plan = AccessPlan::tag_only(false, self.tag_latency);
        match self.tags.get(set, tag) {
            Some(states) if states.state(offset).is_present() => {
                states.demand_write(offset);
                plan.hit = true;
                plan.background.push(MemOp::write(
                    MemTarget::Stacked,
                    self.slot_addr(set, tag),
                    1,
                ));
            }
            _ => {
                plan.background
                    .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
            }
        }
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    // Warmup-only update path: the exact state transitions and
    // statistics of `access`/`writeback` without constructing the
    // `AccessPlan`'s op vectors (the only heap work on this design's
    // hot path). The sampled simulator's functional mode calls these
    // once per fast-forwarded record, so the savings compound.
    //
    // Invariant (enforced by `warm_path_matches_detailed_path` below):
    // a cache driven by the warm methods is indistinguishable — tags,
    // replacement order, block states, and every counter — from one
    // driven by the plan-building methods.

    fn warm_access(&mut self, req: MemAccess) {
        self.stats.accesses += 1;
        let page = self.geom.page_of(req.addr);
        let offset = self.geom.block_offset(req.addr);
        let (set, tag) = self.decompose(page);
        if let Some(states) = self.tags.get(set, tag) {
            if states.state(offset).is_present() {
                states.demand_read(offset);
                self.stats.hits += 1;
                self.stats.stacked_read_blocks += 1;
                return;
            }
            // Sub-miss: page allocated, block absent.
            states.demand_read(offset);
            self.stats.misses += 1;
            self.stats.offchip_read_blocks += 1;
            self.stats.fill_blocks += 1;
            self.stats.stacked_write_blocks += 1;
            return;
        }
        // Page miss: allocate the tag, fetch only the demanded block.
        self.stats.misses += 1;
        self.stats.offchip_read_blocks += 1;
        let mut states = BlockStateVec::new();
        states.demand_read(offset);
        if let Some((_victim_tag, victim)) = self.tags.insert(set, tag, states) {
            self.stats.evictions += 1;
            self.stats.density.record(victim.demanded().len());
            let dirty = victim.dirty();
            if !dirty.is_empty() {
                self.stats.dirty_evictions += 1;
                self.stats.stacked_read_blocks += dirty.len() as u64;
                self.stats.offchip_write_blocks += dirty.len() as u64;
            }
        }
        self.stats.fill_blocks += 1;
        self.stats.stacked_write_blocks += 1;
    }

    fn warm_writeback(&mut self, addr: PhysAddr) {
        let page = self.geom.page_of(addr);
        let offset = self.geom.block_offset(addr);
        let (set, tag) = self.decompose(page);
        match self.tags.get(set, tag) {
            Some(states) if states.state(offset).is_present() => {
                states.demand_write(offset);
                self.stats.stacked_write_blocks += 1;
            }
            _ => {
                self.stats.offchip_write_blocks += 1;
            }
        }
    }

    fn storage(&self) -> Vec<StorageItem> {
        let bytes = self.tags.capacity() as u64 * TAG_ENTRY_BITS / 8;
        vec![StorageItem {
            name: "sub-blocked tags",
            bytes,
            latency_cycles: self.tag_latency,
        }]
    }

    fn name(&self) -> &'static str {
        "Sub-blocked"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    fn cache() -> SubBlockCache {
        SubBlockCache::new(1 << 20, PageGeometry::new(2048))
    }

    #[test]
    fn every_new_block_misses_once() {
        let mut c = cache();
        for b in 0..8u64 {
            let plan = c.access(read(b * 64));
            assert!(!plan.hit, "block {b} must sub-miss");
            assert_eq!(plan.offchip_read_blocks(), 1);
        }
        for b in 0..8u64 {
            assert!(c.access(read(b * 64)).hit);
        }
        assert_eq!(c.stats().misses, 8);
        assert_eq!(c.stats().hits, 8);
    }

    #[test]
    fn fetches_exactly_demanded_blocks() {
        let mut c = cache();
        c.access(read(0));
        c.access(read(64));
        // Only 2 blocks moved off-chip: zero overprediction by definition.
        assert_eq!(c.stats().offchip_read_blocks, 2);
        assert_eq!(c.stats().fill_blocks, 2);
    }

    #[test]
    fn eviction_writes_only_dirty_blocks() {
        let mut c = cache();
        let sets = c.tags.sets() as u64;
        c.access(read(0));
        c.access(read(64));
        c.writeback(PhysAddr::new(0)); // one dirty block
        for i in 1..=PAGE_WAYS as u64 {
            c.access(read(i * sets * 2048));
        }
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().offchip_write_blocks, 1);
    }

    #[test]
    fn warm_path_matches_detailed_path() {
        // The warmup-only update path must leave the cache — tags,
        // replacement order, block states, and every statistic —
        // exactly where the plan-building path would.
        let mut detailed = cache();
        let mut warm = cache();
        // A mixed stream with reuse, sub-misses, conflict evictions
        // and dirty pages (addresses stride the set index).
        let mut addr = 0x40u64;
        for i in 0..4_000u64 {
            addr = addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (addr >> 16) % (64 << 20);
            if i % 3 == 0 {
                let _ = detailed.writeback(PhysAddr::new(a));
                warm.warm_writeback(PhysAddr::new(a));
            } else {
                let req = MemAccess::read(Pc::new(0x400), PhysAddr::new(a), 0);
                let _ = detailed.access(req);
                warm.warm_access(req);
            }
        }
        assert_eq!(detailed.stats(), warm.stats());
        // Replacement state must agree too: the same probe stream
        // produces identical plans afterwards.
        for probe in (0..64u64).map(|i| i * 0x10040) {
            let req = MemAccess::read(Pc::new(0x400), PhysAddr::new(probe), 0);
            assert_eq!(detailed.access(req), warm.access(req));
        }
    }

    #[test]
    fn density_counts_demanded_blocks() {
        let mut c = cache();
        let sets = c.tags.sets() as u64;
        c.access(read(0));
        c.access(read(64));
        c.access(read(128));
        for i in 1..=PAGE_WAYS as u64 {
            c.access(read(i * sets * 2048));
        }
        assert_eq!(c.stats().density.bins()[1], 1); // 3 blocks -> 2-3 bin
    }
}
