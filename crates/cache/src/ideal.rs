//! The two ends of the design space: the *Ideal* cache (never misses, no
//! tag overhead — effectively die-stacked main memory, the upper bound in
//! Figures 6 and 7) and *NoCache* (the baseline system without a
//! die-stacked cache, the normalization point of every figure).

use fc_types::{MemAccess, PhysAddr};

use crate::design::{DramCacheModel, DramCacheStats, StorageItem};
use crate::plan::{AccessPlan, MemOp, MemTarget};

/// A cache that always hits with zero tag latency: the "Ideal" series of
/// Figures 6/7 (a die-stacked main memory).
///
/// # Examples
///
/// ```
/// use fc_cache::{DramCacheModel, IdealCache};
/// use fc_types::{MemAccess, PhysAddr, Pc};
///
/// let mut ideal = IdealCache::new();
/// let plan = ideal.access(MemAccess::read(Pc::new(1), PhysAddr::new(0x1000), 0));
/// assert!(plan.hit);
/// assert_eq!(plan.offchip_read_blocks(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IdealCache {
    stats: DramCacheStats,
}

impl IdealCache {
    /// Creates an ideal cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DramCacheModel for IdealCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        self.stats.hits += 1;
        let mut plan = AccessPlan::tag_only(true, 0);
        plan.critical
            .push(MemOp::read(MemTarget::Stacked, req.addr.block().base(), 1));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let mut plan = AccessPlan::tag_only(true, 0);
        plan.background
            .push(MemOp::write(MemTarget::Stacked, addr.block().base(), 1));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Ideal"
    }
}

/// The baseline system: no die-stacked cache, every L2 miss goes off-chip.
///
/// # Examples
///
/// ```
/// use fc_cache::{DramCacheModel, NoCache};
/// use fc_types::{MemAccess, PhysAddr, Pc};
///
/// let mut base = NoCache::new();
/// let plan = base.access(MemAccess::read(Pc::new(1), PhysAddr::new(0x1000), 0));
/// assert!(!plan.hit);
/// assert_eq!(plan.offchip_read_blocks(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NoCache {
    stats: DramCacheStats,
}

impl NoCache {
    /// Creates the baseline memory path.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DramCacheModel for NoCache {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        self.stats.accesses += 1;
        self.stats.misses += 1;
        let mut plan = AccessPlan::tag_only(false, 0);
        plan.critical
            .push(MemOp::read(MemTarget::OffChip, req.addr.block().base(), 1));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        let mut plan = AccessPlan::tag_only(false, 0);
        plan.background
            .push(MemOp::write(MemTarget::OffChip, addr.block().base(), 1));
        self.stats.absorb_plan(&plan);
        plan
    }

    fn stats(&self) -> &DramCacheStats {
        &self.stats
    }

    fn storage(&self) -> Vec<StorageItem> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::Pc;

    #[test]
    fn ideal_never_misses() {
        let mut c = IdealCache::new();
        for i in 0..100u64 {
            let plan = c.access(MemAccess::read(Pc::new(1), PhysAddr::new(i * 64), 0));
            assert!(plan.hit);
        }
        assert_eq!(c.stats().miss_ratio(), 0.0);
        assert_eq!(c.stats().offchip_read_blocks, 0);
        assert!(c.storage().is_empty());
    }

    #[test]
    fn baseline_never_hits() {
        let mut c = NoCache::new();
        for i in 0..100u64 {
            let plan = c.access(MemAccess::read(Pc::new(1), PhysAddr::new(i * 64), 0));
            assert!(!plan.hit);
        }
        assert_eq!(c.stats().miss_ratio(), 1.0);
        assert_eq!(c.stats().offchip_read_blocks, 100);
    }

    #[test]
    fn baseline_writebacks_go_off_chip() {
        let mut c = NoCache::new();
        c.writeback(PhysAddr::new(0x40));
        assert_eq!(c.stats().offchip_write_blocks, 1);
    }

    #[test]
    fn ideal_writebacks_stay_on_chip() {
        let mut c = IdealCache::new();
        c.writeback(PhysAddr::new(0x40));
        assert_eq!(c.stats().offchip_write_blocks, 0);
        assert_eq!(c.stats().stacked_write_blocks, 1);
    }
}
