//! The memory system: a DRAM cache design plus the stacked and off-chip
//! DRAM timing models, glued together by the plan executor behind an
//! MSHR-style outstanding-request window.

use fc_cache::{AccessPlan, DramCacheModel, MemOp, MemTarget, OpFlavor};
use fc_dram::{BoundedQueue, DramConfig, DramStats, DramSystem, EnergyBreakdown};
use fc_types::{MemAccess, PhysAddr, BLOCK_SIZE};

use crate::model::DesignModel;

/// The MSHR-style outstanding-request window shared by every requester
/// below the L2: demand accesses, fills, and writebacks each occupy one
/// entry from acceptance until their last DRAM operation completes.
/// Admission rides on [`BoundedQueue`] — the same max-plus FIFO-release
/// recurrence the channel request queues use — with stall accounting on
/// top, so completion times stay exactly monotone in arrival times.
#[derive(Clone, Debug)]
struct RequestWindow {
    queue: BoundedQueue,
    stall_cycles: u64,
    admissions: u64,
}

impl RequestWindow {
    fn new(capacity: usize) -> Self {
        Self {
            queue: BoundedQueue::new(capacity),
            stall_cycles: 0,
            admissions: 0,
        }
    }

    /// Admits a request arriving at `at`; returns when it may start.
    fn admit(&mut self, at: u64) -> u64 {
        self.admissions += 1;
        let start = self.queue.admit(at);
        self.stall_cycles += start - at;
        start
    }

    /// Records the admitted request's final completion time.
    fn retire(&mut self, done: u64) {
        self.queue.push(done);
    }

    /// Forgets in-flight completions (checkpoint quiescing); the
    /// stall/admission counters are kept.
    fn quiesce(&mut self) {
        self.queue.reset();
    }
}

/// Per-interval memory-system time series, compiled in only with
/// `detailed-stats`: the DRAM-cache hit ratio and the
/// outstanding-window occupancy, sampled every
/// [`MemsysTimeline::WINDOW`] demand accesses. A zero-cost no-op in
/// default builds.
#[derive(Clone, Debug, Default)]
pub struct MemsysTimeline {
    #[cfg(feature = "detailed-stats")]
    inner: MemsysTimelineInner,
}

#[cfg(feature = "detailed-stats")]
#[derive(Clone, Debug, Default)]
struct MemsysTimelineInner {
    total: u64,
    last_hits: u64,
    last_accesses: u64,
    hit_ratio: fc_obs::TimeSeries,
    occupancy: fc_obs::TimeSeries,
}

impl MemsysTimeline {
    /// Demand accesses per sampling window.
    pub const WINDOW: u64 = 1024;

    /// Records one demand access; `stats` are the design's cumulative
    /// counters and `outstanding` the window occupancy at issue time.
    #[inline]
    fn tick(&mut self, stats: &fc_cache::DramCacheStats, outstanding: usize) {
        #[cfg(feature = "detailed-stats")]
        {
            let inner = &mut self.inner;
            inner.total += 1;
            if inner.total.is_multiple_of(Self::WINDOW) {
                let accesses = stats.accesses - inner.last_accesses;
                let hits = stats.hits - inner.last_hits;
                if accesses > 0 {
                    inner
                        .hit_ratio
                        .push(inner.total, hits as f64 / accesses as f64);
                }
                inner.occupancy.push(inner.total, outstanding as f64);
                inner.last_accesses = stats.accesses;
                inner.last_hits = stats.hits;
            }
        }
        #[cfg(not(feature = "detailed-stats"))]
        {
            let _ = (stats, outstanding);
        }
    }

    /// Publishes the accumulated series under `{prefix}.hit_ratio`
    /// and `{prefix}.window_occupancy` (nothing in default builds).
    pub fn publish(&self, prefix: &str) {
        #[cfg(feature = "detailed-stats")]
        {
            fc_obs::series::publish(format!("{prefix}.hit_ratio"), &self.inner.hit_ratio);
            fc_obs::series::publish(format!("{prefix}.window_occupancy"), &self.inner.occupancy);
        }
        #[cfg(not(feature = "detailed-stats"))]
        {
            let _ = prefix;
        }
    }
}

/// A complete pod memory system below the L2.
#[derive(Clone)]
pub struct MemorySystem {
    /// Enum-dispatched on the hot path ([`DesignModel`]); boxed dyn
    /// models enter through its `Extension` variant.
    cache: DesignModel,
    stacked: Option<DramSystem>,
    offchip: DramSystem,
    window: RequestWindow,
    timeline: MemsysTimeline,
}

impl MemorySystem {
    /// Default outstanding-request window capacity: enough for every
    /// core's MSHRs to overlap under light load, small enough that a
    /// saturated pod queues (Table 3's 16 cores x 8 MSHRs halved).
    pub const DEFAULT_WINDOW: usize = 64;

    /// Assembles a memory system. `stacked` is `None` for the baseline
    /// (no die-stacked DRAM). Accepts anything convertible into a
    /// [`DesignModel`]: a concrete model (`FootprintCache::new(cfg)`,
    /// enum-dispatched) or a [`fc_cache::BoxedModel`] (dyn-dispatched
    /// through the extension hatch).
    pub fn new(
        cache: impl Into<DesignModel>,
        stacked: Option<DramConfig>,
        offchip: DramConfig,
    ) -> Self {
        Self {
            cache: cache.into(),
            stacked: stacked.map(DramSystem::new),
            offchip: DramSystem::new(offchip),
            window: RequestWindow::new(Self::DEFAULT_WINDOW),
            timeline: MemsysTimeline::default(),
        }
    }

    /// Resizes the outstanding-request window (builder-style).
    pub fn with_window(mut self, capacity: usize) -> Self {
        self.window = RequestWindow::new(capacity);
        self
    }

    /// Cycles requests spent stalled on a full outstanding window.
    pub fn window_stall_cycles(&self) -> u64 {
        self.window.stall_cycles
    }

    /// Requests admitted through the outstanding window.
    pub fn window_admissions(&self) -> u64 {
        self.window.admissions
    }

    /// The cache design.
    pub fn cache(&self) -> &(dyn DramCacheModel + Send + Sync) {
        self.cache.as_dyn()
    }

    /// Off-chip DRAM counters.
    pub fn offchip_stats(&self) -> DramStats {
        self.offchip.stats()
    }

    /// Off-chip DRAM dynamic energy.
    pub fn offchip_energy(&self) -> EnergyBreakdown {
        self.offchip.energy()
    }

    /// Stacked DRAM counters (zeros for the baseline).
    pub fn stacked_stats(&self) -> DramStats {
        self.stacked.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Stacked DRAM dynamic energy (zeros for the baseline).
    pub fn stacked_energy(&self) -> EnergyBreakdown {
        self.stacked
            .as_ref()
            .map(|s| s.energy())
            .unwrap_or_default()
    }

    /// A demand access arriving at cycle `at`; returns the cycle the
    /// requested block is available to the L2. The request first claims
    /// an outstanding-window entry (stalling when the window is full),
    /// which it holds until its last DRAM operation — demand, fill, or
    /// eviction traffic — completes.
    pub fn demand_access(&mut self, req: MemAccess, at: u64) -> u64 {
        let plan = self.cache.access(req);
        let start = self.window.admit(at);
        let (ready, done) = self.execute(&plan, start);
        self.window.retire(done);
        self.timeline
            .tick(self.cache.stats(), self.window.queue.outstanding_at(at));
        ready
    }

    /// Functional-warmup demand access: the cache design applies its
    /// full state transition (tags, replacement, predictor, counters)
    /// but no DRAM operation is timed — channels, queues and energy are
    /// untouched. Used by sampled simulation to fast-forward between
    /// detailed intervals while keeping every capacity structure warm.
    pub fn warm_access(&mut self, req: MemAccess) {
        self.cache.warm_access(req);
    }

    /// Functional-warmup counterpart of [`writeback`](Self::writeback):
    /// dirty state moves, no DRAM timing happens.
    pub fn warm_writeback(&mut self, addr: PhysAddr) {
        self.cache.warm_writeback(addr);
    }

    /// Quiesces all timing state below the L2: the outstanding-request
    /// window and every DRAM channel's bank/bus/queue reservations
    /// reset to their freshly built values. Capacity state (the cache
    /// design's tags, metadata, predictors) and every monotone counter
    /// are untouched. Part of the checkpoint contract: a memory system
    /// driven only through the `warm_*` paths is already quiesced, so
    /// quiescing there is a no-op.
    pub fn quiesce(&mut self) {
        self.window.quiesce();
        if let Some(stacked) = &mut self.stacked {
            stacked.quiesce();
        }
        self.offchip.quiesce();
    }

    /// An L2 dirty-victim writeback arriving at cycle `at` (never stalls
    /// the core; charged to banks/energy only — but it does occupy an
    /// outstanding-window entry, so writeback bursts apply backpressure
    /// to concurrent demand traffic).
    pub fn writeback(&mut self, addr: PhysAddr, at: u64) {
        let plan = self.cache.writeback(addr);
        let start = self.window.admit(at);
        let (_, done) = self.execute(&plan, start);
        self.window.retire(done);
    }

    /// Publishes every `detailed-stats` timeline this memory system
    /// accumulated — its own hit-ratio/occupancy series plus each DRAM
    /// channel's — under `{prefix}.*`. A no-op in default builds.
    pub fn publish_timelines(&self, prefix: &str) {
        if !fc_obs::series::enabled() {
            return;
        }
        self.timeline.publish(&format!("{prefix}.memsys"));
        if let Some(stacked) = &self.stacked {
            stacked.publish_timelines(&format!("{prefix}.stacked"));
        }
        self.offchip.publish_timelines(&format!("{prefix}.offchip"));
    }

    /// Executes a plan: critical ops serialize starting after the tag
    /// lookup and determine the returned critical completion; background
    /// ops start concurrently at the same point. Returns `(critical,
    /// last)`: the critical-path data-ready cycle and the cycle the last
    /// op (background traffic included) finishes transferring.
    fn execute(&mut self, plan: &AccessPlan, at: u64) -> (u64, u64) {
        let start = at + plan.tag_latency as u64;
        let mut t = start;
        let mut last = start;
        for op in &plan.critical {
            let (ready, done) = self.run_op(op, t);
            t = ready;
            last = last.max(done);
        }
        for op in &plan.background {
            let (_, done) = self.run_op(op, start);
            last = last.max(done);
        }
        (t, last)
    }

    /// Runs one op, splitting multi-row transfers at row boundaries.
    /// The row size comes from the target DRAM's configuration, so
    /// designs with non-2 KB row geometries split correctly. Returns
    /// when the *first* block's data is available (critical-block-first
    /// for demand fetches) and when the op's last block has moved.
    fn run_op(&mut self, op: &MemOp, at: u64) -> (u64, u64) {
        let sys = match op.target {
            MemTarget::Stacked => self
                .stacked
                .as_mut()
                .expect("design issued a stacked op but no stacked DRAM is configured"),
            MemTarget::OffChip => &mut self.offchip,
        };
        let row_bytes = sys.config().row_bytes();
        let row_blocks = (row_bytes / BLOCK_SIZE as u64) as u32;
        // First chunk: up to the end of the addressed row.
        let offset_blocks = ((op.addr.raw() % row_bytes) / BLOCK_SIZE as u64) as u32;
        let first_chunk = op
            .blocks
            .min(row_blocks - offset_blocks.min(row_blocks - 1));
        let completion = match op.flavor {
            OpFlavor::CompoundTags => sys.access_compound(op.addr, op.kind, first_chunk, at),
            OpFlavor::Simple => sys.access(op.addr, op.kind, first_chunk, at),
        };
        // Remaining rows (e.g., a 4 KB page spans two 2 KB rows):
        // streamed after the first chunk, off the critical path of the
        // demanded block. Each tail chunk issues when the previous
        // chunk's transfer completes — issuing them all at the op's
        // arrival would claim channel-queue slots and bank timing the
        // data cannot actually use yet.
        let mut last_done = completion.done;
        let mut remaining = op.blocks - first_chunk;
        let mut addr = op.addr.raw() + first_chunk as u64 * BLOCK_SIZE as u64;
        while remaining > 0 {
            let chunk = remaining.min(row_blocks);
            let c = sys.access(PhysAddr::new(addr), op.kind, chunk, last_done);
            debug_assert!(c.done > last_done, "chained chunk must finish later");
            last_done = c.done;
            addr += chunk as u64 * BLOCK_SIZE as u64;
            remaining -= chunk;
        }
        (completion.data_ready, last_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_cache::{NoCache, PageBasedCache};
    use fc_types::{PageGeometry, Pc};

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    #[test]
    fn baseline_access_pays_offchip_latency() {
        let mut m = MemorySystem::new(
            Box::new(NoCache::new()),
            None,
            DramConfig::off_chip_ddr3_1600(),
        );
        let done = m.demand_access(read(0x8000), 1000);
        // At least ACT + CAS + burst beyond arrival.
        let t = DramConfig::off_chip_ddr3_1600().timings.to_core_cycles();
        assert!(done >= 1000 + t.miss_read());
        assert_eq!(m.offchip_stats().read_blocks, 1);
        assert_eq!(m.stacked_stats().read_blocks, 0);
    }

    #[test]
    fn page_hit_is_faster_than_page_miss() {
        let mut m = MemorySystem::new(
            Box::new(PageBasedCache::new(1 << 20, PageGeometry::new(2048))),
            Some(DramConfig::stacked_ddr3_3200()),
            DramConfig::off_chip_open_row(),
        );
        let miss_done = m.demand_access(read(0x8000), 0);
        let miss_latency = miss_done;
        let hit_start = miss_done + 10_000; // let fills drain
        let hit_done = m.demand_access(read(0x8040), hit_start);
        let hit_latency = hit_done - hit_start;
        assert!(
            hit_latency < miss_latency,
            "hit {hit_latency} vs miss {miss_latency}"
        );
        // The page fill moved 32 blocks off-chip and into the stack.
        assert_eq!(m.offchip_stats().read_blocks, 32);
        assert_eq!(m.stacked_stats().write_blocks, 32);
    }

    #[test]
    fn writebacks_do_not_return_latency_but_consume_banks() {
        let mut m = MemorySystem::new(
            Box::new(NoCache::new()),
            None,
            DramConfig::off_chip_ddr3_1600(),
        );
        m.writeback(PhysAddr::new(0x9000), 0);
        assert_eq!(m.offchip_stats().write_blocks, 1);
    }

    #[test]
    fn multi_row_transfer_splits() {
        // A 64-block (4 KB) op must become two row accesses.
        let mut m = MemorySystem::new(
            Box::new(PageBasedCache::new(1 << 20, PageGeometry::new(4096))),
            Some(DramConfig::stacked_ddr3_3200()),
            DramConfig::off_chip_open_row(),
        );
        m.demand_access(read(0x10000), 0);
        assert_eq!(m.offchip_stats().read_blocks, 64);
        // Two activations for the two off-chip rows of the 4 KB page.
        assert_eq!(m.offchip_stats().activates, 2);
    }

    #[test]
    fn tail_row_chunks_stream_after_the_previous_chunk() {
        // Regression: tail chunks of a multi-row transfer used to be
        // issued at the op's arrival cycle, despite the "streamed after
        // the first chunk" contract. Chained issue means the chunks
        // arrive one at a time and never wait in the channel queue
        // behind each other.
        let mut m = MemorySystem::new(
            Box::new(PageBasedCache::new(1 << 20, PageGeometry::new(4096))),
            Some(DramConfig::stacked_ddr3_3200()),
            DramConfig::off_chip_open_row(),
        );
        m.demand_access(read(0x10000), 0);
        // The 4 KB page fill moved 64 blocks in two 2 KB row chunks.
        assert_eq!(m.offchip_stats().read_blocks, 64);
        assert_eq!(m.offchip_stats().activates, 2);
        // Chained issue: each chunk arrives only once its predecessor
        // is done, so the otherwise-idle off-chip queue never delays.
        assert_eq!(
            m.offchip_stats().queue_delay_cycles,
            0,
            "tail chunks issued at arrival queue behind each other"
        );
    }

    #[test]
    fn tail_chunk_chain_orders_completions() {
        // Directly assert the ordering contract on run_op: the op's
        // last chunk completes after the first chunk's data is ready,
        // by at least the tail chunks' transfer time.
        use fc_cache::{MemOp, MemTarget, OpFlavor};
        let mut m = MemorySystem::new(
            Box::new(NoCache::new()),
            None,
            DramConfig::off_chip_open_row(),
        );
        let op = MemOp {
            target: MemTarget::OffChip,
            addr: PhysAddr::new(0x20000),
            kind: fc_types::AccessKind::Read,
            blocks: 96, // three 2 KB rows
            flavor: OpFlavor::Simple,
        };
        let (ready, last) = m.run_op(&op, 1000);
        let t = DramConfig::off_chip_open_row().timings.to_core_cycles();
        // Two tail rows, each chained strictly after its predecessor:
        // each contributes at least a 32-block burst.
        assert!(
            last >= ready + 2 * 32 * t.t_burst,
            "last {last} vs ready {ready}"
        );
    }

    #[test]
    fn row_size_derives_from_the_target_config() {
        // Off-chip DRAM with 4 KB rows: a whole 4 KB page transfer is a
        // single activation, not the two a hardcoded 2 KB split would
        // produce.
        use fc_dram::AddressMapping;
        let wide_rows = DramConfig {
            mapping: AddressMapping::RowInterleave {
                channel_bits: 0,
                bank_bits: 3,
                row_shift: 12,
            },
            ..DramConfig::off_chip_open_row()
        };
        assert_eq!(wide_rows.row_bytes(), 4096);
        let mut m = MemorySystem::new(
            Box::new(PageBasedCache::new(1 << 20, PageGeometry::new(4096))),
            Some(DramConfig::stacked_ddr3_3200()),
            wide_rows,
        );
        m.demand_access(read(0x10000), 0);
        assert_eq!(m.offchip_stats().read_blocks, 64);
        assert_eq!(m.offchip_stats().activates, 1, "one 4 KB row, one ACT");
    }

    #[test]
    fn full_window_applies_backpressure() {
        let build = |window| {
            MemorySystem::new(
                Box::new(NoCache::new()),
                None,
                DramConfig::off_chip_ddr3_1600(),
            )
            .with_window(window)
        };
        // Many same-cycle independent misses: with a one-entry window
        // they serialize; with a wide window they overlap across banks.
        let mut narrow = build(1);
        let mut wide = build(64);
        let mut narrow_done = 0;
        let mut wide_done = 0;
        for i in 0..8u64 {
            narrow_done = narrow.demand_access(read(0x10000 + i * 64), 0);
            wide_done = wide.demand_access(read(0x10000 + i * 64), 0);
        }
        assert!(
            narrow_done > wide_done,
            "narrow {narrow_done} must trail wide {wide_done}"
        );
        assert!(narrow.window_stall_cycles() > 0);
        assert_eq!(narrow.window_admissions(), 8);
        assert_eq!(wide.window_stall_cycles(), 0);
    }

    #[test]
    fn writebacks_occupy_window_entries() {
        let mut m = MemorySystem::new(
            Box::new(NoCache::new()),
            None,
            DramConfig::off_chip_ddr3_1600(),
        )
        .with_window(1);
        m.writeback(PhysAddr::new(0x9000), 0);
        // The demand access behind the writeback stalls on the window.
        m.demand_access(read(0x8000), 0);
        assert!(m.window_stall_cycles() > 0);
        assert_eq!(m.window_admissions(), 2);
    }

    #[test]
    #[should_panic(expected = "no stacked DRAM")]
    fn stacked_op_without_stacked_dram_panics() {
        let mut m = MemorySystem::new(
            Box::new(PageBasedCache::new(1 << 20, PageGeometry::new(2048))),
            None,
            DramConfig::off_chip_open_row(),
        );
        m.demand_access(read(0x8000), 0);
    }
}
