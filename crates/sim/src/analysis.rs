//! Trace-level analyses that need no timing model.
//!
//! * [`coverage_curve`] — Figure 12: the minimum *ideal* cache size (MB)
//!   needed to capture a given fraction of accesses, assuming a perfect
//!   predictor and ideal replacement: count accesses per 4 KB page, sort
//!   descending, accumulate.
//! * [`page_density`] — a standalone density measurement (Figure 4 uses
//!   the cache-eviction histograms, but tests use this to validate the
//!   generators).
//!
//! Per-page accumulators live in a [`PageArena`] behind dense handles —
//! the same index-chased storage the cache layer uses — built from one
//! sort of the reference stream, so neither analysis keeps a hash map
//! keyed by page id.

use fc_cache::{PageArena, PageHandle};
use fc_trace::TraceRecord;
use fc_types::PageGeometry;

/// Per-page accumulator: demand count plus the touched-block bitmask.
#[derive(Clone, Copy, Debug, Default)]
struct PageAccum {
    count: u64,
    mask: u64,
}

/// Folds a record stream into one arena slot per distinct page.
///
/// One pass extracts `(page, block-offset)` pairs, a sort groups them
/// into per-page runs, and each run accumulates through its arena
/// handle — page ids are compared, never hashed. Returns the arena and
/// the total reference count.
fn per_page_accumulate<I: IntoIterator<Item = TraceRecord>>(
    records: I,
    geom: PageGeometry,
) -> (PageArena<PageAccum>, u64) {
    let mut refs: Vec<(u64, u8)> = records
        .into_iter()
        .map(|r| (geom.page_of(r.addr).raw(), geom.block_offset(r.addr) as u8))
        .collect();
    let total = refs.len() as u64;
    refs.sort_unstable();
    let mut arena = PageArena::new();
    let mut run: Option<(u64, PageHandle)> = None;
    for (page, offset) in refs {
        let handle = match run {
            Some((p, h)) if p == page => h,
            _ => {
                let h = arena.insert(PageAccum::default());
                run = Some((page, h));
                h
            }
        };
        let acc = arena.get_mut(handle).expect("handle from this arena");
        acc.count += 1;
        acc.mask |= 1u64 << offset;
    }
    (arena, total)
}

/// Points of Figure 12: for each requested coverage fraction, the ideal
/// cache size in MB needed to capture that fraction of accesses with
/// `page_size`-byte pages.
pub fn coverage_curve<I: IntoIterator<Item = TraceRecord>>(
    records: I,
    page_size: usize,
    fractions: &[f64],
) -> Vec<(f64, f64)> {
    let (arena, total) = per_page_accumulate(records, PageGeometry::new(page_size));
    let mut per_page: Vec<u64> = arena.iter().map(|acc| acc.count).collect();
    per_page.sort_unstable_by(|a, b| b.cmp(a));

    let mut out = Vec::with_capacity(fractions.len());
    for &f in fractions {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0,1]");
        let want = (f * total as f64).ceil() as u64;
        let mut seen = 0u64;
        let mut pages = 0u64;
        for &c in &per_page {
            if seen >= want {
                break;
            }
            seen += c;
            pages += 1;
        }
        let mb = pages as f64 * page_size as f64 / (1 << 20) as f64;
        out.push((f, mb));
    }
    out
}

/// Histogram of unique-block counts per touched page over a record
/// window: a residency-free upper bound on page density used to sanity-
/// check workload generators.
pub fn page_density<I: IntoIterator<Item = TraceRecord>>(
    records: I,
    page_size: usize,
) -> fc_cache::DensityHistogram {
    let (arena, _) = per_page_accumulate(records, PageGeometry::new(page_size));
    let mut hist = fc_cache::DensityHistogram::default();
    for acc in arena.iter() {
        hist.record(acc.mask.count_ones() as usize);
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::{AccessKind, Pc, PhysAddr};

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord {
            pc: Pc::new(0),
            addr: PhysAddr::new(addr),
            kind: AccessKind::Read,
            core: 0,
            inst_gap: 1,
        }
    }

    #[test]
    fn coverage_counts_hot_pages_first() {
        // Page 0 gets 8 accesses, pages 1..=8 one each: 50% coverage needs
        // just page 0 (8 of 16 accesses).
        let mut records = vec![rec(0); 8];
        for p in 1..=8u64 {
            records.push(rec(p * 4096));
        }
        let curve = coverage_curve(records, 4096, &[0.5, 1.0]);
        assert_eq!(curve[0].1, 4096.0 / (1 << 20) as f64);
        assert_eq!(curve[1].1, 9.0 * 4096.0 / (1 << 20) as f64);
    }

    #[test]
    fn coverage_is_monotone() {
        let records: Vec<_> = (0..1000u64)
            .map(|i| rec((i % 37) * 4096 * (i % 5 + 1)))
            .collect();
        let curve = coverage_curve(records, 4096, &[0.2, 0.4, 0.6, 0.8]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "coverage curve must be monotone");
        }
    }

    #[test]
    fn density_counts_unique_blocks() {
        let records = vec![rec(0), rec(64), rec(64), rec(128), rec(2048)];
        let hist = page_density(records, 2048);
        // Page 0: blocks {0,1,2} -> 2-3 bin; page 1: one block.
        assert_eq!(hist.bins()[1], 1);
        assert_eq!(hist.bins()[0], 1);
    }

    #[test]
    fn one_arena_slot_per_distinct_page() {
        // Interleaved revisits of three pages must not open new slots.
        let records = vec![rec(0), rec(4096), rec(0), rec(8192), rec(4096), rec(0)];
        let (arena, total) = per_page_accumulate(records, PageGeometry::new(4096));
        assert_eq!(arena.len(), 3);
        assert_eq!(total, 6);
        assert_eq!(arena.iter().map(|a| a.count).sum::<u64>(), 6);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        coverage_curve(vec![rec(0)], 4096, &[1.5]);
    }
}
