//! Trace-level analyses that need no timing model.
//!
//! * [`coverage_curve`] — Figure 12: the minimum *ideal* cache size (MB)
//!   needed to capture a given fraction of accesses, assuming a perfect
//!   predictor and ideal replacement: count accesses per 4 KB page, sort
//!   descending, accumulate.
//! * [`page_density`] — a standalone density measurement (Figure 4 uses
//!   the cache-eviction histograms, but tests use this to validate the
//!   generators).

use std::collections::HashMap;

use fc_trace::TraceRecord;
use fc_types::{FnvBuildHasher, PageGeometry};

/// Points of Figure 12: for each requested coverage fraction, the ideal
/// cache size in MB needed to capture that fraction of accesses with
/// `page_size`-byte pages.
pub fn coverage_curve<I: IntoIterator<Item = TraceRecord>>(
    records: I,
    page_size: usize,
    fractions: &[f64],
) -> Vec<(f64, f64)> {
    let geom = PageGeometry::new(page_size);
    // FNV-keyed: this map is hit once per record, and page numbers come
    // from the simulation itself, so the cheap non-DoS-resistant hash
    // is the right trade.
    let mut counts: HashMap<u64, u64, FnvBuildHasher> = HashMap::default();
    let mut total: u64 = 0;
    for r in records {
        *counts.entry(geom.page_of(r.addr).raw()).or_default() += 1;
        total += 1;
    }
    let mut per_page: Vec<u64> = counts.into_values().collect();
    per_page.sort_unstable_by(|a, b| b.cmp(a));

    let mut out = Vec::with_capacity(fractions.len());
    for &f in fractions {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0,1]");
        let want = (f * total as f64).ceil() as u64;
        let mut seen = 0u64;
        let mut pages = 0u64;
        for &c in &per_page {
            if seen >= want {
                break;
            }
            seen += c;
            pages += 1;
        }
        let mb = pages as f64 * page_size as f64 / (1 << 20) as f64;
        out.push((f, mb));
    }
    out
}

/// Histogram of unique-block counts per touched page over a record
/// window: a residency-free upper bound on page density used to sanity-
/// check workload generators.
pub fn page_density<I: IntoIterator<Item = TraceRecord>>(
    records: I,
    page_size: usize,
) -> fc_cache::DensityHistogram {
    let geom = PageGeometry::new(page_size);
    let mut touched: HashMap<u64, u64, FnvBuildHasher> = HashMap::default();
    for r in records {
        let page = geom.page_of(r.addr).raw();
        let offset = geom.block_offset(r.addr);
        *touched.entry(page).or_default() |= 1u64 << offset;
    }
    let mut hist = fc_cache::DensityHistogram::default();
    for bits in touched.values() {
        hist.record(bits.count_ones() as usize);
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::{AccessKind, Pc, PhysAddr};

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord {
            pc: Pc::new(0),
            addr: PhysAddr::new(addr),
            kind: AccessKind::Read,
            core: 0,
            inst_gap: 1,
        }
    }

    #[test]
    fn coverage_counts_hot_pages_first() {
        // Page 0 gets 8 accesses, pages 1..=8 one each: 50% coverage needs
        // just page 0 (8 of 16 accesses).
        let mut records = vec![rec(0); 8];
        for p in 1..=8u64 {
            records.push(rec(p * 4096));
        }
        let curve = coverage_curve(records, 4096, &[0.5, 1.0]);
        assert_eq!(curve[0].1, 4096.0 / (1 << 20) as f64);
        assert_eq!(curve[1].1, 9.0 * 4096.0 / (1 << 20) as f64);
    }

    #[test]
    fn coverage_is_monotone() {
        let records: Vec<_> = (0..1000u64)
            .map(|i| rec((i % 37) * 4096 * (i % 5 + 1)))
            .collect();
        let curve = coverage_curve(records, 4096, &[0.2, 0.4, 0.6, 0.8]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "coverage curve must be monotone");
        }
    }

    #[test]
    fn density_counts_unique_blocks() {
        let records = vec![rec(0), rec(64), rec(64), rec(128), rec(2048)];
        let hist = page_density(records, 2048);
        // Page 0: blocks {0,1,2} -> 2-3 bin; page 1: one block.
        assert_eq!(hist.bins()[1], 1);
        assert_eq!(hist.bins()[0], 1);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        coverage_curve(vec![rec(0)], 4096, &[1.5]);
    }
}
