//! Columnar record batches for the detailed hot loop.
//!
//! The measured portion of a run replays millions of [`TraceRecord`]s.
//! Batching them per interval into structure-of-arrays buffers keeps
//! the replay loop streaming over dense, homogeneous columns
//! (addresses, PCs, kinds, cores, gaps) instead of pointer-hopping an
//! iterator one record at a time, and gives the engine one place to
//! amortize per-record overhead ([`Simulation::step_batch`]
//! (crate::Simulation::step_batch)). A batch is plain data: filling it
//! from a slice and replaying it is bit-identical to stepping the same
//! records one by one.

use fc_trace::TraceRecord;
use fc_types::{AccessKind, CoreId, Pc, PhysAddr};

/// Default records per batch: big enough to amortize loop overhead,
/// small enough that all five columns stay cache-resident (~100 KB).
pub const BATCH_RECORDS: usize = 4096;

/// A structure-of-arrays batch of trace records.
#[derive(Clone, Debug, Default)]
pub struct RecordBatch {
    pcs: Vec<Pc>,
    addrs: Vec<PhysAddr>,
    kinds: Vec<AccessKind>,
    cores: Vec<CoreId>,
    gaps: Vec<u32>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `capacity` records per column.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            pcs: Vec::with_capacity(capacity),
            addrs: Vec::with_capacity(capacity),
            kinds: Vec::with_capacity(capacity),
            cores: Vec::with_capacity(capacity),
            gaps: Vec::with_capacity(capacity),
        }
    }

    /// Columnarizes a record slice in one pass.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut batch = Self::with_capacity(records.len());
        batch.extend(records);
        batch
    }

    /// Appends one record to every column.
    #[inline]
    pub fn push(&mut self, r: &TraceRecord) {
        self.pcs.push(r.pc);
        self.addrs.push(r.addr);
        self.kinds.push(r.kind);
        self.cores.push(r.core);
        self.gaps.push(r.inst_gap);
    }

    /// Appends a record slice to every column.
    pub fn extend(&mut self, records: &[TraceRecord]) {
        self.pcs.extend(records.iter().map(|r| r.pc));
        self.addrs.extend(records.iter().map(|r| r.addr));
        self.kinds.extend(records.iter().map(|r| r.kind));
        self.cores.extend(records.iter().map(|r| r.core));
        self.gaps.extend(records.iter().map(|r| r.inst_gap));
    }

    /// Empties every column, keeping capacity (the reuse idiom for
    /// chunked replay).
    pub fn clear(&mut self) {
        self.pcs.clear();
        self.addrs.clear();
        self.kinds.clear();
        self.cores.clear();
        self.gaps.clear();
    }

    /// Number of batched records.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Reassembles record `i` from the columns.
    #[inline]
    pub fn record(&self, i: usize) -> TraceRecord {
        TraceRecord {
            pc: self.pcs[i],
            addr: self.addrs[i],
            kind: self.kinds[i],
            core: self.cores[i],
            inst_gap: self.gaps[i],
        }
    }

    /// Iterates the batch as reassembled records.
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                pc: Pc::new(0x400 + i * 4),
                addr: PhysAddr::new(i * 0x940),
                kind: if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                core: (i % 16) as CoreId,
                inst_gap: (i % 100 + 1) as u32,
            })
            .collect()
    }

    #[test]
    fn columnarize_round_trips_records() {
        let rs = records(257);
        let batch = RecordBatch::from_records(&rs);
        assert_eq!(batch.len(), rs.len());
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(batch.record(i), *r);
        }
        let back: Vec<TraceRecord> = batch.iter().collect();
        assert_eq!(back, rs);
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let rs = records(100);
        let mut batch = RecordBatch::from_records(&rs);
        let cap = batch.addrs.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.addrs.capacity(), cap);
        batch.extend(&rs[..10]);
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.record(0), rs[0]);
    }
}
