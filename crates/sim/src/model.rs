//! [`DesignModel`]: the closed enum over every registry design.
//!
//! The detailed hot loop used to reach cache models exclusively through
//! `Box<dyn DramCacheModel>` — one indirect call per access, per
//! writeback, per warmup touch. Wrapping the concrete models in an enum
//! lets the batch loop dispatch via `match`: the compiler monomorphizes
//! each arm into a direct (often inlined) call, and the memory system
//! stores the model by value with no pointer chase. The boxed trait
//! object survives as the [`Extension`](DesignModel::Extension) escape
//! hatch so out-of-tree models still plug in at registry boundaries —
//! they simply keep paying the vtable cost the in-tree designs no
//! longer do.

use fc_cache::{
    AccessPlan, AlloyCache, BansheeCache, BlockBasedCache, BoxedModel, DramCacheModel,
    DramCacheStats, GeminiCache, HotPageCache, IdealCache, NoCache, PageBasedCache,
    PredictionCounters, StorageItem, SubBlockCache,
};
use fc_types::{MemAccess, PhysAddr};
use footprint_cache::FootprintCache;

/// One DRAM-cache design, enum-dispatched.
///
/// Every in-tree design gets its own variant (match dispatch on the hot
/// path); anything else enters through [`DesignModel::Extension`] and
/// keeps dynamic dispatch. Construct variants with the `From` impls —
/// `FootprintCache::new(config).into()` — or from any boxed model.
#[derive(Clone)]
pub enum DesignModel {
    /// No DRAM cache (the baseline pod).
    Baseline(NoCache),
    /// Die-stacked main memory: never misses.
    Ideal(IdealCache),
    /// Loh & Hill block-based cache with MissMap.
    Block(BlockBasedCache),
    /// Page-based cache (whole-page fetch).
    Page(PageBasedCache),
    /// Footprint Cache (the paper's design).
    Footprint(Box<FootprintCache>),
    /// Sub-blocked (sectored) cache.
    SubBlock(SubBlockCache),
    /// CHOP-style hot-page filter cache.
    HotPage(HotPageCache),
    /// Alloy-style direct-mapped TAD cache.
    Alloy(AlloyCache),
    /// Banshee-style frequency/bandwidth-aware page cache.
    Banshee(BansheeCache),
    /// Gemini-style hybrid-mapped page cache.
    Gemini(GeminiCache),
    /// Any other [`DramCacheModel`]: the dyn-dispatch escape hatch for
    /// out-of-tree designs.
    Extension(BoxedModel),
}

/// Uniform match dispatch: every variant binds its model as `$m` and
/// evaluates `$body` (boxed variants auto-deref).
macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            DesignModel::Baseline($m) => $body,
            DesignModel::Ideal($m) => $body,
            DesignModel::Block($m) => $body,
            DesignModel::Page($m) => $body,
            DesignModel::Footprint($m) => $body,
            DesignModel::SubBlock($m) => $body,
            DesignModel::HotPage($m) => $body,
            DesignModel::Alloy($m) => $body,
            DesignModel::Banshee($m) => $body,
            DesignModel::Gemini($m) => $body,
            DesignModel::Extension($m) => $body,
        }
    };
}

impl DesignModel {
    /// The model as a trait object (introspection at non-hot
    /// boundaries: reports, storage tables, tests).
    pub fn as_dyn(&self) -> &(dyn DramCacheModel + Send + Sync) {
        match self {
            DesignModel::Baseline(m) => m,
            DesignModel::Ideal(m) => m,
            DesignModel::Block(m) => m,
            DesignModel::Page(m) => m,
            DesignModel::Footprint(m) => m.as_ref(),
            DesignModel::SubBlock(m) => m,
            DesignModel::HotPage(m) => m,
            DesignModel::Alloy(m) => m,
            DesignModel::Banshee(m) => m,
            DesignModel::Gemini(m) => m,
            DesignModel::Extension(m) => m.as_ref(),
        }
    }
}

impl DramCacheModel for DesignModel {
    fn access(&mut self, req: MemAccess) -> AccessPlan {
        dispatch!(self, m => m.access(req))
    }

    fn writeback(&mut self, addr: PhysAddr) -> AccessPlan {
        dispatch!(self, m => m.writeback(addr))
    }

    fn stats(&self) -> &DramCacheStats {
        dispatch!(self, m => m.stats())
    }

    fn storage(&self) -> Vec<StorageItem> {
        dispatch!(self, m => m.storage())
    }

    fn name(&self) -> &'static str {
        dispatch!(self, m => m.name())
    }

    fn prediction_counters(&self) -> Option<PredictionCounters> {
        dispatch!(self, m => m.prediction_counters())
    }

    fn warm_access(&mut self, req: MemAccess) {
        dispatch!(self, m => m.warm_access(req))
    }

    fn warm_writeback(&mut self, addr: PhysAddr) {
        dispatch!(self, m => m.warm_writeback(addr))
    }
}

macro_rules! from_concrete {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for DesignModel {
            fn from(model: $ty) -> Self {
                DesignModel::$variant(model)
            }
        })*
    };
}

from_concrete! {
    NoCache => Baseline,
    IdealCache => Ideal,
    BlockBasedCache => Block,
    PageBasedCache => Page,
    SubBlockCache => SubBlock,
    HotPageCache => HotPage,
    AlloyCache => Alloy,
    BansheeCache => Banshee,
    GeminiCache => Gemini,
}

impl From<FootprintCache> for DesignModel {
    fn from(model: FootprintCache) -> Self {
        // Boxed: the footprint state block is much larger than the
        // other variants; keeping it behind one pointer keeps the enum
        // itself register-sized for the common designs.
        DesignModel::Footprint(Box::new(model))
    }
}

impl From<BoxedModel> for DesignModel {
    fn from(model: BoxedModel) -> Self {
        DesignModel::Extension(model)
    }
}

/// Any boxed concrete model enters through the extension hatch — this
/// keeps long-standing `MemorySystem::new(Box::new(model), …)` call
/// sites compiling. In-tree models passed *unboxed* take their enum
/// variant instead (static dispatch); prefer that on hot paths.
impl<T: DramCacheModel + Send + Sync + 'static> From<Box<T>> for DesignModel {
    fn from(model: Box<T>) -> Self {
        DesignModel::Extension(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::{PageGeometry, Pc};

    fn read(addr: u64) -> MemAccess {
        MemAccess::read(Pc::new(0x400), PhysAddr::new(addr), 0)
    }

    #[test]
    fn enum_and_boxed_dispatch_agree() {
        let mut as_enum: DesignModel = PageBasedCache::new(1 << 20, PageGeometry::new(2048)).into();
        let mut as_box: DesignModel = DesignModel::Extension(Box::new(PageBasedCache::new(
            1 << 20,
            PageGeometry::new(2048),
        )));
        for i in 0..200u64 {
            let a = as_enum.access(read(i * 0x940));
            let b = as_box.access(read(i * 0x940));
            assert_eq!(a, b, "plan diverged at access {i}");
        }
        assert_eq!(as_enum.stats(), as_box.stats());
        assert_eq!(as_enum.name(), as_box.name());
    }

    #[test]
    fn boxed_concrete_models_enter_the_extension_hatch() {
        let model: DesignModel = Box::new(NoCache::new()).into();
        assert!(matches!(model, DesignModel::Extension(_)));
        let direct: DesignModel = NoCache::new().into();
        assert!(matches!(direct, DesignModel::Baseline(_)));
    }

    #[test]
    fn as_dyn_reaches_the_inner_model() {
        let model: DesignModel = IdealCache::new().into();
        assert_eq!(model.as_dyn().name(), IdealCache::new().name());
    }

    #[test]
    fn clone_preserves_state() {
        let mut model: DesignModel = SubBlockCache::new(1 << 20, PageGeometry::new(2048)).into();
        for i in 0..50u64 {
            model.access(read(i * 0x1000));
        }
        let snapshot = model.clone();
        assert_eq!(snapshot.stats(), model.stats());
        model.access(read(0x990000));
        assert_ne!(snapshot.stats().accesses, model.stats().accesses);
    }
}
