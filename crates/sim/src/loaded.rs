//! Loaded-latency measurement: latency-vs-injected-bandwidth curves.
//!
//! The trace-replay engine measures designs at whatever bandwidth the
//! cores happen to demand; this driver instead injects memory requests
//! at a *controlled* rate straight into the [`MemorySystem`] and
//! measures the average demand latency — the loaded-latency curve
//! memory-system papers plot (the paper's bandwidth axis, Figures 8/9
//! of the Banshee line of work). Sweeping the injection interval maps
//! out the whole curve: flat near idle, rising as channel queues and
//! the MSHR window fill, diverging at saturation.
//!
//! **Monotonicity guarantee.** Request addresses come from the same
//! fixed-seed trace at every rate, and every timing component below the
//! L2 (channel queues, banks, buses, the outstanding-request window)
//! composes arrival times with `max` and `+` only. Completion times are
//! therefore max-plus-linear in the arrival schedule: with arrivals
//! `i * interval`, each request's latency is a maximum of terms
//! `(j - i) * interval + K` with `j <= i`, which is non-increasing in
//! the interval. Average loaded latency is thus *exactly* monotone
//! non-decreasing in injected bandwidth — asserted per design family in
//! `tests/loaded_latency.rs`.

use fc_dram::DramStats;
use fc_trace::{TraceGenerator, WorkloadKind};
use fc_types::BLOCK_SIZE;

use crate::design::DesignSpec;
use crate::MemorySystem;

/// Bytes per second per (core-cycle interval of 1): a 64-byte request
/// every cycle at 3 GHz. `injected_gbs = BYTES_PER_CYCLE_GBS / interval`.
const PEAK_GBS_AT_UNIT_INTERVAL: f64 = BLOCK_SIZE as f64 * fc_dram::CORE_GHZ;

/// Sizing of one loaded-latency run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadedConfig {
    /// Workload whose access stream is injected.
    pub workload: WorkloadKind,
    /// Trace seed.
    pub seed: u64,
    /// Requests injected to warm the cache and the queues (unmeasured).
    pub warmup: u64,
    /// Requests measured.
    pub requests: u64,
    /// Cores the trace synthesizer models.
    pub cores: u8,
    /// Outstanding-request window of the memory system under test.
    pub window: usize,
}

impl LoadedConfig {
    /// A small configuration for tests (2k warmup + 2k measured).
    pub fn tiny() -> Self {
        Self {
            workload: WorkloadKind::WebSearch,
            seed: 42,
            warmup: 2_000,
            requests: 2_000,
            cores: 4,
            window: MemorySystem::DEFAULT_WINDOW,
        }
    }

    /// The sizing used by `fc_sweep --grid loaded` at quick scale.
    pub fn quick() -> Self {
        Self {
            warmup: 20_000,
            requests: 20_000,
            cores: 16,
            ..Self::tiny()
        }
    }

    /// The sizing used for checked-in loaded-latency figures.
    pub fn full() -> Self {
        Self {
            warmup: 100_000,
            requests: 200_000,
            cores: 16,
            ..Self::tiny()
        }
    }
}

/// Injection intervals (core cycles between 64-byte requests) swept by
/// the standard loaded-latency curve, descending = increasing load:
/// 2 GB/s up to the stacked channel's aggregate-class rates. Integer
/// intervals keep arrival schedules exactly linear (see the module
/// docs' monotonicity argument).
pub const STANDARD_INTERVALS: [u64; 9] = [96, 48, 24, 16, 12, 8, 6, 4, 2];

/// Converts an injection interval in cycles to GB/s of demanded data.
pub fn interval_to_gbs(interval: u64) -> f64 {
    PEAK_GBS_AT_UNIT_INTERVAL / interval as f64
}

/// One measured point of a loaded-latency curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadedPoint {
    /// Cycles between injected requests.
    pub interval: u64,
    /// Injected (offered) demand bandwidth in GB/s.
    pub injected_gbs: f64,
    /// Achieved demand bandwidth in GB/s: demanded bytes over the
    /// measured makespan. Tracks `injected_gbs` until saturation, then
    /// plateaus at the design's usable bandwidth.
    pub achieved_gbs: f64,
    /// Mean demand latency in core cycles (arrival to data ready).
    pub avg_latency: f64,
    /// Worst single-request latency in the measured window.
    pub max_latency: u64,
    /// Requests measured.
    pub requests: u64,
    /// Measured steady-state span in cycles (first measured completion
    /// to last), so warmup backlog does not pollute rate estimates.
    pub cycles: u64,
    /// Stacked-DRAM counters over the measured window.
    pub stacked: DramStats,
    /// Off-chip counters over the measured window.
    pub offchip: DramStats,
    /// Stacked channel count (for utilization normalization).
    pub stacked_channels: usize,
    /// Off-chip channel count.
    pub offchip_channels: usize,
}

impl LoadedPoint {
    /// Mean stacked-DRAM bus utilization over the measured window.
    pub fn stacked_util(&self) -> f64 {
        self.stacked
            .bus_utilization(self.cycles, self.stacked_channels)
    }

    /// Mean off-chip bus utilization over the measured window.
    pub fn offchip_util(&self) -> f64 {
        self.offchip
            .bus_utilization(self.cycles, self.offchip_channels)
    }
}

/// Measures one loaded-latency point: builds `design`'s memory system,
/// injects `cfg.warmup + cfg.requests` demand accesses from the
/// workload's fixed-seed trace at one request per `interval` cycles,
/// and reports latency/bandwidth over the measured portion.
pub fn measure(design: &DesignSpec, interval: u64, cfg: &LoadedConfig) -> LoadedPoint {
    assert!(interval > 0, "injection interval must be at least 1 cycle");
    let mut memsys = design.build().with_window(cfg.window);
    let mut generator = TraceGenerator::new(cfg.workload, cfg.cores, cfg.seed);

    for i in 0..cfg.warmup {
        let r = generator.next().expect("generator is infinite");
        memsys.demand_access(r.access(), i * interval);
    }

    let start_stacked = memsys.stacked_stats();
    let start_offchip = memsys.offchip_stats();
    let mut latency_sum = 0u128;
    let mut max_latency = 0u64;
    let mut first_ready = u64::MAX;
    let mut last_ready = 0u64;
    for i in 0..cfg.requests {
        let r = generator.next().expect("generator is infinite");
        let arrival = (cfg.warmup + i) * interval;
        let ready = memsys.demand_access(r.access(), arrival);
        let latency = ready - arrival;
        latency_sum += latency as u128;
        max_latency = max_latency.max(latency);
        // Completions are not request-ordered (hits overtake misses),
        // so the steady-state span runs from the *earliest* measured
        // completion to the latest.
        first_ready = first_ready.min(ready);
        last_ready = last_ready.max(ready);
    }

    let cycles = last_ready - first_ready.min(last_ready);
    let bytes = cfg.requests * BLOCK_SIZE as u64;
    let achieved_gbs = if cycles == 0 {
        0.0
    } else {
        bytes as f64 * fc_dram::CORE_GHZ / cycles as f64
    };
    let stacked = memsys.stacked_stats().delta_since(&start_stacked);
    let offchip = memsys.offchip_stats().delta_since(&start_offchip);
    LoadedPoint {
        interval,
        injected_gbs: interval_to_gbs(interval),
        achieved_gbs,
        avg_latency: latency_sum as f64 / cfg.requests.max(1) as f64,
        max_latency,
        requests: cfg.requests,
        cycles,
        stacked,
        offchip,
        stacked_channels: design
            .stacked
            .map(|s| s.resolve().mapping.channels())
            .unwrap_or(0),
        offchip_channels: design.offchip.resolve().mapping.channels(),
    }
}

/// Measures the whole standard curve for one design, low load first.
pub fn curve(design: &DesignSpec, cfg: &LoadedConfig) -> Vec<LoadedPoint> {
    STANDARD_INTERVALS
        .iter()
        .map(|&interval| measure(design, interval, cfg))
        .collect()
}

/// The design's usable bandwidth: the best achieved rate anywhere on a
/// measured curve (GB/s).
pub fn usable_bandwidth(curve: &[LoadedPoint]) -> f64 {
    curve.iter().map(|p| p.achieved_gbs).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_maps_to_bandwidth() {
        assert!((interval_to_gbs(96) - 2.0).abs() < 1e-9);
        assert!((interval_to_gbs(2) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn loaded_point_measures_latency_and_bandwidth() {
        let cfg = LoadedConfig::tiny();
        let p = measure(&DesignSpec::footprint(64), 96, &cfg);
        assert_eq!(p.requests, cfg.requests);
        assert!(p.avg_latency > 0.0);
        assert!(p.max_latency as f64 >= p.avg_latency);
        // Near idle the system keeps up: achieved ~ injected.
        assert!(p.achieved_gbs <= p.injected_gbs * 1.01);
        assert!(p.achieved_gbs > p.injected_gbs * 0.5);
    }

    #[test]
    fn heavier_load_never_lowers_latency() {
        let cfg = LoadedConfig::tiny();
        let light = measure(&DesignSpec::page(64), 96, &cfg);
        let heavy = measure(&DesignSpec::page(64), 4, &cfg);
        assert!(
            heavy.avg_latency >= light.avg_latency,
            "loaded latency must not drop under load: {} vs {}",
            heavy.avg_latency,
            light.avg_latency
        );
        assert!(heavy.stacked_util() >= light.stacked_util());
    }

    #[test]
    fn baseline_design_has_no_stacked_traffic() {
        let p = measure(&DesignSpec::baseline(), 48, &LoadedConfig::tiny());
        assert_eq!(p.stacked.accesses, 0);
        assert_eq!(p.stacked_channels, 0);
        assert!(p.offchip.accesses > 0);
        assert!(p.offchip_util() > 0.0);
    }

    #[test]
    fn usable_bandwidth_is_curve_maximum() {
        let pts = curve(&DesignSpec::footprint(64), &LoadedConfig::tiny());
        assert_eq!(pts.len(), STANDARD_INTERVALS.len());
        let best = usable_bandwidth(&pts);
        assert!(pts.iter().all(|p| p.achieved_gbs <= best));
        assert!(best > 0.0);
    }
}
