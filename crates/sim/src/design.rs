//! Designs as data: the serializable [`DesignSpec`] that replaces the
//! old hardcoded `DesignKind` enum.
//!
//! A spec names a cache model ([`CacheSpec`]) and the DRAM systems it
//! runs against ([`DramSpec`]: a Table 3 preset plus row-policy and
//! timing overrides). Everything downstream — sweep grids, the result
//! store's stable hashes, the CLI, the experiment harness — consumes
//! specs; adding a design means adding a [`CacheSpec`] variant and a
//! registry row (see [`registry`](crate::registry)), not editing every
//! layer.
//!
//! Specs round-trip through JSON ([`DesignSpec::to_json`] /
//! [`DesignSpec::from_json`]) so grids can be described, stored and
//! diffed outside the binary.

use fc_cache::{
    AlloyCache, BansheeCache, BlockBasedCache, GeminiCache, HotPageCache, IdealCache, NoCache,
    PageBasedCache, SubBlockCache, WritebackGranularity,
};
use fc_dram::{DramConfig, RowPolicy};
use fc_types::PageGeometry;
use footprint_cache::{FootprintCache, FootprintCacheConfig, KeyKind};
use serde::{Deserialize, Serialize};

use crate::json::{escape, JsonValue};
use crate::memsys::MemorySystem;
use crate::model::DesignModel;

/// A named DRAM configuration from Table 3 that a [`DramSpec`] starts
/// from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramPreset {
    /// One off-chip DDR3-1600 channel, closed-page, 64 B interleave.
    OffChipDdr3_1600,
    /// Off-chip DDR3-1600, open-page, 2 KB row interleave.
    OffChipOpenRow,
    /// Four stacked DDR3-3200 channels, open-page, 2 KB row interleave.
    StackedDdr3_3200,
}

impl DramPreset {
    fn resolve(self) -> DramConfig {
        match self {
            DramPreset::OffChipDdr3_1600 => DramConfig::off_chip_ddr3_1600(),
            DramPreset::OffChipOpenRow => DramConfig::off_chip_open_row(),
            DramPreset::StackedDdr3_3200 => DramConfig::stacked_ddr3_3200(),
        }
    }

    fn json_name(self) -> &'static str {
        match self {
            DramPreset::OffChipDdr3_1600 => "off-chip-ddr3-1600",
            DramPreset::OffChipOpenRow => "off-chip-open-row",
            DramPreset::StackedDdr3_3200 => "stacked-ddr3-3200",
        }
    }

    fn from_json_name(name: &str) -> Result<Self, String> {
        match name {
            "off-chip-ddr3-1600" => Ok(DramPreset::OffChipDdr3_1600),
            "off-chip-open-row" => Ok(DramPreset::OffChipOpenRow),
            "stacked-ddr3-3200" => Ok(DramPreset::StackedDdr3_3200),
            other => Err(format!("unknown DRAM preset `{other}`")),
        }
    }
}

/// One DRAM system of a design: a preset plus the per-design overrides
/// Section 5.2 applies (row-buffer policy, the ideal-low-latency
/// timing halving).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Base configuration.
    pub preset: DramPreset,
    /// Row-policy override (`None` keeps the preset's policy).
    pub policy: Option<RowPolicy>,
    /// Halve the device latency (the Figure 1 "Low-Latency" bound).
    pub halved_latency: bool,
}

impl DramSpec {
    /// A spec that uses `preset` unmodified.
    pub fn preset(preset: DramPreset) -> Self {
        Self {
            preset,
            policy: None,
            halved_latency: false,
        }
    }

    /// Overrides the row-buffer policy.
    pub fn with_policy(mut self, policy: RowPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Halves the device latency.
    pub fn with_halved_latency(mut self) -> Self {
        self.halved_latency = true;
        self
    }

    /// Materializes the [`DramConfig`].
    pub fn resolve(&self) -> DramConfig {
        let mut config = self.preset.resolve();
        if let Some(policy) = self.policy {
            config = config.with_policy(policy);
        }
        if self.halved_latency {
            config = config.with_timings(config.timings.halved_latency());
        }
        config
    }

    fn to_json(self) -> String {
        let policy = match self.policy {
            None => "null".to_string(),
            Some(RowPolicy::Open) => "\"open\"".to_string(),
            Some(RowPolicy::Closed) => "\"closed\"".to_string(),
        };
        format!(
            "{{\"preset\": \"{}\", \"policy\": {}, \"halved_latency\": {}}}",
            self.preset.json_name(),
            policy,
            self.halved_latency
        )
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let preset = DramPreset::from_json_name(v.field("preset")?.as_str()?)?;
        let policy = match v.field("policy")? {
            JsonValue::Null => None,
            other => Some(match other.as_str()? {
                "open" => RowPolicy::Open,
                "closed" => RowPolicy::Closed,
                p => return Err(format!("unknown row policy `{p}`")),
            }),
        };
        Ok(Self {
            preset,
            policy,
            halved_latency: v.field("halved_latency")?.as_bool()?,
        })
    }
}

/// The cache model of a design, with every parameter that matters to
/// the simulation. `mb` fields are stacked capacity in megabytes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CacheSpec {
    /// No DRAM cache (the baseline pod).
    None,
    /// Die-stacked main memory: never misses.
    Ideal,
    /// Loh & Hill block-based cache with MissMap.
    Block {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Page-based cache (whole-page fetch).
    Page {
        /// Stacked capacity in MB.
        mb: u64,
        /// Page size in bytes.
        page_bytes: u32,
        /// Dirty-eviction writeback granularity.
        writeback: WritebackGranularity,
    },
    /// Footprint Cache (the paper's design), fully configured.
    Footprint {
        /// Full configuration (capacity lives in `config`).
        config: FootprintCacheConfig,
    },
    /// Sub-blocked (sectored) cache: page tags, demand-block fetch.
    SubBlock {
        /// Stacked capacity in MB.
        mb: u64,
        /// Page size in bytes.
        page_bytes: u32,
    },
    /// CHOP-style hot-page filter cache.
    HotPage {
        /// Stacked capacity in MB.
        mb: u64,
        /// Page size in bytes.
        page_bytes: u32,
        /// Off-chip accesses before a page is declared hot.
        threshold: u32,
    },
    /// Alloy-style direct-mapped TAD cache (tags in DRAM, compound
    /// tag+data accesses).
    Alloy {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Banshee-style page cache with frequency-based, bandwidth-aware
    /// replacement.
    Banshee {
        /// Stacked capacity in MB.
        mb: u64,
        /// Page size in bytes.
        page_bytes: u32,
    },
    /// Gemini-style hybrid mapping: hot pages direct-mapped, cold pages
    /// set-associative.
    Gemini {
        /// Stacked capacity in MB.
        mb: u64,
        /// Page size in bytes.
        page_bytes: u32,
        /// Cold-region hits before promotion to the direct region.
        promote_hits: u32,
    },
}

impl CacheSpec {
    fn to_json(self) -> String {
        match self {
            CacheSpec::None => "{\"kind\": \"none\"}".to_string(),
            CacheSpec::Ideal => "{\"kind\": \"ideal\"}".to_string(),
            CacheSpec::Block { mb } => format!("{{\"kind\": \"block\", \"mb\": {mb}}}"),
            CacheSpec::Page {
                mb,
                page_bytes,
                writeback,
            } => format!(
                "{{\"kind\": \"page\", \"mb\": {mb}, \"page_bytes\": {page_bytes}, \
                 \"writeback\": \"{}\"}}",
                match writeback {
                    WritebackGranularity::Page => "page",
                    WritebackGranularity::DirtyBlocks => "dirty-blocks",
                }
            ),
            CacheSpec::Footprint { config } => format!(
                "{{\"kind\": \"footprint\", \"capacity_bytes\": {}, \"page_bytes\": {}, \
                 \"ways\": {}, \"fht_entries\": {}, \"fht_ways\": {}, \"st_entries\": {}, \
                 \"singleton_optimization\": {}, \"key_kind\": \"{}\"}}",
                config.capacity_bytes,
                config.geom.page_size(),
                config.ways,
                config.fht_entries,
                config.fht_ways,
                config.st_entries,
                config.singleton_optimization,
                match config.key_kind {
                    KeyKind::PcOffset => "pc-offset",
                    KeyKind::PcOnly => "pc-only",
                    KeyKind::OffsetOnly => "offset-only",
                }
            ),
            CacheSpec::SubBlock { mb, page_bytes } => {
                format!("{{\"kind\": \"subblock\", \"mb\": {mb}, \"page_bytes\": {page_bytes}}}")
            }
            CacheSpec::HotPage {
                mb,
                page_bytes,
                threshold,
            } => format!(
                "{{\"kind\": \"hotpage\", \"mb\": {mb}, \"page_bytes\": {page_bytes}, \
                 \"threshold\": {threshold}}}"
            ),
            CacheSpec::Alloy { mb } => format!("{{\"kind\": \"alloy\", \"mb\": {mb}}}"),
            CacheSpec::Banshee { mb, page_bytes } => {
                format!("{{\"kind\": \"banshee\", \"mb\": {mb}, \"page_bytes\": {page_bytes}}}")
            }
            CacheSpec::Gemini {
                mb,
                page_bytes,
                promote_hits,
            } => format!(
                "{{\"kind\": \"gemini\", \"mb\": {mb}, \"page_bytes\": {page_bytes}, \
                 \"promote_hits\": {promote_hits}}}"
            ),
        }
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let mb = || v.field("mb")?.as_u64();
        let page_bytes = || v.field("page_bytes")?.as_u32();
        match v.field("kind")?.as_str()? {
            "none" => Ok(CacheSpec::None),
            "ideal" => Ok(CacheSpec::Ideal),
            "block" => Ok(CacheSpec::Block { mb: mb()? }),
            "page" => Ok(CacheSpec::Page {
                mb: mb()?,
                page_bytes: page_bytes()?,
                writeback: match v.field("writeback")?.as_str()? {
                    "page" => WritebackGranularity::Page,
                    "dirty-blocks" => WritebackGranularity::DirtyBlocks,
                    other => return Err(format!("unknown writeback granularity `{other}`")),
                },
            }),
            "footprint" => {
                let config = FootprintCacheConfig {
                    capacity_bytes: v.field("capacity_bytes")?.as_u64()?,
                    geom: PageGeometry::new(v.field("page_bytes")?.as_usize()?),
                    ways: v.field("ways")?.as_usize()?,
                    fht_entries: v.field("fht_entries")?.as_usize()?,
                    fht_ways: v.field("fht_ways")?.as_usize()?,
                    st_entries: v.field("st_entries")?.as_usize()?,
                    singleton_optimization: v.field("singleton_optimization")?.as_bool()?,
                    key_kind: match v.field("key_kind")?.as_str()? {
                        "pc-offset" => KeyKind::PcOffset,
                        "pc-only" => KeyKind::PcOnly,
                        "offset-only" => KeyKind::OffsetOnly,
                        other => return Err(format!("unknown key kind `{other}`")),
                    },
                };
                Ok(CacheSpec::Footprint { config })
            }
            "subblock" => Ok(CacheSpec::SubBlock {
                mb: mb()?,
                page_bytes: page_bytes()?,
            }),
            "hotpage" => Ok(CacheSpec::HotPage {
                mb: mb()?,
                page_bytes: page_bytes()?,
                threshold: v.field("threshold")?.as_u32()?,
            }),
            "alloy" => Ok(CacheSpec::Alloy { mb: mb()? }),
            "banshee" => Ok(CacheSpec::Banshee {
                mb: mb()?,
                page_bytes: page_bytes()?,
            }),
            "gemini" => Ok(CacheSpec::Gemini {
                mb: mb()?,
                page_bytes: page_bytes()?,
                promote_hits: v.field("promote_hits")?.as_u32()?,
            }),
            other => Err(format!("unknown cache kind `{other}`")),
        }
    }
}

/// A complete, self-describing memory-system design: cache model plus
/// stacked and off-chip DRAM specs. This is what sweep grids enumerate,
/// the result store hashes, and [`Simulation`](crate::Simulation)
/// builds.
///
/// # Examples
///
/// ```
/// use fc_sim::DesignSpec;
///
/// let spec = DesignSpec::footprint(256);
/// assert_eq!(spec.label(), "Footprint 256MB");
/// assert_eq!(spec.capacity_mb(), Some(256));
/// let round_trip = DesignSpec::from_json(&spec.to_json()).unwrap();
/// assert_eq!(spec, round_trip);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// The DRAM cache model.
    pub cache: CacheSpec,
    /// The die-stacked DRAM (`None` for the baseline pod).
    pub stacked: Option<DramSpec>,
    /// The off-chip DRAM.
    pub offchip: DramSpec,
}

impl DesignSpec {
    /// No die-stacked DRAM: every L2 miss goes off-chip.
    pub fn baseline() -> Self {
        Self {
            cache: CacheSpec::None,
            stacked: None,
            offchip: DramSpec::preset(DramPreset::OffChipDdr3_1600),
        }
    }

    /// Loh & Hill block-based cache with MissMap (closed-page stack).
    pub fn block(mb: u64) -> Self {
        Self {
            cache: CacheSpec::Block { mb },
            stacked: Some(
                DramSpec::preset(DramPreset::StackedDdr3_3200).with_policy(RowPolicy::Closed),
            ),
            offchip: DramSpec::preset(DramPreset::OffChipDdr3_1600),
        }
    }

    /// Page-based cache (whole-page fetch and writeback).
    pub fn page(mb: u64) -> Self {
        Self {
            cache: CacheSpec::Page {
                mb,
                page_bytes: PageGeometry::default().page_size() as u32,
                writeback: WritebackGranularity::Page,
            },
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// Page-based cache that writes back only dirty blocks (ablation).
    pub fn page_dirty_wb(mb: u64) -> Self {
        let mut spec = Self::page(mb);
        if let CacheSpec::Page { writeback, .. } = &mut spec.cache {
            *writeback = WritebackGranularity::DirtyBlocks;
        }
        spec
    }

    /// Footprint Cache (the paper's design) at the paper's defaults.
    pub fn footprint(mb: u64) -> Self {
        Self::footprint_custom(FootprintCacheConfig::new(mb << 20))
    }

    /// Footprint Cache with a custom configuration (the sensitivity
    /// studies).
    pub fn footprint_custom(config: FootprintCacheConfig) -> Self {
        Self {
            cache: CacheSpec::Footprint { config },
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// The footprint key-kind ablation variant.
    pub fn footprint_with_key(mb: u64, key: KeyKind) -> Self {
        Self::footprint_custom(FootprintCacheConfig::new(mb << 20).with_key_kind(key))
    }

    /// Footprint Cache without the singleton optimization (Section 6.5).
    pub fn footprint_no_singleton(mb: u64) -> Self {
        Self::footprint_custom(
            FootprintCacheConfig::new(mb << 20).with_singleton_optimization(false),
        )
    }

    /// Sub-blocked (sectored) cache.
    pub fn subblock(mb: u64) -> Self {
        Self {
            cache: CacheSpec::SubBlock {
                mb,
                page_bytes: PageGeometry::default().page_size() as u32,
            },
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// CHOP-style hot-page filter cache (4 KB pages, hot after 2
    /// accesses — [13] finds 4 KB optimal).
    pub fn hotpage(mb: u64) -> Self {
        Self {
            cache: CacheSpec::HotPage {
                mb,
                page_bytes: 4096,
                threshold: 2,
            },
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// Alloy-style direct-mapped TAD cache: compound tag+data stacked
    /// accesses under a closed-page policy (TAD streams have no row
    /// reuse), block-granular off-chip fills.
    pub fn alloy(mb: u64) -> Self {
        Self {
            cache: CacheSpec::Alloy { mb },
            stacked: Some(
                DramSpec::preset(DramPreset::StackedDdr3_3200).with_policy(RowPolicy::Closed),
            ),
            offchip: DramSpec::preset(DramPreset::OffChipDdr3_1600),
        }
    }

    /// Banshee-style bandwidth-aware page cache.
    pub fn banshee(mb: u64) -> Self {
        Self {
            cache: CacheSpec::Banshee {
                mb,
                page_bytes: PageGeometry::default().page_size() as u32,
            },
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// Gemini-style hybrid-mapped cache (promotion after 4 cold hits).
    pub fn gemini(mb: u64) -> Self {
        Self {
            cache: CacheSpec::Gemini {
                mb,
                page_bytes: PageGeometry::default().page_size() as u32,
                promote_hits: 4,
            },
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// Die-stacked main memory: never misses (Figures 1, 6, 7 "Ideal").
    pub fn ideal() -> Self {
        Self {
            cache: CacheSpec::Ideal,
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200)),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// Die-stacked main memory with halved DRAM latency (Figure 1's
    /// "High-BW & Low-Latency").
    pub fn ideal_low_latency() -> Self {
        Self {
            cache: CacheSpec::Ideal,
            stacked: Some(DramSpec::preset(DramPreset::StackedDdr3_3200).with_halved_latency()),
            offchip: DramSpec::preset(DramPreset::OffChipOpenRow),
        }
    }

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match &self.cache {
            CacheSpec::None => "Baseline".into(),
            CacheSpec::Ideal => {
                if self.stacked.is_some_and(|s| s.halved_latency) {
                    "Ideal low-latency".into()
                } else {
                    "Ideal".into()
                }
            }
            CacheSpec::Block { mb } => format!("Block-based {mb}MB"),
            CacheSpec::Page { mb, writeback, .. } => match writeback {
                WritebackGranularity::Page => format!("Page-based {mb}MB"),
                WritebackGranularity::DirtyBlocks => format!("Page (dirty-block WB) {mb}MB"),
            },
            CacheSpec::Footprint { config } => {
                let default = FootprintCacheConfig::new(config.capacity_bytes);
                if *config == default {
                    format!("Footprint {}MB", config.capacity_bytes >> 20)
                } else {
                    format!(
                        "Footprint {}MB ({}B pages, {} FHT, {:?}{})",
                        config.capacity_bytes >> 20,
                        config.geom.page_size(),
                        config.fht_entries,
                        config.key_kind,
                        if config.singleton_optimization {
                            ""
                        } else {
                            ", no-ST"
                        }
                    )
                }
            }
            CacheSpec::SubBlock { mb, .. } => format!("Sub-blocked {mb}MB"),
            CacheSpec::HotPage { mb, .. } => format!("Hot-page {mb}MB"),
            CacheSpec::Alloy { mb } => format!("Alloy {mb}MB"),
            CacheSpec::Banshee { mb, .. } => format!("Banshee {mb}MB"),
            CacheSpec::Gemini { mb, .. } => format!("Gemini {mb}MB"),
        }
    }

    /// Stacked-DRAM capacity in MB, or `None` for capacity-independent
    /// designs (baseline, ideal). Run sizing for those lives in
    /// `fc_sweep::RunScale`, not here.
    pub fn capacity_mb(&self) -> Option<u64> {
        match &self.cache {
            CacheSpec::None | CacheSpec::Ideal => None,
            CacheSpec::Block { mb }
            | CacheSpec::Page { mb, .. }
            | CacheSpec::SubBlock { mb, .. }
            | CacheSpec::HotPage { mb, .. }
            | CacheSpec::Alloy { mb }
            | CacheSpec::Banshee { mb, .. }
            | CacheSpec::Gemini { mb, .. } => Some(*mb),
            CacheSpec::Footprint { config } => Some(config.capacity_bytes >> 20),
        }
    }

    /// How much functional warming this design's state needs relative
    /// to a plain page-organized cache of equal capacity — the sampled
    /// simulator scales its capacity-proportional warm windows by this
    /// factor. Designs whose metadata carries history beyond the tag
    /// array remember longer: Footprint Cache's predictor (FHT +
    /// singleton table) roughly doubles the horizon, and Banshee's
    /// frequency counters accumulate over several cache turnovers.
    /// Designs with no stacked state at all (baseline, ideal) return 0:
    /// only the shared L2 needs warming.
    pub fn warm_scale(&self) -> u64 {
        match &self.cache {
            CacheSpec::None | CacheSpec::Ideal => 0,
            CacheSpec::Footprint { .. } => 2,
            CacheSpec::Banshee { .. } => 6,
            _ => 1,
        }
    }

    /// Instantiates the design's cache model (as an enum-dispatched
    /// [`DesignModel`] — no boxing, no vtable on the hot path) and DRAM
    /// systems.
    pub fn build(&self) -> MemorySystem {
        let cache: DesignModel = match self.cache {
            CacheSpec::None => NoCache::new().into(),
            CacheSpec::Ideal => IdealCache::new().into(),
            CacheSpec::Block { mb } => BlockBasedCache::new(mb << 20).into(),
            CacheSpec::Page {
                mb,
                page_bytes,
                writeback,
            } => PageBasedCache::with_granularity(
                mb << 20,
                PageGeometry::new(page_bytes as usize),
                writeback,
            )
            .into(),
            CacheSpec::Footprint { config } => FootprintCache::new(config).into(),
            CacheSpec::SubBlock { mb, page_bytes } => {
                SubBlockCache::new(mb << 20, PageGeometry::new(page_bytes as usize)).into()
            }
            CacheSpec::HotPage {
                mb,
                page_bytes,
                threshold,
            } => HotPageCache::new(mb << 20, PageGeometry::new(page_bytes as usize), threshold)
                .into(),
            CacheSpec::Alloy { mb } => AlloyCache::new(mb << 20).into(),
            CacheSpec::Banshee { mb, page_bytes } => {
                BansheeCache::new(mb << 20, PageGeometry::new(page_bytes as usize)).into()
            }
            CacheSpec::Gemini {
                mb,
                page_bytes,
                promote_hits,
            } => GeminiCache::new(
                mb << 20,
                PageGeometry::new(page_bytes as usize),
                promote_hits,
            )
            .into(),
        };
        MemorySystem::new(
            cache,
            self.stacked.map(|s| s.resolve()),
            self.offchip.resolve(),
        )
    }

    /// Serializes the spec as a canonical JSON document. The encoding
    /// is stable (fixed field order), so it doubles as the hashing
    /// input for `fc_sweep`'s result store.
    pub fn to_json(&self) -> String {
        let stacked = match self.stacked {
            Some(s) => s.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\"label\": \"{}\", \"cache\": {}, \"stacked\": {}, \"offchip\": {}}}",
            escape(&self.label()),
            self.cache.to_json(),
            stacked,
            self.offchip.to_json()
        )
    }

    /// Parses a spec from [`to_json`](DesignSpec::to_json)'s format.
    /// The `label` field is informational and ignored on input.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        let cache = CacheSpec::from_json(v.field("cache")?)?;
        let stacked = match v.field("stacked")? {
            JsonValue::Null => None,
            other => Some(DramSpec::from_json(other)?),
        };
        let offchip = DramSpec::from_json(v.field("offchip")?)?;
        Ok(Self {
            cache,
            stacked,
            offchip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DESIGN_FAMILIES;

    /// One spec per family, plus the ablation variants.
    fn catalogue() -> Vec<DesignSpec> {
        let mut specs: Vec<DesignSpec> = DESIGN_FAMILIES.iter().map(|f| f.build(64)).collect();
        specs.push(DesignSpec::footprint_no_singleton(64));
        specs.push(DesignSpec::footprint_with_key(64, KeyKind::PcOnly));
        specs.push(DesignSpec::page_dirty_wb(64));
        specs
    }

    #[test]
    fn every_design_builds() {
        for spec in catalogue() {
            let m = spec.build();
            assert!(!spec.label().is_empty());
            drop(m);
        }
    }

    #[test]
    fn labels_carry_capacity() {
        assert_eq!(DesignSpec::footprint(256).label(), "Footprint 256MB");
        assert!(DesignSpec::footprint_no_singleton(128)
            .label()
            .contains("128MB"));
        assert_eq!(DesignSpec::alloy(64).label(), "Alloy 64MB");
        assert_eq!(DesignSpec::gemini(128).label(), "Gemini 128MB");
    }

    #[test]
    fn json_round_trips_every_design() {
        for spec in catalogue() {
            let json = spec.to_json();
            let back = DesignSpec::from_json(&json).unwrap_or_else(|e| {
                panic!("{}: {e}\n{json}", spec.label());
            });
            assert_eq!(spec, back, "round-trip changed {}", spec.label());
            // Serialization is canonical: a second trip is bit-identical.
            assert_eq!(json, back.to_json());
        }
    }

    #[test]
    fn json_rejects_malformed_specs() {
        assert!(DesignSpec::from_json("{}").is_err());
        assert!(DesignSpec::from_json("not json").is_err());
        let wrong_kind = DesignSpec::footprint(64)
            .to_json()
            .replace("footprint", "warpdrive");
        assert!(DesignSpec::from_json(&wrong_kind).is_err());
    }

    #[test]
    fn capacity_is_none_only_for_capacity_independent_designs() {
        assert_eq!(DesignSpec::baseline().capacity_mb(), None);
        assert_eq!(DesignSpec::ideal().capacity_mb(), None);
        assert_eq!(DesignSpec::ideal_low_latency().capacity_mb(), None);
        assert_eq!(DesignSpec::banshee(128).capacity_mb(), Some(128));
        assert_eq!(DesignSpec::footprint(512).capacity_mb(), Some(512));
    }

    #[test]
    fn dram_spec_overrides_apply() {
        let closed = DesignSpec::block(64).stacked.unwrap().resolve();
        assert_eq!(closed.policy, RowPolicy::Closed);
        let halved = DesignSpec::ideal_low_latency().stacked.unwrap().resolve();
        assert_eq!(halved.timings.t_cas, 6);
    }

    #[test]
    fn custom_footprint_label_distinguishes_ablations() {
        let plain = DesignSpec::footprint(64).label();
        let no_st = DesignSpec::footprint_no_singleton(64).label();
        assert_ne!(plain, no_st);
        assert!(no_st.contains("no-ST"));
    }
}
