//! The multicore trace-replay engine.

use std::collections::VecDeque;

use fc_cache::{SramCache, SramOutcome};
use fc_trace::{TraceGenerator, TraceRecord, WorkloadKind};
use fc_types::AccessKind;

use crate::config::SimConfig;
use crate::design::DesignSpec;
use crate::memsys::MemorySystem;
use crate::report::{ReportSnapshot, SimReport};

#[derive(Clone, Debug, Default)]
struct CoreState {
    /// Local clock in cycles (fixed IPC 1.0: instructions advance it).
    time: u64,
    /// Instructions committed.
    insts: u64,
    /// Outstanding DRAM-level read misses: (completion cycle, inst index).
    outstanding: VecDeque<(u64, u64)>,
}

/// A configured pod simulation: cores + L2 + memory system.
///
/// Drive it with [`run_workload`](Simulation::run_workload) (synthesizes
/// the trace internally) or [`run_records`](Simulation::run_records).
pub struct Simulation {
    config: SimConfig,
    design: DesignSpec,
    cores: Vec<CoreState>,
    l2: SramCache,
    memsys: MemorySystem,
}

impl Simulation {
    /// Builds the pod for `design`.
    pub fn new(config: SimConfig, design: DesignSpec) -> Self {
        let memsys = design.build().with_window(config.memsys_window);
        Self {
            config,
            design,
            cores: vec![CoreState::default(); config.cores as usize],
            l2: SramCache::new(config.l2_bytes, config.l2_ways, config.l2_latency),
            memsys,
        }
    }

    /// The memory system (stats inspection).
    pub fn memsys(&self) -> &MemorySystem {
        &self.memsys
    }

    /// The design under simulation.
    pub fn design(&self) -> DesignSpec {
        self.design
    }

    /// Replays one trace record through the hierarchy.
    pub fn step(&mut self, r: &TraceRecord) {
        let core = &mut self.cores[r.core as usize];
        core.insts += r.inst_gap as u64;
        core.time += r.inst_gap as u64; // fixed IPC 1.0 for non-memory work

        // The trace is post-L1: probe the shared L2.
        let block = r.addr.block();
        let outcome = self.l2.access(block, r.kind.is_write());
        match outcome {
            SramOutcome::Hit => {
                if !r.kind.is_write() {
                    core.time += self.l2.hit_latency() as u64;
                }
            }
            SramOutcome::Miss { writeback } => {
                let now = core.time;
                if let Some(victim) = writeback {
                    self.memsys.writeback(victim.base(), now);
                }
                match r.kind {
                    AccessKind::Read => {
                        // Lean-OoO overlap model: retire any outstanding
                        // miss the reorder window can no longer slide
                        // past, and respect the MSHR bound.
                        let window = self.config.rob_window;
                        while let Some(&(done, at_inst)) = core.outstanding.front() {
                            if core.insts > at_inst + window {
                                core.time = core.time.max(done);
                                core.outstanding.pop_front();
                            } else {
                                break;
                            }
                        }
                        if core.outstanding.len() >= self.config.mshrs {
                            if let Some((done, _)) = core.outstanding.pop_front() {
                                core.time = core.time.max(done);
                            }
                        }
                        let issue = core.time + self.l2.hit_latency() as u64;
                        let done = self.memsys.demand_access(r.access(), issue);
                        core.time = issue;
                        core.outstanding.push_back((done, core.insts));
                    }
                    AccessKind::Write => {
                        // Stores retire through the write buffer: the
                        // fetch-for-write proceeds without stalling.
                        self.memsys
                            .demand_access(r.access(), now + self.l2.hit_latency() as u64);
                    }
                }
            }
        }
    }

    /// Drains outstanding misses into core clocks (call at measurement
    /// boundaries).
    pub fn drain(&mut self) {
        for core in &mut self.cores {
            while let Some((done, _)) = core.outstanding.pop_front() {
                core.time = core.time.max(done);
            }
        }
    }

    /// Aggregate committed instructions across cores.
    pub fn total_insts(&self) -> u64 {
        self.cores.iter().map(|c| c.insts).sum()
    }

    /// Total cycles: the slowest core's clock (cores run concurrently).
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.time).max().unwrap_or(0)
    }

    /// Snapshot of all counters (for warmup-relative measurement).
    pub fn snapshot(&self) -> ReportSnapshot {
        ReportSnapshot::capture(self)
    }

    /// Replays `records`, then builds a report relative to `since`.
    pub fn run_records<I: IntoIterator<Item = TraceRecord>>(
        &mut self,
        records: I,
        since: &ReportSnapshot,
    ) -> SimReport {
        for r in records {
            self.step(&r);
        }
        self.drain();
        SimReport::since(self, since)
    }

    /// Convenience driver: synthesizes `workload` with `seed`, replays
    /// `warmup` records to warm the hierarchy, then measures over
    /// `measured` records.
    pub fn run_workload(
        &mut self,
        workload: WorkloadKind,
        seed: u64,
        warmup: u64,
        measured: u64,
    ) -> SimReport {
        let mut generator = TraceGenerator::new(workload, self.config.cores, seed);
        for _ in 0..warmup {
            let r = generator.next().expect("generator is infinite");
            self.step(&r);
        }
        self.drain();
        let snap = self.snapshot();
        let records = (&mut generator).take(measured as usize);
        self.run_records(records, &snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::{Pc, PhysAddr};

    fn record(core: u8, addr: u64, gap: u32) -> TraceRecord {
        TraceRecord {
            pc: Pc::new(0x400),
            addr: PhysAddr::new(addr),
            kind: AccessKind::Read,
            core,
            inst_gap: gap,
        }
    }

    #[test]
    fn instructions_advance_core_clock() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 100));
        sim.drain();
        assert!(sim.total_cycles() >= 100);
        assert_eq!(sim.total_insts(), 100);
    }

    #[test]
    fn l2_hit_avoids_dram() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 10));
        sim.step(&record(0, 0x1000, 10));
        assert_eq!(sim.memsys().offchip_stats().read_blocks, 1);
    }

    #[test]
    fn misses_overlap_within_window() {
        // Two independent misses (different DRAM banks) issued back to
        // back overlap: total time is far less than twice the miss
        // latency.
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x10000, 1));
        sim.step(&record(0, 0x10040, 1)); // adjacent block -> next bank
        sim.drain();
        let t2 = sim.total_cycles();

        let mut solo = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        solo.step(&record(0, 0x10000, 1));
        solo.drain();
        let t1 = solo.total_cycles();
        assert!(
            t2 < 2 * t1 - 20,
            "overlapped pair {t2} should beat serial {t1}x2"
        );
    }

    #[test]
    fn distant_misses_serialize() {
        // A miss more than a ROB window of instructions later cannot
        // overlap with its predecessor.
        let cfg = SimConfig::small();
        let mut sim = Simulation::new(cfg, DesignSpec::baseline());
        sim.step(&record(0, 0x10000, 1));
        sim.step(&record(0, 0x10040, (cfg.rob_window + 10) as u32));
        sim.drain();
        let serial = sim.total_cycles();

        let mut overlapped = Simulation::new(cfg, DesignSpec::baseline());
        overlapped.step(&record(0, 0x10000, 1));
        overlapped.step(&record(0, 0x10040, 1));
        overlapped.drain();
        assert!(serial > overlapped.total_cycles());
    }

    #[test]
    fn cores_progress_independently() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 50));
        sim.step(&record(1, 0x2000, 10));
        assert_eq!(sim.total_insts(), 60);
    }
}
