//! The multicore trace-replay engine.

use std::collections::VecDeque;

use fc_cache::{SramCache, SramOutcome};
use fc_trace::{ScenarioGenerator, ScenarioSpec, TraceGenerator, TraceRecord, WorkloadKind};

use crate::batch::{RecordBatch, BATCH_RECORDS};
use crate::config::SimConfig;
use crate::design::DesignSpec;
use crate::memsys::MemorySystem;
use crate::report::{CorePerf, ReportSnapshot, SimReport};

/// One outstanding DRAM-level miss held in a core's MSHRs.
#[derive(Clone, Copy, Debug)]
struct OutstandingMiss {
    /// Cycle the fill completes (the MSHR frees then).
    done: u64,
    /// Instruction index at issue (reorder-window bookkeeping).
    at_inst: u64,
    /// Fetch-for-write: occupies an MSHR but never blocks retirement.
    write: bool,
}

#[derive(Clone, Debug, Default)]
struct CoreState {
    /// Local clock in cycles (fixed IPC 1.0: instructions advance it).
    time: u64,
    /// Instructions committed.
    insts: u64,
    /// Demand L2 accesses issued by this core.
    l2_accesses: u64,
    /// Demand L2 misses (DRAM-level accesses) issued by this core.
    l2_misses: u64,
    /// Outstanding DRAM-level misses, FIFO by issue (the MSHRs).
    outstanding: VecDeque<OutstandingMiss>,
}

impl CoreState {
    /// Frees MSHRs whose fills have already returned, stalls on reads
    /// the reorder window can no longer slide past, and — when every
    /// MSHR is busy — waits for the oldest fill. Both reads and
    /// fetch-for-writes occupy entries (bounding store-miss
    /// parallelism), but a write entry never stalls retirement on its
    /// own: it only costs time through the MSHR bound. Pending writes
    /// are skipped, not barriers — a long store fill ahead of a read
    /// must not exempt the read from its reorder-window stall.
    fn reserve_mshr(&mut self, rob_window: u64, mshrs: usize) {
        let (insts, now) = (self.insts, self.time);
        let mut stall_until = now;
        self.outstanding.retain(|m| {
            if m.done <= now {
                return false; // fill returned: the MSHR is free
            }
            if !m.write && insts > m.at_inst + rob_window {
                stall_until = stall_until.max(m.done);
                return false; // the ROB can no longer slide past it
            }
            true
        });
        self.time = stall_until;
        // The stall may have outlived more fills; free those too.
        while matches!(self.outstanding.front(), Some(m) if m.done <= self.time) {
            self.outstanding.pop_front();
        }
        if self.outstanding.len() >= mshrs {
            if let Some(OutstandingMiss { done, .. }) = self.outstanding.pop_front() {
                self.time = self.time.max(done);
            }
        }
    }

    /// This core's monotone performance counters.
    fn perf(&self) -> CorePerf {
        CorePerf {
            insts: self.insts,
            cycles: self.time,
            l2_accesses: self.l2_accesses,
            l2_misses: self.l2_misses,
        }
    }
}

/// A checkpoint of a whole pod simulation, captured at a *quiesced*
/// point: all capacity state (L2, DRAM-cache design metadata) and every
/// monotone counter, with the timing plane (core clocks, MSHRs, DRAM
/// bank/bus/queue reservations) realigned to the functional reference
/// clock (`time == insts`, nothing in flight).
///
/// **Bit-equality guarantee:** a simulation that has only ever been
/// driven through the functional path is already quiesced, so capturing
/// it and [`restoring`](Simulation::restore) elsewhere reproduces its
/// exact state — subsequent identical replays yield identical
/// [`SimReport`](crate::SimReport) deltas. This is what lets the
/// parallel-in-time sampler (`fc-sample`) dispatch measured intervals
/// to workers and still merge bit-identical results at any worker
/// count. Capturing mid-detailed-run is also deterministic, but the
/// quiescing discards in-flight timing, so deltas then match a
/// quiesced re-run, not the uninterrupted one.
#[derive(Clone)]
pub struct Checkpoint {
    state: Simulation,
}

impl Checkpoint {
    /// Captures `sim` (clone + [`quiesce`](Simulation::quiesce)).
    pub fn capture(sim: &Simulation) -> Self {
        let mut state = sim.clone();
        state.quiesce();
        Self { state }
    }

    /// Materializes an independent simulation resuming from this
    /// checkpoint.
    pub fn to_sim(&self) -> Simulation {
        self.state.clone()
    }
}

/// A configured pod simulation: cores + L2 + memory system.
///
/// Drive it with [`run_workload`](Simulation::run_workload) (synthesizes
/// the trace internally) or [`run_records`](Simulation::run_records).
#[derive(Clone)]
pub struct Simulation {
    config: SimConfig,
    design: DesignSpec,
    cores: Vec<CoreState>,
    l2: SramCache,
    memsys: MemorySystem,
}

impl Simulation {
    /// Builds the pod for `design`.
    pub fn new(config: SimConfig, design: DesignSpec) -> Self {
        let memsys = design.build().with_window(config.memsys_window);
        Self {
            config,
            design,
            cores: vec![CoreState::default(); config.cores as usize],
            l2: SramCache::new(config.l2_bytes, config.l2_ways, config.l2_latency),
            memsys,
        }
    }

    /// The memory system (stats inspection).
    pub fn memsys(&self) -> &MemorySystem {
        &self.memsys
    }

    /// The design under simulation.
    pub fn design(&self) -> DesignSpec {
        self.design
    }

    /// Replays one trace record through the hierarchy (a one-record
    /// batch; bulk callers should prefer [`step_batch`]
    /// (Simulation::step_batch) / [`step_slice`](Simulation::step_slice)).
    #[inline]
    pub fn step(&mut self, r: &TraceRecord) {
        let core = &mut self.cores[r.core as usize];
        core.insts += r.inst_gap as u64;
        core.time += r.inst_gap as u64; // fixed IPC 1.0 for non-memory work
        core.l2_accesses += 1;

        // The trace is post-L1: probe the shared L2.
        let block = r.addr.block();
        let outcome = self.l2.access(block, r.kind.is_write());
        match outcome {
            SramOutcome::Hit => {
                // Loads and stores both occupy the L2 port for a hit:
                // the write buffer hides *miss* latency, not hit port
                // occupancy.
                core.time += self.l2.hit_latency() as u64;
            }
            SramOutcome::Miss { writeback } => {
                core.l2_misses += 1;
                if let Some(victim) = writeback {
                    self.memsys.writeback(victim.base(), core.time);
                }
                // Lean-OoO overlap model: free/retire outstanding
                // misses and respect the MSHR bound (reads and
                // fetch-for-writes share the MSHRs).
                core.reserve_mshr(self.config.rob_window, self.config.mshrs);
                let issue = core.time + self.l2.hit_latency() as u64;
                let done = self.memsys.demand_access(r.access(), issue);
                core.time = issue;
                core.outstanding.push_back(OutstandingMiss {
                    done,
                    at_inst: core.insts,
                    // Stores retire through the write buffer: the
                    // fetch-for-write holds an MSHR until the fill
                    // returns but never stalls retirement itself.
                    write: r.kind.is_write(),
                });
            }
        }
    }

    /// Replays a columnar batch through the hierarchy. This is the
    /// data-oriented hot loop: the engine streams the batch's dense
    /// columns in order and drives the memory system through the
    /// enum-dispatched design model, with per-record iterator and
    /// dispatch overhead amortized across the batch. **Bit-identical**
    /// to stepping the same records one at a time — the equivalence is
    /// enforced for every registry design by `tests/batched_equivalence`.
    pub fn step_batch(&mut self, batch: &RecordBatch) {
        for i in 0..batch.len() {
            let r = batch.record(i);
            self.step(&r);
        }
    }

    /// Replays a record slice through reusable columnar batches of
    /// [`BATCH_RECORDS`](crate::BATCH_RECORDS) records.
    pub fn step_slice(&mut self, records: &[TraceRecord]) {
        let mut batch = RecordBatch::with_capacity(BATCH_RECORDS.min(records.len()));
        for chunk in records.chunks(BATCH_RECORDS) {
            batch.clear();
            batch.extend(chunk);
            self.step_batch(&batch);
        }
    }

    /// Replays one trace record in **functional-warmup** mode: the L2
    /// and the DRAM-cache design apply their full state transitions
    /// (tags, replacement, MissMap, predictor, statistics), but no DRAM
    /// or queue timing is simulated and no MSHR is occupied. Core
    /// clocks advance by the instruction gap only (fixed IPC 1.0), so
    /// time stays monotone across mode switches. Sampled simulation
    /// fast-forwards through functional regions and measures only
    /// detailed intervals (see the `fc-sample` crate).
    pub fn step_functional(&mut self, r: &TraceRecord) {
        let core = &mut self.cores[r.core as usize];
        core.insts += r.inst_gap as u64;
        core.time += r.inst_gap as u64;
        core.l2_accesses += 1;

        let block = r.addr.block();
        match self.l2.access(block, r.kind.is_write()) {
            SramOutcome::Hit => {}
            SramOutcome::Miss { writeback } => {
                core.l2_misses += 1;
                if let Some(victim) = writeback {
                    self.memsys.warm_writeback(victim.base());
                }
                self.memsys.warm_access(r.access());
            }
        }
    }

    /// Drains outstanding misses into core clocks (call at measurement
    /// boundaries). Write fills only free their MSHRs — the write
    /// buffer already decoupled them from retirement.
    pub fn drain(&mut self) {
        for core in &mut self.cores {
            while let Some(OutstandingMiss { done, write, .. }) = core.outstanding.pop_front() {
                if !write {
                    core.time = core.time.max(done);
                }
            }
        }
    }

    /// Quiesces the timing plane: each core's clock realigns to the
    /// functional reference (`time = insts` — both advance by exactly
    /// the instruction gap under functional replay), MSHRs empty
    /// without folding their latency into the clock, and the memory
    /// system's window/channel reservations reset. All capacity state
    /// and every monotone counter are untouched.
    ///
    /// A simulation driven only through
    /// [`step_functional`](Simulation::step_functional) is already in
    /// this state, so quiescing at functional boundaries is a no-op —
    /// the property the checkpointed sampling path builds on.
    pub fn quiesce(&mut self) {
        for core in &mut self.cores {
            core.time = core.insts;
            core.outstanding.clear();
        }
        self.memsys.quiesce();
    }

    /// Captures a [`Checkpoint`] of this simulation (quiesced).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::capture(self)
    }

    /// Replaces this simulation's entire state with `checkpoint`'s.
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        *self = checkpoint.to_sim();
    }

    /// Aggregate committed instructions across cores.
    pub fn total_insts(&self) -> u64 {
        self.cores.iter().map(|c| c.insts).sum()
    }

    /// Total cycles: the slowest core's clock (cores run concurrently).
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.time).max().unwrap_or(0)
    }

    /// Per-core monotone counters (instructions, cycles, L2 traffic),
    /// indexed by core id.
    pub fn per_core(&self) -> Vec<CorePerf> {
        self.cores.iter().map(CoreState::perf).collect()
    }

    /// Snapshot of all counters (for warmup-relative measurement).
    pub fn snapshot(&self) -> ReportSnapshot {
        ReportSnapshot::capture(self)
    }

    /// Replays `records`, then builds a report relative to `since`.
    pub fn run_records<I: IntoIterator<Item = TraceRecord>>(
        &mut self,
        records: I,
        since: &ReportSnapshot,
    ) -> SimReport {
        let _span = fc_obs::trace::span("detailed-sim", "sim");
        let mut replayed = 0u64;
        let mut batch = RecordBatch::with_capacity(BATCH_RECORDS);
        let mut records = records.into_iter();
        loop {
            batch.clear();
            for r in records.by_ref().take(BATCH_RECORDS) {
                batch.push(&r);
            }
            if batch.is_empty() {
                break;
            }
            self.step_batch(&batch);
            replayed += batch.len() as u64;
        }
        self.drain();
        // One registry touch per replay, not per record.
        fc_obs::metrics::counter("sim.records.detailed").add(replayed);
        SimReport::since(self, since)
    }

    /// Convenience driver: synthesizes `workload` with `seed`, replays
    /// `warmup` records to warm the hierarchy, then measures over
    /// `measured` records.
    pub fn run_workload(
        &mut self,
        workload: WorkloadKind,
        seed: u64,
        warmup: u64,
        measured: u64,
    ) -> SimReport {
        let mut generator = TraceGenerator::new(workload, self.config.cores, seed);
        {
            let _span = fc_obs::trace::span("detailed-warmup", "sim");
            for _ in 0..warmup {
                let r = generator.next().expect("generator is infinite");
                self.step(&r);
            }
            self.drain();
            fc_obs::metrics::counter("sim.records.warmup").add(warmup);
        }
        let snap = self.snapshot();
        let records = (&mut generator).take(measured as usize);
        self.run_records(records, &snap)
    }

    /// Scenario-mix driver: interleaves each core's assigned workload
    /// with `seed`, replays `warmup` records to warm the hierarchy,
    /// then measures over `measured` records.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's core count differs from the pod's.
    pub fn run_scenario(
        &mut self,
        scenario: &ScenarioSpec,
        seed: u64,
        warmup: u64,
        measured: u64,
    ) -> SimReport {
        assert_eq!(
            scenario.cores(),
            self.config.cores,
            "scenario `{}` assigns {} cores but the pod has {}",
            scenario.name,
            scenario.cores(),
            self.config.cores
        );
        let mut generator = ScenarioGenerator::new(scenario, seed);
        {
            let _span = fc_obs::trace::span("detailed-warmup", "sim");
            for _ in 0..warmup {
                let r = generator.next().expect("generator is infinite");
                self.step(&r);
            }
            self.drain();
            fc_obs::metrics::counter("sim.records.warmup").add(warmup);
        }
        let snap = self.snapshot();
        let records = (&mut generator).take(measured as usize);
        self.run_records(records, &snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_types::{AccessKind, Pc, PhysAddr};

    fn record(core: u8, addr: u64, gap: u32) -> TraceRecord {
        TraceRecord {
            pc: Pc::new(0x400),
            addr: PhysAddr::new(addr),
            kind: AccessKind::Read,
            core,
            inst_gap: gap,
        }
    }

    fn store(core: u8, addr: u64, gap: u32) -> TraceRecord {
        TraceRecord {
            kind: AccessKind::Write,
            ..record(core, addr, gap)
        }
    }

    #[test]
    fn instructions_advance_core_clock() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 100));
        sim.drain();
        assert!(sim.total_cycles() >= 100);
        assert_eq!(sim.total_insts(), 100);
    }

    #[test]
    fn l2_hit_avoids_dram() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 10));
        sim.step(&record(0, 0x1000, 10));
        assert_eq!(sim.memsys().offchip_stats().read_blocks, 1);
    }

    #[test]
    fn misses_overlap_within_window() {
        // Two independent misses (different DRAM banks) issued back to
        // back overlap: total time is far less than twice the miss
        // latency.
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x10000, 1));
        sim.step(&record(0, 0x10040, 1)); // adjacent block -> next bank
        sim.drain();
        let t2 = sim.total_cycles();

        let mut solo = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        solo.step(&record(0, 0x10000, 1));
        solo.drain();
        let t1 = solo.total_cycles();
        assert!(
            t2 < 2 * t1 - 20,
            "overlapped pair {t2} should beat serial {t1}x2"
        );
    }

    #[test]
    fn distant_misses_serialize() {
        // A miss more than a ROB window of instructions later cannot
        // overlap with its predecessor.
        let cfg = SimConfig::small();
        let mut sim = Simulation::new(cfg, DesignSpec::baseline());
        sim.step(&record(0, 0x10000, 1));
        sim.step(&record(0, 0x10040, (cfg.rob_window + 10) as u32));
        sim.drain();
        let serial = sim.total_cycles();

        let mut overlapped = Simulation::new(cfg, DesignSpec::baseline());
        overlapped.step(&record(0, 0x10000, 1));
        overlapped.step(&record(0, 0x10040, 1));
        overlapped.drain();
        assert!(serial > overlapped.total_cycles());
    }

    #[test]
    fn cores_progress_independently() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 50));
        sim.step(&record(1, 0x2000, 10));
        assert_eq!(sim.total_insts(), 60);
    }

    #[test]
    fn store_hits_pay_the_l2_hit_latency() {
        // Regression: store hits used to advance the core clock by
        // nothing at all — the write buffer hides miss latency, not
        // hit port occupancy. A store-hit-heavy stream must accumulate
        // the L2 hit latency per store on top of its instructions.
        let cfg = SimConfig::small();
        let mut sim = Simulation::new(cfg, DesignSpec::baseline());
        sim.step(&record(0, 0x1000, 1)); // install the block
        sim.drain();
        let before = sim.total_cycles();
        let hits = 100u64;
        for _ in 0..hits {
            sim.step(&store(0, 0x1000, 1));
        }
        sim.drain();
        let elapsed = sim.total_cycles() - before;
        assert!(
            elapsed >= hits * (1 + cfg.l2_latency as u64),
            "store hits advanced the clock only {elapsed} cycles \
             (expected at least {})",
            hits * (1 + cfg.l2_latency as u64)
        );
    }

    #[test]
    fn store_misses_respect_the_mshr_bound() {
        // Regression: store misses used to bypass `core.outstanding`
        // entirely, granting unbounded fetch-for-write parallelism. A
        // burst of independent store misses must serialize behind a
        // single MSHR, and overlap with many.
        let narrow_cfg = SimConfig {
            mshrs: 1,
            ..SimConfig::small()
        };
        let wide_cfg = SimConfig {
            mshrs: 64,
            ..SimConfig::small()
        };
        let run = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg, DesignSpec::baseline());
            for i in 0..16u64 {
                sim.step(&store(0, 0x100000 + i * 0x1000, 1));
            }
            sim.drain();
            sim.total_cycles()
        };
        let narrow = run(narrow_cfg);
        let wide = run(wide_cfg);
        assert!(
            narrow > wide + 100,
            "one MSHR ({narrow} cycles) must serialize store misses \
             that 64 MSHRs overlap ({wide} cycles)"
        );
    }

    #[test]
    fn pending_write_does_not_shield_reads_from_rob_stalls() {
        // A long store fill at the MSHR head must not exempt a younger
        // read miss from its reorder-window stall: prefixing the
        // distant read pair with a store may only add the store's own
        // issue cost, never remove the read's stall (the pre-drain
        // clock makes the stall visible).
        let cfg = SimConfig::small();
        let run = |with_store: bool| {
            let mut sim = Simulation::new(cfg, DesignSpec::baseline());
            if with_store {
                sim.step(&store(0, 0x700000, 1));
            }
            sim.step(&record(0, 0x10000, 1));
            sim.step(&record(0, 0x10040, (cfg.rob_window + 10) as u32));
            sim.total_cycles()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with >= without + 1 + cfg.l2_latency as u64,
            "the pending store erased the read's ROB stall: \
             {with} cycles with the store vs {without} without"
        );
    }

    #[test]
    fn store_misses_do_not_block_retirement() {
        // A single store miss retires through the write buffer: the
        // core clock advances by the instruction and the L2 lookup,
        // not by the DRAM fill latency.
        let cfg = SimConfig::small();
        let mut sim = Simulation::new(cfg, DesignSpec::baseline());
        sim.step(&store(0, 0x100000, 1));
        assert_eq!(sim.total_cycles(), 1 + cfg.l2_latency as u64);
    }

    #[test]
    fn per_core_counters_sum_to_totals() {
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::baseline());
        sim.step(&record(0, 0x10000, 5));
        sim.step(&record(1, 0x20000, 7));
        sim.step(&store(1, 0x20000, 3));
        sim.drain();
        let per_core = sim.per_core();
        assert_eq!(per_core.len(), 4);
        assert_eq!(
            per_core.iter().map(|c| c.insts).sum::<u64>(),
            sim.total_insts()
        );
        assert_eq!(per_core.iter().map(|c| c.l2_accesses).sum::<u64>(), 3);
        assert_eq!(per_core[1].l2_accesses, 2);
        assert_eq!(per_core[1].l2_misses, 1, "the store hit is not a miss");
    }

    #[test]
    fn functional_mode_preserves_all_capacity_state() {
        // A stream replayed functionally must leave the L2 and the
        // DRAM-cache design in exactly the state a detailed replay
        // would: same cache statistics (hits, misses, evictions,
        // traffic) and the same outcomes for subsequent accesses.
        use fc_trace::{TraceGenerator, WorkloadKind};
        for design in [
            DesignSpec::footprint(64),
            DesignSpec::page(64),
            DesignSpec::baseline(),
        ] {
            let records: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 7)
                .take(5_000)
                .collect();
            let mut detailed = Simulation::new(SimConfig::small(), design);
            let mut functional = Simulation::new(SimConfig::small(), design);
            for r in &records {
                detailed.step(r);
                functional.step_functional(r);
            }
            detailed.drain();
            assert_eq!(
                detailed.memsys().cache().stats(),
                functional.memsys().cache().stats(),
                "{}: functional warmup diverged from detailed state",
                design.label()
            );
            assert_eq!(detailed.total_insts(), functional.total_insts());
            // After switching back to detailed mode, both pods see the
            // same hierarchy state: identical hit/miss outcomes.
            let probe: Vec<_> = TraceGenerator::new(WorkloadKind::WebSearch, 4, 9)
                .take(500)
                .collect();
            for r in &probe {
                detailed.step(r);
                functional.step(r);
            }
            assert_eq!(
                detailed.memsys().cache().stats(),
                functional.memsys().cache().stats(),
                "{}: post-warmup detailed replay diverged",
                design.label()
            );
        }
    }

    #[test]
    fn functional_mode_advances_no_memory_time() {
        // Functional steps advance core clocks by instruction gaps
        // only — no L2 port, DRAM, or queue latency.
        let mut sim = Simulation::new(SimConfig::small(), DesignSpec::footprint(64));
        sim.step_functional(&record(0, 0x10000, 25));
        sim.step_functional(&record(0, 0x20000, 17));
        assert_eq!(sim.total_cycles(), 42);
        assert_eq!(sim.total_insts(), 42);
        // And no DRAM traffic was timed (counters stay zero) even
        // though the design absorbed the accesses.
        assert_eq!(sim.memsys().offchip_stats().accesses, 0);
        assert_eq!(sim.memsys().cache().stats().accesses, 2);
    }

    #[test]
    fn heterogeneous_scenario_runs_deterministically() {
        use fc_trace::ScenarioSpec;
        let spec = ScenarioSpec::split(
            fc_trace::WorkloadKind::DataServing,
            fc_trace::WorkloadKind::MapReduce,
            4,
        );
        let run = || {
            Simulation::new(SimConfig::small(), DesignSpec::footprint(64))
                .run_scenario(&spec, 42, 500, 500)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.per_core.len(), 4);
        assert!(a.per_core.iter().all(|c| c.insts > 0));
    }

    #[test]
    #[should_panic(expected = "assigns 8 cores but the pod has 4")]
    fn scenario_core_count_must_match_pod() {
        use fc_trace::ScenarioSpec;
        let spec = ScenarioSpec::all_different(8);
        Simulation::new(SimConfig::small(), DesignSpec::baseline()).run_scenario(&spec, 1, 10, 10);
    }
}
