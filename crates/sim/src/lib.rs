//! Trace-driven simulator of one scale-out pod (Table 3): 16 cores, a
//! shared 4 MB L2, a die-stacked DRAM cache design, and the off-chip
//! DDR3-1600 channel.
//!
//! The simulation methodology follows the paper's trace-driven analyses
//! (Section 5.4): memory traces with fixed IPC 1.0 drive the hierarchy;
//! cores model limited memory-level parallelism with an outstanding-miss
//! window and a ROB lookahead (lean 3-way OoO cores cannot hide DRAM
//! misses, but adjacent independent misses overlap). Performance is the
//! paper's throughput metric — aggregate committed instructions divided
//! by total cycles.
//!
//! The flow per trace record: the record (already L1-filtered by the
//! trace model) probes the shared L2; an L2 miss becomes a demand access
//! to the DRAM cache design, which produces an [`AccessPlan`]
//! (fc-cache); the [`MemorySystem`] executes the plan against the stacked
//! and off-chip [`DramSystem`]s, yielding the request latency and all
//! traffic/energy accounting. L2 dirty victims become writebacks, which
//! dirty DRAM-cache blocks or go straight off-chip.
//!
//! Designs are *data*: a [`DesignSpec`] (cache model + stacked and
//! off-chip DRAM specs + row policy) describes a memory system, the
//! [`registry`] resolves design names to specs, and
//! [`Simulation::new`] builds the pod from a spec. Specs serialize to
//! JSON and hash stably, which is what `fc_sweep` keys its memoized
//! result store on.
//!
//! # Examples
//!
//! ```no_run
//! use fc_sim::{DesignSpec, SimConfig, Simulation};
//! use fc_trace::WorkloadKind;
//!
//! let report = Simulation::new(SimConfig::default(), DesignSpec::footprint(256))
//!     .run_workload(WorkloadKind::WebSearch, 42, 200_000, 400_000);
//! println!("miss ratio {:.1}%", report.cache.miss_ratio() * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod batch;
mod config;
mod design;
mod engine;
pub mod loaded;
mod memsys;
mod model;
pub mod registry;
mod report;

// The JSON layer moved down to `fc_types` so `fc_trace` scenario specs
// can round-trip through the same parser; re-exported here so
// `fc_sim::json` keeps working for existing callers.
pub use fc_types::json;

pub use batch::{RecordBatch, BATCH_RECORDS};
pub use config::SimConfig;
pub use design::{CacheSpec, DesignSpec, DramPreset, DramSpec};
pub use engine::{Checkpoint, Simulation};
pub use memsys::{MemorySystem, MemsysTimeline};
pub use model::DesignModel;
pub use registry::{design_family, resolve_designs, DesignFamily, DESIGN_FAMILIES};
pub use report::{
    consolidation, ConsolidationReport, CorePerf, EnergyReport, ReportSnapshot, SimReport,
};

// The stat types embedded in `SimReport`, re-exported so downstream
// crates (the sweep layer's durable store) can rebuild reports from
// persisted form without depending on fc-cache directly.
pub use fc_cache::{DensityHistogram, DramCacheStats, PredictionCounters};

// Scenario mixes are described in `fc_trace` (they are workload data);
// re-exported here because the registry/JSON layer is where sweep
// callers look for spec types.
pub use fc_trace::{
    resolve_scenarios, scenario_family, PhaseSchedule, ScenarioFamily, ScenarioSpec,
    SCENARIO_FAMILIES,
};
