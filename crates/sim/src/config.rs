//! Pod-level simulation parameters (Table 3).

use serde::{Deserialize, Serialize};

/// Configuration of the simulated pod and core model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cores per pod (Table 3: 16).
    pub cores: u8,
    /// Shared L2 capacity in bytes (Table 3: 4 MB).
    pub l2_bytes: usize,
    /// L2 associativity (Table 3: 16).
    pub l2_ways: usize,
    /// L2 hit latency in cycles (Table 3: 13).
    pub l2_latency: u32,
    /// Outstanding DRAM-level misses a core sustains (MSHRs).
    pub mshrs: usize,
    /// Instructions a lean OoO core can slide past an outstanding miss
    /// before stalling (reorder-window lookahead).
    pub rob_window: u64,
    /// Outstanding-request window of the shared memory system below the
    /// L2 (MSHR-style): demand, fill and writeback traffic all occupy
    /// entries, so a saturated pod queues.
    pub memsys_window: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cores: 16,
            l2_bytes: 4 << 20,
            l2_ways: 16,
            l2_latency: 13,
            mshrs: 8,
            rob_window: 64,
            memsys_window: crate::MemorySystem::DEFAULT_WINDOW,
        }
    }
}

impl SimConfig {
    /// A smaller configuration for fast tests: 4 cores, 256 KB L2.
    pub fn small() -> Self {
        Self {
            cores: 4,
            l2_bytes: 256 << 10,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = SimConfig::default();
        assert_eq!(c.cores, 16);
        assert_eq!(c.l2_bytes, 4 << 20);
        assert_eq!(c.l2_ways, 16);
        assert_eq!(c.l2_latency, 13);
    }

    #[test]
    fn small_shrinks_pod() {
        let c = SimConfig::small();
        assert_eq!(c.cores, 4);
        assert!(c.l2_bytes < SimConfig::default().l2_bytes);
    }
}
