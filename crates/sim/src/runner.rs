//! Design catalogue: every system configuration the paper evaluates,
//! buildable by name.

use fc_cache::{
    BlockBasedCache, HotPageCache, IdealCache, NoCache, PageBasedCache, SubBlockCache,
    WritebackGranularity,
};
use fc_dram::{DramConfig, DramTimings};
use fc_types::PageGeometry;
use footprint_cache::{FootprintCache, FootprintCacheConfig, KeyKind};

use crate::memsys::MemorySystem;

/// Which memory-system design a simulation runs (Sections 5.1–5.2).
///
/// Capacities are in megabytes of stacked DRAM. Each design also selects
/// its row-buffer policy and interleaving, per Section 5.2: closed-page +
/// block interleave for the block-based design, open-page + 2 KB
/// interleave for the page-organized ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DesignKind {
    /// No die-stacked DRAM: every L2 miss goes off-chip.
    Baseline,
    /// Loh & Hill block-based cache with MissMap.
    Block {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Page-based cache (whole-page fetch).
    Page {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Footprint Cache (the paper's design).
    Footprint {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Footprint Cache with a custom configuration (page size, FHT size,
    /// singleton switch, key kind — the sensitivity studies).
    FootprintCustom {
        /// Full configuration.
        config: FootprintCacheConfig,
    },
    /// Sub-blocked (sectored) cache: page tags, demand-block fetch.
    SubBlock {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// CHOP-style hot-page filter cache (4 KB pages, Section 6.7).
    HotPage {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Page-based cache that writes back only dirty blocks (ablation).
    PageDirtyBlockWb {
        /// Stacked capacity in MB.
        mb: u64,
    },
    /// Die-stacked main memory: never misses (Figures 1, 6, 7 "Ideal").
    Ideal,
    /// Die-stacked main memory with halved DRAM latency (Figure 1's
    /// "High-BW & Low-Latency").
    IdealLowLatency,
}

impl DesignKind {
    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            DesignKind::Baseline => "Baseline".into(),
            DesignKind::Block { mb } => format!("Block-based {mb}MB"),
            DesignKind::Page { mb } => format!("Page-based {mb}MB"),
            DesignKind::Footprint { mb } => format!("Footprint {mb}MB"),
            DesignKind::FootprintCustom { config } => format!(
                "Footprint {}MB ({}B pages, {} FHT, {:?}{})",
                config.capacity_bytes >> 20,
                config.geom.page_size(),
                config.fht_entries,
                config.key_kind,
                if config.singleton_optimization {
                    ""
                } else {
                    ", no-ST"
                }
            ),
            DesignKind::SubBlock { mb } => format!("Sub-blocked {mb}MB"),
            DesignKind::HotPage { mb } => format!("Hot-page {mb}MB"),
            DesignKind::PageDirtyBlockWb { mb } => format!("Page (dirty-block WB) {mb}MB"),
            DesignKind::Ideal => "Ideal".into(),
            DesignKind::IdealLowLatency => "Ideal low-latency".into(),
        }
    }

    /// Stacked-DRAM capacity in MB used for run sizing. Capacity-less
    /// designs (baseline, ideal) report the smallest evaluated capacity
    /// so sweeps give them comparable run lengths.
    pub fn capacity_mb(&self) -> u64 {
        match self {
            DesignKind::Baseline => 64,
            DesignKind::Block { mb }
            | DesignKind::Page { mb }
            | DesignKind::Footprint { mb }
            | DesignKind::SubBlock { mb }
            | DesignKind::HotPage { mb }
            | DesignKind::PageDirtyBlockWb { mb } => *mb,
            DesignKind::FootprintCustom { config } => config.capacity_bytes >> 20,
            DesignKind::Ideal | DesignKind::IdealLowLatency => 64,
        }
    }

    /// Instantiates the design's cache model and DRAM configurations.
    pub fn build(&self) -> MemorySystem {
        let geom = PageGeometry::default();
        match *self {
            DesignKind::Baseline => MemorySystem::new(
                Box::new(NoCache::new()),
                None,
                DramConfig::off_chip_ddr3_1600(),
            ),
            DesignKind::Block { mb } => MemorySystem::new(
                Box::new(BlockBasedCache::new(mb << 20)),
                Some(DramConfig::stacked_for_block_design()),
                DramConfig::off_chip_ddr3_1600(),
            ),
            DesignKind::Page { mb } => MemorySystem::new(
                Box::new(PageBasedCache::new(mb << 20, geom)),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::Footprint { mb } => MemorySystem::new(
                Box::new(FootprintCache::new(FootprintCacheConfig::new(mb << 20))),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::FootprintCustom { config } => MemorySystem::new(
                Box::new(FootprintCache::new(config)),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::SubBlock { mb } => MemorySystem::new(
                Box::new(SubBlockCache::new(mb << 20, geom)),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::HotPage { mb } => MemorySystem::new(
                // 4 KB pages, hot after 2 accesses ([13] finds 4 KB
                // optimal).
                Box::new(HotPageCache::new(mb << 20, PageGeometry::new(4096), 2)),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::PageDirtyBlockWb { mb } => MemorySystem::new(
                Box::new(PageBasedCache::with_granularity(
                    mb << 20,
                    geom,
                    WritebackGranularity::DirtyBlocks,
                )),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::Ideal => MemorySystem::new(
                Box::new(IdealCache::new()),
                Some(DramConfig::stacked_ddr3_3200()),
                DramConfig::off_chip_open_row(),
            ),
            DesignKind::IdealLowLatency => MemorySystem::new(
                Box::new(IdealCache::new()),
                Some(
                    DramConfig::stacked_ddr3_3200()
                        .with_timings(DramTimings::ddr3_3200_stacked().halved_latency()),
                ),
                DramConfig::off_chip_open_row(),
            ),
        }
    }

    /// The footprint key-kind ablation variant.
    pub fn footprint_with_key(mb: u64, key: KeyKind) -> Self {
        DesignKind::FootprintCustom {
            config: FootprintCacheConfig::new(mb << 20).with_key_kind(key),
        }
    }

    /// Footprint Cache without the singleton optimization (Section 6.5).
    pub fn footprint_no_singleton(mb: u64) -> Self {
        DesignKind::FootprintCustom {
            config: FootprintCacheConfig::new(mb << 20).with_singleton_optimization(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_builds() {
        for design in [
            DesignKind::Baseline,
            DesignKind::Block { mb: 64 },
            DesignKind::Page { mb: 64 },
            DesignKind::Footprint { mb: 64 },
            DesignKind::SubBlock { mb: 64 },
            DesignKind::HotPage { mb: 64 },
            DesignKind::PageDirtyBlockWb { mb: 64 },
            DesignKind::Ideal,
            DesignKind::IdealLowLatency,
            DesignKind::footprint_no_singleton(64),
            DesignKind::footprint_with_key(64, KeyKind::PcOnly),
        ] {
            let m = design.build();
            assert!(!design.label().is_empty());
            drop(m);
        }
    }

    #[test]
    fn labels_carry_capacity() {
        assert_eq!(DesignKind::Footprint { mb: 256 }.label(), "Footprint 256MB");
        assert!(DesignKind::footprint_no_singleton(128)
            .label()
            .contains("128MB"));
    }
}
