//! The design registry: every known design family, resolvable by name.
//!
//! The registry is the single place a new design has to be listed for
//! the whole stack to see it: `fc_sweep`'s `--designs`/`--grid
//! designspace` parsing, grid presets, the catalogue printed by
//! `--list-designs`, and the bench harness all enumerate
//! [`DESIGN_FAMILIES`] instead of matching on a closed enum.
//!
//! # Adding a design
//!
//! 1. Implement the model in `fc-cache` (a `DramCacheModel`).
//! 2. Add a [`CacheSpec`](crate::CacheSpec) variant and a
//!    [`DesignSpec`] constructor (with the design's DRAM specs), plus
//!    its JSON encode/decode arms.
//! 3. Wire the model into [`DesignModel`](crate::DesignModel)
//!    (`crates/sim/src/model.rs`): a new variant, a `dispatch!` arm,
//!    and a `From` impl. The hot loop dispatches registry designs by
//!    `match`; the `Extension` variant (any boxed `DramCacheModel`)
//!    is the dynamic-dispatch escape hatch for models that stay
//!    outside the enum.
//! 4. Append one [`DesignFamily`] row here.
//!
//! Sweeps, the CLI, hashing and the emitters pick the design up with
//! no further changes.

use crate::design::DesignSpec;

/// One named design family: a constructor over the capacity axis.
#[derive(Clone, Copy)]
pub struct DesignFamily {
    /// CLI / registry name (lowercase, no spaces).
    pub name: &'static str,
    /// One-line description for catalogue listings.
    pub summary: &'static str,
    /// Whether the family has a stacked-capacity axis (the baseline
    /// and ideal bounds do not).
    pub scales_with_capacity: bool,
    builder: fn(u64) -> DesignSpec,
}

impl DesignFamily {
    /// Builds the family's spec at `mb` megabytes of stacked capacity
    /// (ignored by capacity-independent families).
    pub fn build(&self, mb: u64) -> DesignSpec {
        (self.builder)(mb)
    }

    /// Expands the family against a capacity list: one spec per
    /// capacity, or a single spec for capacity-independent families.
    pub fn expand(&self, capacities: &[u64]) -> Vec<DesignSpec> {
        if self.scales_with_capacity {
            capacities.iter().map(|&mb| self.build(mb)).collect()
        } else {
            vec![self.build(0)]
        }
    }
}

/// Every design family the reproduction knows, in catalogue order.
pub const DESIGN_FAMILIES: &[DesignFamily] = &[
    DesignFamily {
        name: "baseline",
        summary: "no die-stacked DRAM; every L2 miss goes off-chip",
        scales_with_capacity: false,
        builder: |_| DesignSpec::baseline(),
    },
    DesignFamily {
        name: "block",
        summary: "Loh & Hill block cache: tags in DRAM, MissMap, 64 B fills",
        scales_with_capacity: true,
        builder: DesignSpec::block,
    },
    DesignFamily {
        name: "page",
        summary: "page cache: SRAM tags, whole-page fetch (traffic blow-up)",
        scales_with_capacity: true,
        builder: DesignSpec::page,
    },
    DesignFamily {
        name: "footprint",
        summary: "Footprint Cache: page allocation, predicted-footprint fetch",
        scales_with_capacity: true,
        builder: DesignSpec::footprint,
    },
    DesignFamily {
        name: "subblock",
        summary: "sub-blocked (sectored) cache: page tags, demand-block fetch",
        scales_with_capacity: true,
        builder: DesignSpec::subblock,
    },
    DesignFamily {
        name: "hotpage",
        summary: "CHOP-style hot-page filter cache (4 KB pages)",
        scales_with_capacity: true,
        builder: DesignSpec::hotpage,
    },
    DesignFamily {
        name: "pagedirty",
        summary: "page cache writing back only dirty blocks (ablation)",
        scales_with_capacity: true,
        builder: DesignSpec::page_dirty_wb,
    },
    DesignFamily {
        name: "alloy",
        summary: "Alloy: direct-mapped TAD units, compound tag+data access",
        scales_with_capacity: true,
        builder: DesignSpec::alloy,
    },
    DesignFamily {
        name: "banshee",
        summary: "Banshee: frequency-based replacement, bandwidth-aware fills",
        scales_with_capacity: true,
        builder: DesignSpec::banshee,
    },
    DesignFamily {
        name: "gemini",
        summary: "Gemini: hot pages direct-mapped, cold pages set-associative",
        scales_with_capacity: true,
        builder: DesignSpec::gemini,
    },
    DesignFamily {
        name: "ideal",
        summary: "die-stacked main memory: never misses (upper bound)",
        scales_with_capacity: false,
        builder: |_| DesignSpec::ideal(),
    },
    DesignFamily {
        name: "ideallow",
        summary: "ideal with halved DRAM latency (Figure 1 bound)",
        scales_with_capacity: false,
        builder: |_| DesignSpec::ideal_low_latency(),
    },
];

/// Looks up a family by (case-insensitive) name.
pub fn design_family(name: &str) -> Option<&'static DesignFamily> {
    DESIGN_FAMILIES
        .iter()
        .find(|f| f.name.eq_ignore_ascii_case(name.trim()))
}

/// Resolves a comma-separated family list against a capacity list,
/// e.g. `"page,alloy"` × `[64, 256]` → four specs. Unknown names
/// report the full catalogue.
pub fn resolve_designs(list: &str, capacities: &[u64]) -> Result<Vec<DesignSpec>, String> {
    let mut specs = Vec::new();
    for name in list.split(',') {
        let family = design_family(name).ok_or_else(|| {
            format!(
                "unknown design `{}`; pick from: {}",
                name.trim(),
                DESIGN_FAMILIES
                    .iter()
                    .map(|f| f.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        specs.extend(family.expand(capacities));
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_lowercase() {
        let mut seen = std::collections::HashSet::new();
        for f in DESIGN_FAMILIES {
            assert!(seen.insert(f.name), "duplicate family {}", f.name);
            assert_eq!(f.name, f.name.to_ascii_lowercase());
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(design_family("Footprint").is_some());
        assert!(design_family(" ALLOY ").is_some());
        assert!(design_family("warpdrive").is_none());
    }

    #[test]
    fn expansion_respects_capacity_axis() {
        let caps = [64, 256];
        assert_eq!(design_family("page").unwrap().expand(&caps).len(), 2);
        assert_eq!(design_family("baseline").unwrap().expand(&caps).len(), 1);
    }

    #[test]
    fn resolve_crosses_families_and_capacities() {
        let specs = resolve_designs("page,alloy,baseline", &[64, 128]).unwrap();
        assert_eq!(specs.len(), 5);
        assert!(resolve_designs("page,warpdrive", &[64]).is_err());
    }

    #[test]
    fn every_family_builds_at_64mb() {
        for f in DESIGN_FAMILIES {
            let spec = f.build(64);
            drop(spec.build());
        }
    }
}
