//! Measurement reports, computed as differences between counter
//! snapshots so warmup does not pollute results (the paper uses half of
//! each trace for warm-up, Section 5.4).

use serde::{Deserialize, Serialize};

use fc_cache::{DramCacheStats, PredictionCounters};
use fc_dram::{DramStats, EnergyBreakdown};

use crate::engine::Simulation;

/// One core's monotone performance counters (also the per-core entry
/// of a [`SimReport`], where it holds interval deltas).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorePerf {
    /// Instructions committed by this core.
    pub insts: u64,
    /// This core's local clock in cycles.
    pub cycles: u64,
    /// Demand L2 accesses issued by this core.
    pub l2_accesses: u64,
    /// Demand L2 misses (DRAM-level accesses) issued by this core.
    pub l2_misses: u64,
}

impl CorePerf {
    /// Instructions per cycle on this core's clock.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// L2 (DRAM-level) misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.insts as f64
        }
    }

    fn delta_since(&self, since: &CorePerf) -> CorePerf {
        CorePerf {
            insts: self.insts - since.insts,
            cycles: self.cycles - since.cycles,
            l2_accesses: self.l2_accesses - since.l2_accesses,
            l2_misses: self.l2_misses - since.l2_misses,
        }
    }
}

/// A point-in-time capture of every monotone counter in the simulation.
#[derive(Clone, Debug)]
pub struct ReportSnapshot {
    insts: u64,
    cycles: u64,
    per_core: Vec<CorePerf>,
    cache: DramCacheStats,
    offchip: DramStats,
    stacked: DramStats,
    offchip_energy: EnergyBreakdown,
    stacked_energy: EnergyBreakdown,
    prediction: Option<PredictionCounters>,
}

impl ReportSnapshot {
    /// Captures the current counters of `sim`.
    pub fn capture(sim: &Simulation) -> Self {
        Self {
            insts: sim.total_insts(),
            cycles: sim.total_cycles(),
            per_core: sim.per_core(),
            cache: sim.memsys().cache().stats().clone(),
            offchip: sim.memsys().offchip_stats(),
            stacked: sim.memsys().stacked_stats(),
            offchip_energy: sim.memsys().offchip_energy(),
            stacked_energy: sim.memsys().stacked_energy(),
            prediction: sim.memsys().cache().prediction_counters(),
        }
    }

    /// A zero snapshot (measure from the beginning).
    pub fn zero() -> Self {
        Self {
            insts: 0,
            cycles: 0,
            per_core: Vec::new(),
            cache: DramCacheStats::default(),
            offchip: DramStats::default(),
            stacked: DramStats::default(),
            offchip_energy: EnergyBreakdown::default(),
            stacked_energy: EnergyBreakdown::default(),
            prediction: None,
        }
    }
}

/// Energy split of one DRAM over the measurement interval (Figures
/// 10/11's two stacked components).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Activate/precharge energy in nanojoules.
    pub act_pre_nj: f64,
    /// Read/write burst energy in nanojoules.
    pub burst_nj: f64,
}

impl EnergyReport {
    /// Total dynamic energy.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.burst_nj
    }
}

/// Everything one simulation run measures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Instructions committed in the interval (all cores).
    pub insts: u64,
    /// Cycles elapsed in the interval.
    pub cycles: u64,
    /// Per-core interval counters (IPC/MPKI per core), indexed by core
    /// id. Heterogeneous scenario mixes read their consolidation
    /// metrics from these.
    pub per_core: Vec<CorePerf>,
    /// DRAM-cache counters over the interval.
    pub cache: DramCacheStats,
    /// Off-chip DRAM counters.
    pub offchip: DramStats,
    /// Stacked DRAM counters.
    pub stacked: DramStats,
    /// Off-chip dynamic energy.
    pub offchip_energy: EnergyReport,
    /// Stacked dynamic energy.
    pub stacked_energy: EnergyReport,
    /// Predictor counters (Footprint Cache only).
    pub prediction: Option<PredictionCounters>,
}

impl SimReport {
    /// Builds the report for everything that happened since `since`.
    pub fn since(sim: &Simulation, since: &ReportSnapshot) -> Self {
        let now = ReportSnapshot::capture(sim);
        Self {
            insts: now.insts - since.insts,
            cycles: now.cycles - since.cycles,
            per_core: now
                .per_core
                .iter()
                .enumerate()
                .map(|(i, c)| c.delta_since(since.per_core.get(i).unwrap_or(&CorePerf::default())))
                .collect(),
            cache: diff_cache(&now.cache, &since.cache),
            offchip: diff_dram(&now.offchip, &since.offchip),
            stacked: diff_dram(&now.stacked, &since.stacked),
            offchip_energy: EnergyReport {
                act_pre_nj: now.offchip_energy.act_pre_nj - since.offchip_energy.act_pre_nj,
                burst_nj: now.offchip_energy.burst_nj - since.offchip_energy.burst_nj,
            },
            stacked_energy: EnergyReport {
                act_pre_nj: now.stacked_energy.act_pre_nj - since.stacked_energy.act_pre_nj,
                burst_nj: now.stacked_energy.burst_nj - since.stacked_energy.burst_nj,
            },
            prediction: match (now.prediction, since.prediction) {
                (Some(n), Some(s)) => Some(PredictionCounters {
                    covered: n.covered - s.covered,
                    overpredicted: n.overpredicted - s.overpredicted,
                    underpredicted: n.underpredicted - s.underpredicted,
                    singleton_bypasses: n.singleton_bypasses - s.singleton_bypasses,
                    singleton_promotions: n.singleton_promotions - s.singleton_promotions,
                }),
                (p, _) => p,
            },
        }
    }

    /// Adds this report's counters into the global `fc_obs` metrics
    /// registry (`sim.*`, `cache.*`, `dram.*`). Purely additive: the
    /// report itself — and thus every golden/bit-equality check over
    /// it — is untouched. Called once per measured interval.
    pub fn publish_metrics(&self) {
        fc_obs::metrics::counter("sim.reports").inc();
        fc_obs::metrics::counter("sim.insts").add(self.insts);
        fc_obs::metrics::counter("sim.cycles").add(self.cycles);
        fc_obs::metrics::counter("cache.accesses").add(self.cache.accesses);
        fc_obs::metrics::counter("cache.hits").add(self.cache.hits);
        fc_obs::metrics::counter("cache.misses").add(self.cache.misses);
        fc_obs::metrics::counter("cache.fill_blocks").add(self.cache.fill_blocks);
        fc_obs::metrics::counter("cache.evictions").add(self.cache.evictions);
        self.offchip.publish_metrics(false);
        self.stacked.publish_metrics(true);
    }

    /// The paper's throughput metric: aggregate committed instructions
    /// over total cycles (Section 5.4).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Off-chip traffic in bytes over the interval (Figure 5b's
    /// numerator).
    pub fn offchip_bytes(&self) -> u64 {
        self.offchip.bytes()
    }

    /// Off-chip bytes per instruction — the bandwidth-demand measure that
    /// normalizes away timing differences between designs.
    pub fn offchip_bytes_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.offchip.bytes() as f64 / self.insts as f64
        }
    }

    /// Off-chip DRAM dynamic energy per instruction in nanojoules
    /// (Figure 10's y-axis before normalization).
    pub fn offchip_energy_per_inst_nj(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.offchip_energy.total_nj() / self.insts as f64
        }
    }

    /// Stacked DRAM dynamic energy per instruction in nanojoules
    /// (Figure 11).
    pub fn stacked_energy_per_inst_nj(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.stacked_energy.total_nj() / self.insts as f64
        }
    }

    /// Serializes every counter as canonical, pretty-printed JSON with
    /// a fixed field order. This is the golden-stats format: the
    /// `tests/golden_stats.rs` harness compares this string against the
    /// committed per-design goldens (regenerate with `UPDATE_GOLDEN=1`).
    pub fn to_canonical_json(&self) -> String {
        let dram = |d: &DramStats| {
            format!(
                "{{\"accesses\": {}, \"activates\": {}, \"row_hits\": {}, \
                 \"row_misses\": {}, \"read_blocks\": {}, \"write_blocks\": {}, \
                 \"compound_accesses\": {}, \"busy_cycles\": {}, \
                 \"queue_delay_cycles\": {}, \"queue_hist\": {}}}",
                d.accesses,
                d.activates,
                d.row_hits,
                d.row_misses,
                d.read_blocks,
                d.write_blocks,
                d.compound_accesses,
                d.busy_cycles,
                d.queue_delay_cycles,
                d.queue_hist.to_json(),
            )
        };
        let energy = |e: &EnergyReport| {
            format!(
                "{{\"act_pre_nj\": {}, \"burst_nj\": {}}}",
                e.act_pre_nj, e.burst_nj
            )
        };
        let c = &self.cache;
        let density: Vec<String> = c.density.bins().iter().map(|b| b.to_string()).collect();
        let cache = format!(
            "{{\"accesses\": {}, \"hits\": {}, \"misses\": {}, \"bypasses\": {}, \
             \"evictions\": {}, \"dirty_evictions\": {}, \"fill_blocks\": {}, \
             \"offchip_read_blocks\": {}, \"offchip_write_blocks\": {}, \
             \"stacked_read_blocks\": {}, \"stacked_write_blocks\": {}, \
             \"density_bins\": [{}]}}",
            c.accesses,
            c.hits,
            c.misses,
            c.bypasses,
            c.evictions,
            c.dirty_evictions,
            c.fill_blocks,
            c.offchip_read_blocks,
            c.offchip_write_blocks,
            c.stacked_read_blocks,
            c.stacked_write_blocks,
            density.join(", "),
        );
        let prediction = match &self.prediction {
            Some(p) => format!(
                "{{\"covered\": {}, \"overpredicted\": {}, \"underpredicted\": {}, \
                 \"singleton_bypasses\": {}, \"singleton_promotions\": {}}}",
                p.covered,
                p.overpredicted,
                p.underpredicted,
                p.singleton_bypasses,
                p.singleton_promotions
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"insts\": {},\n  \"cycles\": {},\n  \"cache\": {},\n  \
             \"offchip\": {},\n  \"stacked\": {},\n  \"offchip_energy\": {},\n  \
             \"stacked_energy\": {},\n  \"prediction\": {}\n}}\n",
            self.insts,
            self.cycles,
            cache,
            dram(&self.offchip),
            dram(&self.stacked),
            energy(&self.offchip_energy),
            energy(&self.stacked_energy),
            prediction,
        )
    }
}

/// Consolidation metrics of a scenario mix measured against solo-run
/// baselines (the multiprogramming literature's standard pair).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationReport {
    /// Per-core `IPC_mix / IPC_solo` (relative progress under
    /// co-location), indexed by core id.
    pub per_core_speedup: Vec<f64>,
    /// Weighted speedup, normalized by core count: the mean of the
    /// per-core relative IPCs. 1.0 means consolidation is free; below
    /// 1.0 quantifies the co-location penalty.
    pub weighted_speedup: f64,
    /// Jain's fairness index over the per-core relative IPCs, in
    /// `(0, 1]`: 1.0 when every core suffers equally, approaching
    /// `1/n` when one core starves the rest.
    pub fairness: f64,
}

/// Computes consolidation metrics for a mix report. `solo_ipc[i]` is
/// the solo-run IPC baseline for the workload core `i` runs in the mix
/// (from a homogeneous run of that workload on the same design).
///
/// # Panics
///
/// Panics if `solo_ipc` and the report's per-core vector disagree in
/// length.
pub fn consolidation(mix: &SimReport, solo_ipc: &[f64]) -> ConsolidationReport {
    assert_eq!(
        mix.per_core.len(),
        solo_ipc.len(),
        "solo baselines must cover every core"
    );
    let per_core_speedup: Vec<f64> = mix
        .per_core
        .iter()
        .zip(solo_ipc)
        .map(|(core, &solo)| if solo > 0.0 { core.ipc() / solo } else { 0.0 })
        .collect();
    let n = per_core_speedup.len() as f64;
    let sum: f64 = per_core_speedup.iter().sum();
    let sum_sq: f64 = per_core_speedup.iter().map(|x| x * x).sum();
    ConsolidationReport {
        weighted_speedup: if n > 0.0 { sum / n } else { 0.0 },
        fairness: if sum_sq > 0.0 {
            (sum * sum) / (n * sum_sq)
        } else {
            0.0
        },
        per_core_speedup,
    }
}

fn diff_cache(now: &DramCacheStats, since: &DramCacheStats) -> DramCacheStats {
    DramCacheStats {
        accesses: now.accesses - since.accesses,
        hits: now.hits - since.hits,
        misses: now.misses - since.misses,
        bypasses: now.bypasses - since.bypasses,
        evictions: now.evictions - since.evictions,
        dirty_evictions: now.dirty_evictions - since.dirty_evictions,
        fill_blocks: now.fill_blocks - since.fill_blocks,
        offchip_read_blocks: now.offchip_read_blocks - since.offchip_read_blocks,
        offchip_write_blocks: now.offchip_write_blocks - since.offchip_write_blocks,
        stacked_read_blocks: now.stacked_read_blocks - since.stacked_read_blocks,
        stacked_write_blocks: now.stacked_write_blocks - since.stacked_write_blocks,
        density: diff_density(now, since),
    }
}

fn diff_density(now: &DramCacheStats, since: &DramCacheStats) -> fc_cache::DensityHistogram {
    let mut h = fc_cache::DensityHistogram::default();
    let (n, s) = (now.density.bins(), since.density.bins());
    // Record representative densities per bin delta.
    let representative = [1usize, 2, 4, 8, 16, 32];
    for i in 0..6 {
        for _ in 0..(n[i] - s[i]) {
            h.record(representative[i]);
        }
    }
    h
}

fn diff_dram(now: &DramStats, since: &DramStats) -> DramStats {
    now.delta_since(since)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_report_totals() {
        let e = EnergyReport {
            act_pre_nj: 3.0,
            burst_nj: 4.0,
        };
        assert_eq!(e.total_nj(), 7.0);
    }

    #[test]
    fn core_perf_rates() {
        let c = CorePerf {
            insts: 2000,
            cycles: 4000,
            l2_accesses: 40,
            l2_misses: 10,
        };
        assert_eq!(c.ipc(), 0.5);
        assert_eq!(c.mpki(), 5.0);
        assert_eq!(CorePerf::default().ipc(), 0.0);
        assert_eq!(CorePerf::default().mpki(), 0.0);
    }

    #[test]
    fn consolidation_metrics() {
        let mut mix = SimReport {
            insts: 0,
            cycles: 0,
            per_core: vec![
                CorePerf {
                    insts: 1000,
                    cycles: 2000, // IPC 0.5 vs solo 1.0 -> speedup 0.5
                    ..Default::default()
                },
                CorePerf {
                    insts: 1000,
                    cycles: 1000, // IPC 1.0 vs solo 1.0 -> speedup 1.0
                    ..Default::default()
                },
            ],
            cache: Default::default(),
            offchip: Default::default(),
            stacked: Default::default(),
            offchip_energy: Default::default(),
            stacked_energy: Default::default(),
            prediction: None,
        };
        let report = consolidation(&mix, &[1.0, 1.0]);
        assert_eq!(report.per_core_speedup, vec![0.5, 1.0]);
        assert!((report.weighted_speedup - 0.75).abs() < 1e-12);
        // Jain: (1.5)^2 / (2 * 1.25) = 0.9
        assert!((report.fairness - 0.9).abs() < 1e-12);

        // Equal slowdowns are perfectly fair.
        mix.per_core[1].cycles = 2000;
        let equal = consolidation(&mix, &[1.0, 1.0]);
        assert!((equal.fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "every core")]
    fn consolidation_requires_full_baselines() {
        let mix = SimReport {
            insts: 0,
            cycles: 0,
            per_core: vec![CorePerf::default(); 2],
            cache: Default::default(),
            offchip: Default::default(),
            stacked: Default::default(),
            offchip_energy: Default::default(),
            stacked_energy: Default::default(),
            prediction: None,
        };
        consolidation(&mix, &[1.0]);
    }

    #[test]
    fn throughput_guards_zero_cycles() {
        let r = SimReport {
            insts: 0,
            cycles: 0,
            per_core: Vec::new(),
            cache: Default::default(),
            offchip: Default::default(),
            stacked: Default::default(),
            offchip_energy: Default::default(),
            stacked_energy: Default::default(),
            prediction: None,
        };
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.offchip_bytes_per_inst(), 0.0);
    }
}
