//! Prometheus-style text exposition and the `health.json` heartbeat.
//!
//! [`prometheus_text`] renders a [`MetricsSnapshot`] in the Prometheus
//! text format (version 0.0.4): one `# TYPE` line per metric, counter
//! and gauge samples, and histograms as *cumulative* `_bucket` series
//! (`le="…"` labels, a final `le="+Inf"` equal to `_count`) plus
//! `_sum`/`_count`. The values are the snapshot's cumulative lifetime
//! totals bit-for-bit — a scrape and a `metrics::snapshot()` taken at
//! the same moment agree exactly, which is what
//! `tests/service_observability.rs` asserts.
//!
//! [`Health`] is the service heartbeat a long-running `fc_sweep serve`
//! writes next to the exposition: coarse state
//! (starting/serving/degraded/draining), store generation, uptime and
//! last-request age. Both artifacts are written atomically
//! ([`write_atomic`]) so a scraper never reads a torn file.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json_escape;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// The file name the exposition is written under inside a metrics
/// directory.
pub const EXPOSITION_FILE: &str = "metrics.prom";

/// The file name of the health heartbeat inside a metrics directory.
pub const HEALTH_FILE: &str = "health.json";

/// Maps a registry metric name (dotted path, arbitrary bytes) onto the
/// Prometheus name charset `[a-zA-Z0-9_:]`; everything else becomes
/// `_`. A leading digit gets an underscore prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn histogram_text(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    // Cumulative buckets: bucket{le=b} counts samples <= b, so each
    // line adds the preceding bins.
    let mut cumulative = 0u64;
    for (bound, bin) in h.bounds.iter().zip(&h.bins) {
        cumulative += bin;
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders `snap` as Prometheus exposition text. Name collisions after
/// sanitization keep the first metric (names in the registry are
/// dotted static paths, so collisions do not occur in practice).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    for (name, v) in &snap.counters {
        let name = sanitize_name(name);
        if seen.insert(name.clone(), ()).is_some() {
            continue;
        }
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let name = sanitize_name(name);
        if seen.insert(name.clone(), ()).is_some() {
            continue;
        }
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let name = sanitize_name(name);
        if seen.insert(name.clone(), ()).is_some() {
            continue;
        }
        histogram_text(&mut out, &name, h);
    }
    out
}

/// The coarse service state reported in `health.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Process up, store/engine not yet ready to answer requests.
    Starting,
    /// Accepting and answering requests.
    Serving,
    /// Alive, but the watchdog found sustained below-floor throughput.
    Degraded,
    /// Shutting down cleanly; no further requests will be answered.
    Draining,
}

impl HealthState {
    /// The state's wire name (`starting` / `serving` / `degraded` /
    /// `draining`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Starting => "starting",
            HealthState::Serving => "serving",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }

    /// Parses a wire name back into a state.
    pub fn parse(name: &str) -> Result<HealthState, String> {
        match name {
            "starting" => Ok(HealthState::Starting),
            "serving" => Ok(HealthState::Serving),
            "degraded" => Ok(HealthState::Degraded),
            "draining" => Ok(HealthState::Draining),
            other => Err(format!("unknown health state `{other}`")),
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One heartbeat: the service's state plus the liveness numbers a
/// monitor needs to distinguish "idle" from "dead".
#[derive(Clone, Debug, PartialEq)]
pub struct Health {
    /// Coarse service state.
    pub state: HealthState,
    /// Durable-store generation (`None` for in-memory stores).
    pub generation: Option<u64>,
    /// Seconds since the service started.
    pub uptime_secs: f64,
    /// Seconds since the last request was accepted (`None` before the
    /// first request).
    pub last_request_age_secs: Option<f64>,
    /// Requests accepted since start.
    pub requests: u64,
    /// Why the service is degraded (empty otherwise).
    pub note: Option<String>,
}

impl Health {
    /// Renders the heartbeat as a small JSON object.
    pub fn to_json(&self) -> String {
        let generation = match self.generation {
            Some(g) => g.to_string(),
            None => "null".to_string(),
        };
        let age = match self.last_request_age_secs {
            Some(a) => format!("{a:.3}"),
            None => "null".to_string(),
        };
        let note = match &self.note {
            Some(n) => format!("\"{}\"", json_escape(n)),
            None => "null".to_string(),
        };
        format!(
            "{{\"state\": \"{}\", \"generation\": {generation}, \
             \"uptime_secs\": {:.3}, \"last_request_age_secs\": {age}, \
             \"requests\": {}, \"note\": {note}}}\n",
            self.state, self.uptime_secs, self.requests
        )
    }
}

/// Atomic file write (same-dir temp + rename): scrapers polling the
/// metrics directory never observe a torn exposition or heartbeat.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    fc_types::atomic_write(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize_name("serve.requests"), "serve_requests");
        assert_eq!(
            sanitize_name("sweep.fresh.Footprint 64MB"),
            "sweep_fresh_Footprint_64MB"
        );
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn exposition_is_cumulative_and_typed() {
        metrics::counter("test.expo.counter").add(7);
        metrics::gauge("test.expo.gauge").set(-3);
        let h = metrics::histogram("test.expo.hist", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let text = prometheus_text(&metrics::snapshot());
        assert!(text.contains("# TYPE test_expo_counter counter\n"));
        assert!(text.contains("test_expo_counter 7\n"));
        assert!(text.contains("# TYPE test_expo_gauge gauge\n"));
        assert!(text.contains("test_expo_gauge -3\n"));
        assert!(text.contains("# TYPE test_expo_hist histogram\n"));
        // Buckets are cumulative: 1, then 1+1, then +Inf == count.
        assert!(text.contains("test_expo_hist_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("test_expo_hist_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("test_expo_hist_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("test_expo_hist_sum 555\n"));
        assert!(text.contains("test_expo_hist_count 3\n"));
    }

    #[test]
    fn health_round_trips_states_and_serializes() {
        for state in [
            HealthState::Starting,
            HealthState::Serving,
            HealthState::Degraded,
            HealthState::Draining,
        ] {
            assert_eq!(HealthState::parse(state.as_str()), Ok(state));
        }
        assert!(HealthState::parse("zombie").is_err());

        let h = Health {
            state: HealthState::Serving,
            generation: Some(2),
            uptime_secs: 12.5,
            last_request_age_secs: None,
            requests: 9,
            note: None,
        };
        let json = h.to_json();
        assert!(json.contains("\"state\": \"serving\""));
        assert!(json.contains("\"generation\": 2"));
        assert!(json.contains("\"last_request_age_secs\": null"));
        assert!(json.contains("\"requests\": 9"));
    }
}
