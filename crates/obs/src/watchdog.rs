//! The serve watchdog: windowed throughput vs the committed floor.
//!
//! `bench_floor.json` records the per-design points/sec the repo has
//! committed to (the CI perf gate enforces it offline). A long-running
//! `fc_sweep serve` should hold itself to the same floor *online*: the
//! watchdog compares each design's fresh-points/sec over the rolling
//! window against its floor, and after
//! [`Watchdog::breach_windows`] consecutive below-floor windows
//! declares the service degraded. Windows with no fresh work for a
//! design are skipped — an idle service is not a degraded one.
//!
//! The per-design fresh-simulation counters the watchdog reads
//! (`sweep.fresh.<design label>`) are published by the sweep executor;
//! the floor file's `designs` map uses the same labels, so the two
//! sides join on the design label with no extra mapping.

use std::collections::BTreeMap;
use std::path::Path;

use crate::window::MetricsWindow;
use crate::{metrics, trace};

/// Prefix of the per-design fresh-simulation counters the executor
/// publishes and the watchdog evaluates: the full counter name is
/// `sweep.fresh.<design label>`.
pub const FRESH_COUNTER_PREFIX: &str = "sweep.fresh.";

/// A parsed floor file (the shape of `bench_floor.json`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FloorSpec {
    /// Grid-wide geomean floor, if the file carries one.
    pub geomean_points_per_sec: Option<f64>,
    /// Per-design floors, keyed by design label.
    pub designs: BTreeMap<String, f64>,
}

impl FloorSpec {
    /// Parses the `bench_floor.json` shape:
    /// `{"geomean_points_per_sec": …, "designs": {"label": pts/sec}}`.
    /// Unknown fields are ignored.
    pub fn parse(text: &str) -> Result<FloorSpec, String> {
        let v = fc_types::json::JsonValue::parse(text)?;
        let geomean = match v.get("geomean_points_per_sec") {
            Some(g) => Some(g.as_f64()?),
            None => None,
        };
        let mut designs = BTreeMap::new();
        if let Some(fc_types::json::JsonValue::Obj(fields)) = v.get("designs") {
            for (label, floor) in fields {
                designs.insert(label.clone(), floor.as_f64()?);
            }
        }
        Ok(FloorSpec {
            geomean_points_per_sec: geomean,
            designs,
        })
    }

    /// Reads and parses a floor file.
    pub fn from_file(path: &Path) -> Result<FloorSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read floor file {}: {e}", path.display()))?;
        Self::parse(&text)
    }
}

/// One design observed below its floor in the current window.
#[derive(Clone, Debug, PartialEq)]
pub struct Breach {
    /// Design label (the floor-file key).
    pub design: String,
    /// Fresh points/sec observed over the window.
    pub observed: f64,
    /// The committed floor for this design.
    pub floor: f64,
}

/// The watchdog's view after one window evaluation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WatchdogVerdict {
    /// Designs below floor this window (empty when healthy or idle).
    pub breaches: Vec<Breach>,
    /// Consecutive windows with at least one breach, including this
    /// one.
    pub consecutive_breaches: u32,
    /// Whether the consecutive-breach threshold has been reached.
    pub degraded: bool,
}

/// Compares windowed per-design fresh-points/sec against a
/// [`FloorSpec`], with hysteresis: degradation requires
/// `breach_windows` *consecutive* below-floor windows, and one healthy
/// (or idle) window resets the streak.
pub struct Watchdog {
    floor: FloorSpec,
    /// Fraction of the committed floor a window must reach (0 < m ≤ 1).
    /// Serve answers mixed interactive grids while the floor was
    /// benched on a dedicated sweep, so some slack is structural.
    margin: f64,
    /// Consecutive below-floor windows before the service is declared
    /// degraded.
    breach_windows: u32,
    /// Minimum fresh points a design needs in the window before its
    /// rate is judged at all. One small interactive request in an
    /// otherwise idle window produces an arbitrarily low rate that
    /// says nothing about throughput; too few samples is "idle", not
    /// "slow".
    min_samples: u64,
    consecutive: u32,
}

impl Watchdog {
    /// Default margin: a window must reach half the committed floor.
    pub const DEFAULT_MARGIN: f64 = 0.5;

    /// Default consecutive-breach threshold.
    pub const DEFAULT_BREACH_WINDOWS: u32 = 3;

    /// Default minimum fresh points per window for a design to be
    /// judged.
    pub const DEFAULT_MIN_SAMPLES: u64 = 4;

    /// A watchdog over `floor` with the default margin and threshold.
    pub fn new(floor: FloorSpec) -> Self {
        Self {
            floor,
            margin: Self::DEFAULT_MARGIN,
            breach_windows: Self::DEFAULT_BREACH_WINDOWS,
            min_samples: Self::DEFAULT_MIN_SAMPLES,
            consecutive: 0,
        }
    }

    /// Sets the floor fraction a window must reach (clamped to
    /// (0, 1]).
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Sets the consecutive-breach threshold (at least 1).
    pub fn with_breach_windows(mut self, n: u32) -> Self {
        self.breach_windows = n.max(1);
        self
    }

    /// Sets the minimum fresh points a design needs in the window
    /// before its rate is judged (at least 1).
    pub fn with_min_samples(mut self, n: u64) -> Self {
        self.min_samples = n.max(1);
        self
    }

    /// The configured consecutive-breach threshold.
    pub fn breach_windows(&self) -> u32 {
        self.breach_windows
    }

    /// Evaluates one window. Designs with fewer than `min_samples`
    /// fresh points in the window are skipped (idle ≠ degraded); a
    /// window where every active design meets `margin × floor` resets
    /// the breach streak. Each evaluated breach bumps the
    /// `watchdog.breaches` counter and records a structured instant
    /// event on the trace timeline.
    pub fn evaluate(&mut self, window: &MetricsWindow) -> WatchdogVerdict {
        let mut breaches = Vec::new();
        for (label, &floor) in &self.floor.designs {
            let counter = format!("{FRESH_COUNTER_PREFIX}{label}");
            if window.windowed_counter(&counter) < self.min_samples {
                continue;
            }
            let observed = window.rate_per_sec(&counter);
            if observed < floor * self.margin {
                breaches.push(Breach {
                    design: label.clone(),
                    observed,
                    floor,
                });
            }
        }
        if breaches.is_empty() {
            self.consecutive = 0;
        } else {
            self.consecutive = self.consecutive.saturating_add(1);
            metrics::counter("watchdog.breaches").add(breaches.len() as u64);
            for b in &breaches {
                trace::instant("watchdog-breach", "watchdog", || {
                    format!(
                        "{}: {:.1} < floor {:.1} pts/s",
                        b.design, b.observed, b.floor
                    )
                });
            }
        }
        let degraded = self.consecutive >= self.breach_windows;
        if degraded {
            metrics::counter("watchdog.degraded_windows").inc();
        }
        WatchdogVerdict {
            breaches,
            consecutive_breaches: self.consecutive,
            degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::MetricsWindow;
    use fc_types::{Clock, ManualClock};
    use std::sync::Arc;

    fn floor_for(label: &str, floor: f64) -> FloorSpec {
        let mut designs = BTreeMap::new();
        designs.insert(label.to_string(), floor);
        FloorSpec {
            geomean_points_per_sec: None,
            designs,
        }
    }

    #[test]
    fn parses_bench_floor_shape() {
        let spec = FloorSpec::parse(
            r#"{"geomean_points_per_sec": 480.5,
                "designs": {"Baseline": 305.3, "Ideal": 1098.0},
                "note": "ignored"}"#,
        )
        .unwrap();
        assert_eq!(spec.geomean_points_per_sec, Some(480.5));
        assert_eq!(spec.designs.len(), 2);
        assert_eq!(spec.designs["Baseline"], 305.3);
        assert!(FloorSpec::parse("not json").is_err());
    }

    #[test]
    fn idle_windows_never_breach() {
        let clock = Arc::new(ManualClock::at(0));
        let mut w = MetricsWindow::new(60_000, Arc::clone(&clock) as Arc<dyn Clock>);
        let mut dog = Watchdog::new(floor_for("test-dog-idle", 1e9)).with_breach_windows(1);
        clock.advance_ms(1_000);
        w.tick();
        let verdict = dog.evaluate(&w);
        assert!(verdict.breaches.is_empty());
        assert!(!verdict.degraded);
    }

    #[test]
    fn sparse_windows_count_as_idle_not_slow() {
        let clock = Arc::new(ManualClock::at(0));
        let mut w = MetricsWindow::new(60_000, Arc::clone(&clock) as Arc<dyn Clock>);
        let c = metrics::counter_named(&format!("{FRESH_COUNTER_PREFIX}test-dog-sparse"));
        // Unreachable floor + single-window threshold: any judged
        // window breaches; only the sample floor protects it.
        let mut dog = Watchdog::new(floor_for("test-dog-sparse", 1e9)).with_breach_windows(1);

        c.add(Watchdog::DEFAULT_MIN_SAMPLES - 1);
        clock.advance_ms(1_000);
        w.tick();
        let v = dog.evaluate(&w);
        assert!(v.breaches.is_empty(), "below min_samples is idle: {v:?}");

        c.add(1);
        clock.advance_ms(1_000);
        w.tick();
        assert!(
            dog.evaluate(&w).degraded,
            "at min_samples the rate is judged"
        );
    }

    #[test]
    fn consecutive_breaches_flip_and_recovery_resets() {
        let clock = Arc::new(ManualClock::at(0));
        let mut w = MetricsWindow::new(2_000, Arc::clone(&clock) as Arc<dyn Clock>);
        let c = metrics::counter_named(&format!("{FRESH_COUNTER_PREFIX}test-dog-flip"));
        // Floor 1000 pts/s, margin 1.0: 1 fresh point per second is a
        // breach; 10 000 in a window is healthy.
        let mut dog = Watchdog::new(floor_for("test-dog-flip", 1_000.0))
            .with_margin(1.0)
            .with_breach_windows(2)
            .with_min_samples(1);

        c.add(1);
        clock.advance_ms(1_000);
        w.tick();
        let v1 = dog.evaluate(&w);
        assert_eq!(v1.breaches.len(), 1);
        assert_eq!(v1.consecutive_breaches, 1);
        assert!(!v1.degraded, "one window is below the threshold");

        c.add(1);
        clock.advance_ms(1_000);
        w.tick();
        let v2 = dog.evaluate(&w);
        assert_eq!(v2.consecutive_breaches, 2);
        assert!(v2.degraded, "two consecutive breaches degrade");
        assert!(v2.breaches[0].observed < v2.breaches[0].floor);

        // A healthy window (well above floor) resets the streak. Tick
        // the idle gap in 1 s steps so the slow slots rotate out of the
        // 2 s window (one giant idle slot would stay in the ring and
        // dilute the rate).
        for _ in 0..4 {
            clock.advance_ms(1_000);
            w.tick();
        }
        c.add(10_000);
        clock.advance_ms(1_000);
        w.tick();
        let v3 = dog.evaluate(&w);
        assert!(v3.breaches.is_empty(), "{v3:?}");
        assert_eq!(v3.consecutive_breaches, 0);
        assert!(!v3.degraded);
    }
}
