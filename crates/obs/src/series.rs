//! Per-interval time series, gated on the `detailed-stats` feature.
//!
//! With the feature **off** (the default), [`TimeSeries`] is a
//! zero-sized struct whose methods are inlined no-ops, so the
//! instrumentation points in `fc_dram::channel` and `fc_sim::memsys`
//! cost nothing — the workspace test suite asserts
//! `size_of::<TimeSeries>() == 0` and bit-identical `SimReport`s.
//! With the feature **on**, each series accumulates `(tick, value)`
//! samples and publishes them into a process-global map that
//! `fc_sweep --metrics-out` folds into the metrics JSON.
//!
//! Callers gate the `format!`-built series names behind
//! [`enabled`] (a `const fn`), so name construction is
//! branch-eliminated in default builds.

use crate::{json_escape, json_num};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Whether `detailed-stats` time series are compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "detailed-stats")
}

/// A sequence of `(tick, value)` samples.
///
/// Zero-sized and inert without the `detailed-stats` feature.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    #[cfg(feature = "detailed-stats")]
    samples: Vec<(u64, f64)>,
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries::new()
    }
}

impl TimeSeries {
    /// An empty series (`const`, so instrumented structs can sit in
    /// statics).
    pub const fn new() -> TimeSeries {
        TimeSeries {
            #[cfg(feature = "detailed-stats")]
            samples: Vec::new(),
        }
    }

    /// Appends a sample. Compiles to nothing without `detailed-stats`.
    #[inline]
    pub fn push(&mut self, tick: u64, value: f64) {
        #[cfg(feature = "detailed-stats")]
        self.samples.push((tick, value));
        #[cfg(not(feature = "detailed-stats"))]
        {
            let _ = (tick, value);
        }
    }

    /// Number of samples held (always 0 without `detailed-stats`).
    pub fn len(&self) -> usize {
        #[cfg(feature = "detailed-stats")]
        {
            self.samples.len()
        }
        #[cfg(not(feature = "detailed-stats"))]
        {
            0
        }
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The samples as a slice (always empty without `detailed-stats`).
    pub fn samples(&self) -> &[(u64, f64)] {
        #[cfg(feature = "detailed-stats")]
        {
            &self.samples
        }
        #[cfg(not(feature = "detailed-stats"))]
        {
            &[]
        }
    }

    /// Renders `[[tick, value], ...]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (tick, value)) in self.samples().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{tick}, {}]", json_num(*value)));
        }
        out.push(']');
        out
    }
}

static PUBLISHED: OnceLock<Mutex<BTreeMap<String, TimeSeries>>> = OnceLock::new();

fn published() -> &'static Mutex<BTreeMap<String, TimeSeries>> {
    PUBLISHED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Publishes a finished series under `name` (e.g.
/// `designspace/fc-3.0/astar-like/cache.hit_ratio`). Replaces any
/// earlier series with the same name. No-op when the series is empty
/// (which is always the case without `detailed-stats`).
pub fn publish(name: String, series: &TimeSeries) {
    if series.is_empty() {
        return;
    }
    published()
        .lock()
        .expect("series map poisoned")
        .insert(name, series.clone());
}

/// Drains every published series.
pub fn take_published() -> BTreeMap<String, TimeSeries> {
    std::mem::take(&mut *published().lock().expect("series map poisoned"))
}

/// Drains and renders the published series as one JSON object
/// (`{}` when nothing was published — the default-feature case).
pub fn published_json() -> String {
    let map = take_published();
    if map.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{");
    for (i, (name, series)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {}",
            json_escape(name),
            series.to_json()
        ));
    }
    out.push_str("\n  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_matches_feature_gate() {
        let mut s = TimeSeries::new();
        s.push(0, 0.5);
        s.push(4096, 0.75);
        if enabled() {
            assert_eq!(s.len(), 2);
            assert_eq!(s.samples()[1], (4096, 0.75));
            assert_eq!(s.to_json(), "[[0, 0.5], [4096, 0.75]]");
        } else {
            assert_eq!(s.len(), 0);
            assert!(s.samples().is_empty());
            assert_eq!(s.to_json(), "[]");
            assert_eq!(std::mem::size_of::<TimeSeries>(), 0);
        }
    }

    #[test]
    fn publish_skips_empty_series() {
        publish("test.series.empty".to_string(), &TimeSeries::new());
        let map = take_published();
        assert!(!map.contains_key("test.series.empty"));
    }

    #[cfg(feature = "detailed-stats")]
    #[test]
    fn published_series_render() {
        let mut s = TimeSeries::new();
        s.push(1, 2.0);
        publish("test.series.render".to_string(), &s);
        let json = published_json();
        assert!(json.contains("\"test.series.render\": [[1, 2]]"));
    }
}
