//! `fc-obs` — the observability layer of the reproduction.
//!
//! The sweep stack runs thousands of grid points through a parallel
//! executor, sampled replay, and a queued memory engine; this crate is
//! the shared measurement substrate all of them report into. The batch
//! pillars, all hand-rolled on `std` plus `fc-types` (the container
//! vendors no tracing or metrics crates):
//!
//! * [`trace`] — scoped spans collected in thread-local buffers (one
//!   lock-free lane per worker thread) and exported as Chrome
//!   trace-event JSON, loadable in Perfetto / `chrome://tracing`. The
//!   whole subsystem is gated on one relaxed atomic: when tracing is
//!   disabled (the default), entering a span is a single load and no
//!   allocation happens.
//! * [`metrics`] — a process-wide registry of named counters, gauges
//!   and histograms with snapshot/delta semantics, exported as JSON by
//!   `fc_sweep --metrics-out`.
//! * [`series`] — per-interval time series (hit-ratio-over-time,
//!   row-buffer locality, queue occupancy) behind the `detailed-stats`
//!   cargo feature. With the feature off, [`TimeSeries`] is a
//!   zero-sized type whose methods compile to nothing, so default
//!   builds carry the instrumentation points at zero cost.
//!
//! Long-running services get a runtime half on top of the registry:
//!
//! * [`window`] — rolling-window views (a ring of timestamped
//!   snapshot deltas) turning cumulative totals into rates-per-second
//!   and windowed histograms, driven by an explicit
//!   [`Clock`](fc_types::Clock) so tests are deterministic.
//! * [`expo`] — Prometheus-style text exposition of a snapshot plus
//!   the `health.json` heartbeat
//!   (starting/serving/degraded/draining), both written atomically.
//! * [`watchdog`] — compares windowed per-design fresh-points/sec
//!   against the committed `bench_floor.json` and flags sustained
//!   below-floor throughput as degradation.
//!
//! [`Provenance`] rounds the crate out: a run manifest (seed, scale,
//! thread count, design list, wall time, crate version, feature flags)
//! every emitted artifact embeds, so benchmark trajectories stay
//! attributable to an exact configuration.
//!
//! **Determinism contract:** nothing in this crate feeds back into
//! simulation state. Spans and metrics record wall time and counts;
//! enabling or disabling them never changes a `SimReport` bit
//! (enforced by the workspace's `tests/observability.rs`).
//!
//! # Examples
//!
//! ```
//! use fc_obs::{metrics, trace};
//!
//! let before = metrics::snapshot();
//! trace::enable();
//! {
//!     let _span = trace::span("demo-phase", "docs");
//!     metrics::counter("docs.examples").inc();
//! }
//! trace::disable();
//! let delta = metrics::snapshot().delta(&before);
//! assert_eq!(delta.counter("docs.examples"), Some(1));
//! let json = trace::chrome_trace_json();
//! assert!(json.contains("\"demo-phase\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
mod provenance;
pub mod series;
pub mod trace;
pub mod watchdog;
pub mod window;

pub use expo::{Health, HealthState};
pub use provenance::Provenance;
pub use series::TimeSeries;
pub use watchdog::{FloorSpec, Watchdog, WatchdogVerdict};
pub use window::MetricsWindow;

/// Escapes a string for a JSON value position (the crate is
/// dependency-free, so it carries its own tiny escaper).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON-safe number literal (`null` for non-finite
/// values, which bare JSON cannot represent).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_num_guards_non_finite() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
