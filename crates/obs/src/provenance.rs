//! Run-provenance manifests.
//!
//! Every artifact the sweep stack emits (grid JSON/CSV, `BENCH_*`
//! summaries, traces, metrics) embeds one of these so a number in a
//! benchmark trajectory can always be traced back to the exact
//! configuration that produced it: seed, scale, thread count, design
//! list, wall time, crate version, and compiled feature flags.

use crate::{json_escape, json_num, series};

/// A run manifest, embedded in emitted artifacts.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// Emitting tool (e.g. `fc_sweep`).
    pub tool: String,
    /// Workspace crate version (compiled in).
    pub version: String,
    /// Compiled feature flags (e.g. `detailed-stats`).
    pub features: Vec<String>,
    /// Grid name, if the run came from a named grid.
    pub grid: Option<String>,
    /// Scale preset label (e.g. `smoke`, `full`).
    pub scale: Option<String>,
    /// Base RNG seed.
    pub seed: Option<u64>,
    /// Worker thread count.
    pub threads: Option<usize>,
    /// Parallel-in-time worker count for sampled runs (absent when
    /// the run did not use interval-level dispatch).
    pub pit_workers: Option<usize>,
    /// Workload labels covered by the run.
    pub workloads: Vec<String>,
    /// Design labels covered by the run.
    pub designs: Vec<String>,
    /// Number of grid points executed.
    pub points: Option<usize>,
    /// Wall-clock duration of the run, in seconds.
    pub wall_secs: Option<f64>,
    /// Generation of the durable result store the run read from
    /// (bumped on quarantine/resize), when one was attached.
    pub store_generation: Option<u64>,
}

impl Provenance {
    /// A manifest for `tool`, pre-filled with the compiled crate
    /// version and feature flags; everything else starts empty.
    pub fn for_tool(tool: &str) -> Provenance {
        let mut features = Vec::new();
        if series::enabled() {
            features.push("detailed-stats".to_string());
        }
        Provenance {
            tool: tool.to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            features,
            grid: None,
            scale: None,
            seed: None,
            threads: None,
            pit_workers: None,
            workloads: Vec::new(),
            designs: Vec::new(),
            points: None,
            wall_secs: None,
            store_generation: None,
        }
    }

    /// Renders the manifest as a single JSON object.
    pub fn to_json(&self) -> String {
        fn str_list(items: &[String]) -> String {
            let quoted: Vec<String> = items
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect();
            format!("[{}]", quoted.join(", "))
        }
        fn opt_str(v: &Option<String>) -> String {
            match v {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".to_string(),
            }
        }
        let mut fields = vec![
            format!("\"tool\": \"{}\"", json_escape(&self.tool)),
            format!("\"version\": \"{}\"", json_escape(&self.version)),
            format!("\"features\": {}", str_list(&self.features)),
            format!("\"grid\": {}", opt_str(&self.grid)),
            format!("\"scale\": {}", opt_str(&self.scale)),
        ];
        fields.push(match self.seed {
            Some(s) => format!("\"seed\": {s}"),
            None => "\"seed\": null".to_string(),
        });
        fields.push(match self.threads {
            Some(t) => format!("\"threads\": {t}"),
            None => "\"threads\": null".to_string(),
        });
        fields.push(match self.pit_workers {
            Some(w) => format!("\"pit_workers\": {w}"),
            None => "\"pit_workers\": null".to_string(),
        });
        fields.push(format!("\"workloads\": {}", str_list(&self.workloads)));
        fields.push(format!("\"designs\": {}", str_list(&self.designs)));
        fields.push(match self.points {
            Some(p) => format!("\"points\": {p}"),
            None => "\"points\": null".to_string(),
        });
        fields.push(match self.wall_secs {
            Some(w) => format!("\"wall_secs\": {}", json_num(w)),
            None => "\"wall_secs\": null".to_string(),
        });
        fields.push(match self.store_generation {
            Some(g) => format!("\"store_generation\": {g}"),
            None => "\"store_generation\": null".to_string(),
        });
        format!("{{{}}}", fields.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_tool_fills_compiled_facts() {
        let p = Provenance::for_tool("fc_sweep");
        assert_eq!(p.tool, "fc_sweep");
        assert!(!p.version.is_empty());
        assert_eq!(
            p.features.contains(&"detailed-stats".to_string()),
            series::enabled()
        );
    }

    #[test]
    fn json_covers_every_field() {
        let mut p = Provenance::for_tool("fc_sweep");
        p.grid = Some("designspace".to_string());
        p.scale = Some("smoke".to_string());
        p.seed = Some(42);
        p.threads = Some(4);
        p.pit_workers = Some(8);
        p.workloads = vec!["astar-like".to_string()];
        p.designs = vec!["fc-3.0".to_string(), "ideal".to_string()];
        p.points = Some(12);
        p.wall_secs = Some(1.5);
        p.store_generation = Some(3);
        let json = p.to_json();
        for needle in [
            "\"tool\": \"fc_sweep\"",
            "\"grid\": \"designspace\"",
            "\"scale\": \"smoke\"",
            "\"seed\": 42",
            "\"threads\": 4",
            "\"pit_workers\": 8",
            "\"workloads\": [\"astar-like\"]",
            "\"designs\": [\"fc-3.0\", \"ideal\"]",
            "\"points\": 12",
            "\"wall_secs\": 1.5",
            "\"store_generation\": 3",
            "\"version\": ",
            "\"features\": ",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn empty_fields_render_null() {
        let json = Provenance::for_tool("fc_experiments").to_json();
        assert!(json.contains("\"grid\": null"));
        assert!(json.contains("\"seed\": null"));
        assert!(json.contains("\"pit_workers\": null"));
        assert!(json.contains("\"wall_secs\": null"));
        assert!(json.contains("\"store_generation\": null"));
    }
}
